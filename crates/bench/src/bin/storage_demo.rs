//! End-to-end walk through the ASA storage stack (paper §2): store blocks
//! over the Chord overlay with Byzantine replicas, retrieve with hash
//! verification, repair, and record versions through the BFT commit
//! protocol.

use asa_chord::{Key, Overlay};
use asa_simnet::SimConfig;
use asa_storage::{
    peer_set, pid_key, run_harness, DataBlock, DataService, Guid, HarnessConfig, NodeBehaviour,
    PeerBehaviour, Pid,
};

fn main() {
    // -- Data storage service (§2.1). -------------------------------------
    let overlay = Overlay::with_nodes((0..128u64).map(|i| Key::hash(&i.to_be_bytes())), 4);
    println!("overlay: {} nodes", overlay.len());
    let mut service = DataService::new(overlay, 4, 42);
    let block = DataBlock::new(b"Design, Implementation and Deployment of State Machines".to_vec());
    let peers = peer_set(service.overlay(), pid_key(&block.pid()), 4).expect("peer set");
    println!("peer set for block: {} replicas", peers.len());
    service.set_behaviour(peers[0], NodeBehaviour::Byzantine);
    let pid = service.store(&block).expect("store reaches r-f quorum");
    println!("stored block, pid = {pid}");
    let retrieved = service.retrieve(pid).expect("retrieval verifies");
    assert_eq!(retrieved, block);
    println!(
        "retrieved and verified ({} hash rejections so far)",
        service.stats().verification_failures
    );
    service.set_behaviour(peers[0], NodeBehaviour::Correct);
    let fixed = service.repair();
    println!(
        "repair recreated {fixed} replica(s); {} verified replicas",
        service.replica_count(pid)
    );

    // -- Version-history service (§2.2). ----------------------------------
    let guid = Guid::from_name("demo/file.txt");
    println!("\nrecording 3 versions of {guid} through the commit protocol (r=4, 1 equivocator)");
    let config = HarnessConfig {
        behaviours: vec![PeerBehaviour::Equivocator],
        client_updates: vec![vec![
            Pid::of(b"version 1"),
            Pid::of(b"version 2"),
            Pid::of(b"version 3"),
        ]],
        net: SimConfig {
            seed: 9,
            min_delay: 1,
            max_delay: 10,
            ..Default::default()
        },
        ..Default::default()
    };
    let report = run_harness(&config);
    assert!(report.all_committed, "all versions commit");
    assert!(report.orders_agree(), "correct peers agree on the order");
    let history = report.read_consistent(1).expect("f+1-consistent read");
    println!(
        "version history ({} entries, f+1-consistent):",
        history.len()
    );
    for (i, pid) in history.iter().enumerate() {
        println!("  v{} -> {pid}", i + 1);
    }
    println!(
        "\nnetwork: {} messages delivered, {} timers, end at t={}",
        report.stats.delivered, report.stats.timers, report.end_time
    );
}
