//! The hand-written generic commit algorithm.
//!
//! Paper §3.2 describes a spectrum of state machines: at one extreme the
//! *original algorithm*, with (effectively) a single state and many
//! variables, whose control decisions are taken dynamically; at the other
//! the generated FSM, with many states and no variables. This module is
//! the former: a direct runtime implementation of the Fig 9 pseudo-code,
//! used as the behavioural baseline for the generated machines (every
//! implementation must produce identical action traces) and for the §4.4
//! execution-cost comparison.

use stategen_core::{Action, InterpError, ProtocolEngine};

use crate::config::CommitConfig;
use crate::messages::{self, CommitMessage};

/// Runtime state of the hand-written algorithm: the seven variables of
/// paper §3.1, held as ordinary fields.
#[derive(Debug, Clone)]
pub struct ReferenceCommit {
    config: CommitConfig,
    update_received: bool,
    votes_received: u32,
    vote_sent: bool,
    commits_received: u32,
    commit_sent: bool,
    could_choose: bool,
    has_chosen: bool,
    /// Action buffer reused across deliveries so the
    /// [`ProtocolEngine::deliver_ref`] path does not allocate a fresh
    /// vector per message.
    scratch: Vec<Action>,
}

impl ReferenceCommit {
    /// Creates a fresh instance (nothing received or sent, free to choose).
    pub fn new(config: CommitConfig) -> Self {
        ReferenceCommit {
            config,
            update_received: false,
            votes_received: 0,
            vote_sent: false,
            commits_received: 0,
            commit_sent: false,
            could_choose: true,
            has_chosen: false,
            scratch: Vec::new(),
        }
    }

    /// The configuration this instance runs under.
    pub fn config(&self) -> &CommitConfig {
        &self.config
    }

    /// Votes received so far.
    pub fn votes_received(&self) -> u32 {
        self.votes_received
    }

    /// Commits received so far.
    pub fn commits_received(&self) -> u32 {
        self.commits_received
    }

    /// Whether this instance has voted.
    pub fn vote_sent(&self) -> bool {
        self.vote_sent
    }

    /// Whether this instance chose its update.
    pub fn has_chosen(&self) -> bool {
        self.has_chosen
    }

    fn total_votes(&self) -> u32 {
        self.votes_received + u32::from(self.vote_sent)
    }

    fn vote_threshold_reached(&self) -> bool {
        self.total_votes() >= self.config.vote_threshold()
    }

    /// Casts this node's vote, and the commit the threshold may imply.
    /// Shared tail of the `update` and `free` handlers (paper Fig 9).
    fn choose_and_vote(&mut self, actions: &mut Vec<Action>) {
        self.vote_sent = true;
        actions.push(Action::send(messages::VOTE));
        if self.vote_threshold_reached() && !self.commit_sent {
            self.commit_sent = true;
            actions.push(Action::send(messages::COMMIT));
        }
        self.has_chosen = true;
        actions.push(Action::send(messages::NOT_FREE));
    }

    fn on_update(&mut self, actions: &mut Vec<Action>) {
        if self.update_received {
            return;
        }
        self.update_received = true;
        if self.could_choose && !self.has_chosen && !self.vote_sent {
            self.choose_and_vote(actions);
        }
    }

    fn on_vote(&mut self, actions: &mut Vec<Action>) {
        if self.votes_received == self.config.replication_factor() - 1 {
            return;
        }
        self.votes_received += 1;
        if self.vote_threshold_reached() {
            if !self.vote_sent {
                if self.could_choose {
                    self.has_chosen = true;
                    actions.push(Action::send(messages::NOT_FREE));
                }
                self.vote_sent = true;
                actions.push(Action::send(messages::VOTE));
            }
            if !self.commit_sent {
                self.commit_sent = true;
                actions.push(Action::send(messages::COMMIT));
            }
        }
    }

    fn on_commit(&mut self, actions: &mut Vec<Action>) {
        if self.commits_received == self.config.replication_factor() - 1 {
            return;
        }
        self.commits_received += 1;
        if self.commits_received >= self.config.commit_threshold() {
            if !self.vote_sent {
                self.vote_sent = true;
                actions.push(Action::send(messages::VOTE));
            }
            if !self.commit_sent {
                self.commit_sent = true;
                actions.push(Action::send(messages::COMMIT));
            }
            if self.has_chosen {
                actions.push(Action::send(messages::FREE));
            }
        }
    }

    fn on_free(&mut self, actions: &mut Vec<Action>) {
        if self.vote_sent || self.has_chosen {
            return;
        }
        self.could_choose = true;
        if self.update_received {
            self.choose_and_vote(actions);
        }
    }

    fn on_not_free(&mut self) {
        if !self.vote_sent && !self.has_chosen {
            self.could_choose = false;
        }
    }
}

impl ProtocolEngine for ReferenceCommit {
    fn deliver_ref(&mut self, message: &str) -> Result<&[Action], InterpError> {
        let message: CommitMessage = message
            .parse()
            .map_err(|_| InterpError::UnknownMessage(message.to_string()))?;
        // Move the scratch buffer out while the handlers run, so they can
        // borrow `self` mutably alongside it.
        let mut actions = std::mem::take(&mut self.scratch);
        actions.clear();
        if !self.is_finished() {
            match message {
                CommitMessage::Update => self.on_update(&mut actions),
                CommitMessage::Vote => self.on_vote(&mut actions),
                CommitMessage::Commit => self.on_commit(&mut actions),
                CommitMessage::Free => self.on_free(&mut actions),
                CommitMessage::NotFree => self.on_not_free(),
            }
        }
        self.scratch = actions;
        Ok(&self.scratch)
    }

    fn is_finished(&self) -> bool {
        self.commits_received >= self.config.commit_threshold()
    }

    fn state_name(&self) -> std::borrow::Cow<'_, str> {
        fn tf(b: bool) -> char {
            if b {
                'T'
            } else {
                'F'
            }
        }
        std::borrow::Cow::Owned(format!(
            "{}/{}/{}/{}/{}/{}/{}",
            tf(self.update_received),
            self.votes_received,
            tf(self.vote_sent),
            self.commits_received,
            tf(self.commit_sent),
            tf(self.could_choose),
            tf(self.has_chosen),
        ))
    }

    fn reset(&mut self) {
        // Keep the scratch buffer's capacity across resets.
        let scratch = std::mem::take(&mut self.scratch);
        *self = ReferenceCommit::new(self.config);
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ReferenceCommit {
        ReferenceCommit::new(CommitConfig::new(4).expect("valid"))
    }

    #[test]
    fn update_triggers_vote_and_choice() {
        let mut e = engine();
        let actions = e.deliver("update").unwrap();
        assert_eq!(
            actions,
            vec![Action::send("vote"), Action::send("not_free")]
        );
        assert_eq!(e.state_name(), "T/0/T/0/F/T/T");
    }

    #[test]
    fn commit_quorum_finishes() {
        let mut e = engine();
        e.deliver("update").unwrap();
        e.deliver("vote").unwrap();
        let a = e.deliver("vote").unwrap(); // total votes = 3 → commit
        assert_eq!(a, vec![Action::send("commit")]);
        e.deliver("commit").unwrap();
        assert!(!e.is_finished());
        let a = e.deliver("commit").unwrap(); // second external commit
        assert_eq!(a, vec![Action::send("free")]);
        assert!(e.is_finished());
    }

    #[test]
    fn blocked_node_votes_only_when_forced() {
        let mut e = engine();
        e.deliver("not_free").unwrap();
        assert!(e.deliver("update").unwrap().is_empty());
        assert!(e.deliver("vote").unwrap().is_empty());
        assert!(e.deliver("vote").unwrap().is_empty());
        // Third vote forces participation: vote + commit, but no choice.
        let a = e.deliver("vote").unwrap();
        assert_eq!(a, vec![Action::send("vote"), Action::send("commit")]);
        assert!(!e.has_chosen());
        assert_eq!(e.state_name(), "T/3/T/0/T/F/F");
    }

    #[test]
    fn free_releases_blocked_update() {
        let mut e = engine();
        e.deliver("not_free").unwrap();
        e.deliver("update").unwrap();
        e.deliver("vote").unwrap();
        e.deliver("vote").unwrap();
        // Paper Fig 14 FREE transition from T/2/F/0/F/F/F.
        assert_eq!(e.state_name(), "T/2/F/0/F/F/F");
        let a = e.deliver("free").unwrap();
        assert_eq!(
            a,
            vec![
                Action::send("vote"),
                Action::send("commit"),
                Action::send("not_free")
            ]
        );
        assert_eq!(e.state_name(), "T/2/T/0/T/T/T");
    }

    #[test]
    fn messages_after_finish_ignored() {
        let mut e = engine();
        e.deliver("commit").unwrap();
        e.deliver("commit").unwrap();
        assert!(e.is_finished());
        assert!(e.deliver("vote").unwrap().is_empty());
        assert!(e.deliver("update").unwrap().is_empty());
    }

    #[test]
    fn vote_bound_respected() {
        let mut e = engine();
        e.deliver("not_free").unwrap();
        for _ in 0..3 {
            e.deliver("vote").unwrap();
        }
        assert_eq!(e.votes_received(), 3);
        assert!(e.deliver("vote").unwrap().is_empty());
        assert_eq!(e.votes_received(), 3);
    }

    #[test]
    fn unknown_message_is_error() {
        let mut e = engine();
        assert!(matches!(
            e.deliver("zap"),
            Err(InterpError::UnknownMessage(_))
        ));
    }

    #[test]
    fn reset_restores_start() {
        let mut e = engine();
        e.deliver("update").unwrap();
        e.reset();
        assert_eq!(e.state_name(), "F/0/F/0/F/T/F");
    }
}
