//! The central §4.3 guarantee: the *compiled generated code* behaves
//! identically to the interpreted machine and the hand-written algorithm.

use proptest::prelude::*;

use stategen_commit::{CommitConfig, CommitModel, ReferenceCommit, MESSAGE_NAMES};
use stategen_core::{generate, FsmInstance, ProtocolEngine};
use stategen_generated::{GeneratedCommitR4, GeneratedCommitR7};

fn check(r: u32, mut generated: impl ProtocolEngine, messages: &[usize]) {
    let config = CommitConfig::new(r).unwrap();
    let machine = generate(&CommitModel::new(config)).unwrap().machine;
    let mut interpreted = FsmInstance::new(&machine);
    let mut reference = ReferenceCommit::new(config);
    for (step, &mi) in messages.iter().enumerate() {
        let name = MESSAGE_NAMES[mi % MESSAGE_NAMES.len()];
        let a = generated.deliver(name).unwrap();
        let b = interpreted.deliver(name).unwrap();
        let c = reference.deliver(name).unwrap();
        assert_eq!(a, b, "r={r} step {step} ({name}): generated vs interpreted");
        assert_eq!(a, c, "r={r} step {step} ({name}): generated vs reference");
        assert_eq!(
            generated.is_finished(),
            interpreted.is_finished(),
            "r={r} step {step}"
        );
        assert_eq!(
            generated.state_name(),
            interpreted.state_name(),
            "r={r} step {step}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_r4_equivalent(messages in prop::collection::vec(0usize..5, 0..80)) {
        check(4, GeneratedCommitR4::new(), &messages);
    }

    #[test]
    fn generated_r7_equivalent(messages in prop::collection::vec(0usize..5, 0..140)) {
        check(7, GeneratedCommitR7::new(), &messages);
    }
}

/// The generated state enum covers exactly the merged machine: every
/// interpreted state name is reachable by the generated engine too, and
/// the two walk in lock-step through an exhaustive breadth-first
/// exploration.
#[test]
fn exhaustive_lockstep_r4() {
    let config = CommitConfig::new(4).unwrap();
    let machine = generate(&CommitModel::new(config)).unwrap().machine;
    // BFS over message sequences up to depth 5 (5^5 = 3125 sequences).
    let mut sequences: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..5 {
        let mut next = Vec::new();
        for s in &sequences {
            for m in 0..5 {
                let mut t = s.clone();
                t.push(m);
                next.push(t);
            }
        }
        sequences = next;
        for s in &sequences {
            let mut generated = GeneratedCommitR4::new();
            let mut interpreted = FsmInstance::new(&machine);
            for &mi in s {
                let name = MESSAGE_NAMES[mi];
                let a = generated.deliver(name).unwrap();
                let b = interpreted.deliver(name).unwrap();
                assert_eq!(a, b);
            }
            assert_eq!(generated.state_name(), interpreted.state_name());
        }
    }
}
