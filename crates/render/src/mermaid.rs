//! Mermaid `stateDiagram-v2` renderer — a modern, markdown-embeddable
//! rendering of the paper's Fig 15 diagram artefact.

use std::fmt::Write as _;

use stategen_core::{StateMachine, StateRole};

/// Renders the machine as a Mermaid state diagram.
pub fn render_mermaid(machine: &StateMachine) -> String {
    let mut out = String::from("stateDiagram-v2\n");
    for (id, state) in machine.states_with_ids() {
        let _ = writeln!(out, "    s{} : {}", id.index(), state.name());
    }
    let _ = writeln!(out, "    [*] --> s{}", machine.start().index());
    for (id, state) in machine.states_with_ids() {
        for (mid, t) in state.transitions() {
            let mut label = machine.message_name(mid).to_uppercase();
            if !t.actions().is_empty() {
                let sends: Vec<&str> = t.actions().iter().map(|a| a.message()).collect();
                let _ = write!(label, " / {}", sends.join(", "));
            }
            let _ = writeln!(
                out,
                "    s{} --> s{} : {}",
                id.index(),
                t.target().index(),
                label
            );
        }
        if state.role() == StateRole::Finish {
            let _ = writeln!(out, "    s{} --> [*]", id.index());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stategen_core::{Action, StateMachineBuilder};

    #[test]
    fn diagram_shape() {
        let mut b = StateMachineBuilder::new("m", ["go"]);
        let s0 = b.add_state("A");
        let fin = b.add_state_full("B", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "go", fin, vec![Action::send("x"), Action::send("y")]);
        let m = b.build(s0);
        let out = render_mermaid(&m);
        assert!(out.starts_with("stateDiagram-v2\n"));
        assert!(out.contains("    s0 : A\n"));
        assert!(out.contains("    [*] --> s0\n"));
        assert!(out.contains("    s0 --> s1 : GO / x, y\n"));
        assert!(out.contains("    s1 --> [*]\n"));
    }

    #[test]
    fn simple_transition_has_no_action_suffix() {
        let mut b = StateMachineBuilder::new("m", ["go"]);
        let s0 = b.add_state("A");
        let s1 = b.add_state("B");
        b.add_transition(s0, "go", s1, vec![]);
        let m = b.build(s0);
        let out = render_mermaid(&m);
        assert!(out.contains("    s0 --> s1 : GO\n"));
        assert!(!out.contains(" / "));
    }
}
