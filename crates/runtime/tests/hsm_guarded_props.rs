//! Property suite for the *guarded* statechart pipeline: the direct
//! statechart interpreter, the interpreted flat IR, the compiled EFSM
//! and the `Runtime`-served facade must be trace-equivalent on
//! randomized guarded hierarchical machines —
//!
//! ```text
//! HsmInstance (guarded) ≡ IrInstance(flatten_ir)
//!                       ≡ CompiledEfsmInstance(compile_ir(flatten_ir))
//!                       ≡ Runtime(Engine::compile(Spec::hsm_with_params))
//! ```
//!
//! What that proves: the guarded run-to-completion kernel (innermost
//! handler with guard fall-through, staged pre-transition-value
//! updates), the candidate enumeration the flattener emits per
//! `(configuration, message)` cell, the register-machine lowering of
//! the carried guards/updates, and the facade's per-session variable
//! registers all implement *one* semantics. The statechart guard
//! semantics themselves (inherited guarded transitions across levels,
//! disjoint sibling guards, update ordering around exit/entry
//! sequences) are pinned by the closed-form units at the bottom.

use proptest::prelude::*;

use stategen_core::efsm::{CmpOp, Guard, LinExpr, Update};
use stategen_core::{
    Action, CompiledEfsm, HierarchicalMachine, HsmBuilder, HsmStateId, ProtocolEngine,
};
use stategen_runtime::{Engine, Spec, Tier};

/// The fixed alphabet random machines draw from.
const ALPHABET: [&str; 3] = ["m0", "m1", "m2"];

/// Flat seed data from which a random (but always valid) *guarded*
/// hierarchical machine is derived — the guarded extension of the
/// `hsm_props` recipe: per-state structure seeds, transition seeds
/// (some of which become complementary guarded pairs), a start seed and
/// the parameter value the trial binds.
#[derive(Debug, Clone)]
struct Recipe {
    states: Vec<u64>,
    transitions: Vec<(u64, u64, u64, u64)>,
    start: u64,
    budget: u64,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        prop::collection::vec(any::<u64>(), 1..=10),
        prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            0..=14,
        ),
        any::<u64>(),
        1u64..=3,
    )
        .prop_map(|(states, transitions, start, budget)| Recipe {
            states,
            transitions,
            start,
            budget,
        })
}

/// Materialises a recipe into a guarded machine with one parameter
/// (`budget`) and two variables (`x`, `y`).
///
/// The tree derivation matches `hsm_props` (parent among earlier
/// states, depth ≤ 3, history/entry/exit/final bits). Transition seeds
/// pick source, message and kind: unguarded external/internal/history
/// transitions as before, plus *complementary threshold pairs*
/// (`v+1 < budget` / `v+1 ≥ budget` with `Inc`/`Set` updates) and lone
/// guarded internals — every guard shape the EFSM lowering
/// distinguishes (fused thresholds on both signs, `Set` staging).
/// Builder rejections (duplicate guards, shadowed declarations) are
/// simply skipped, mirroring how a generator would probe the builder.
fn build_random_guarded_hsm(recipe: &Recipe) -> HierarchicalMachine {
    let n = recipe.states.len();
    let mut b = HsmBuilder::new("random-guarded-hsm", ALPHABET);
    let budget = b.add_param("budget");
    let vars = [b.add_var("x"), b.add_var("y")];
    let mut ids: Vec<HsmStateId> = Vec::with_capacity(n);
    let mut depth: Vec<u32> = Vec::with_capacity(n);
    let mut children = vec![0usize; n];
    for (i, &seed) in recipe.states.iter().enumerate() {
        let parent_pick = (seed % (i as u64 + 1)) as usize;
        let (id, d) = if i == 0 || parent_pick == i || depth[parent_pick] >= 3 {
            (b.add_state(format!("s{i}")), 0)
        } else {
            children[parent_pick] += 1;
            (
                b.add_child(ids[parent_pick], format!("s{i}")),
                depth[parent_pick] + 1,
            )
        };
        ids.push(id);
        depth.push(d);
    }
    let mut history_comps = Vec::new();
    for (i, &seed) in recipe.states.iter().enumerate() {
        let is_composite = children[i] > 0;
        if is_composite && seed & (1 << 8) != 0 {
            b.enable_history(ids[i]);
            history_comps.push(ids[i]);
        }
        if seed & (1 << 9) != 0 {
            b.on_entry(ids[i], vec![Action::send(format!("enter{i}"))]);
        }
        if seed & (1 << 10) != 0 {
            b.on_exit(ids[i], vec![Action::send(format!("exit{i}"))]);
        }
        if !is_composite && seed & (3 << 11) == 3 << 11 {
            b.mark_final(ids[i]);
        }
    }
    for &(s_seed, m_seed, kind_seed, t_seed) in &recipe.transitions {
        let from = ids[(s_seed % n as u64) as usize];
        let message = ALPHABET[(m_seed % ALPHABET.len() as u64) as usize];
        let actions: Vec<Action> = (0..kind_seed >> 4 & 3)
            .map(|k| Action::send(format!("a{k}")))
            .collect();
        let v = vars[(t_seed >> 4 & 1) as usize];
        let other = vars[1 - (t_seed >> 4 & 1) as usize];
        let below = Guard::when(
            LinExpr::var(v).plus_const(1),
            CmpOp::Lt,
            LinExpr::param(budget),
        );
        let at = Guard::when(
            LinExpr::var(v).plus_const(1),
            CmpOp::Ge,
            LinExpr::param(budget),
        );
        // Rejections (duplicate/shadowed declarations) are skipped.
        match kind_seed % 6 {
            0 => {
                let _ = b.try_add_internal_transition(from, message, actions);
            }
            1 if !history_comps.is_empty() => {
                let comp = history_comps[(t_seed % history_comps.len() as u64) as usize];
                let _ = b.try_add_history_transition(from, message, comp, actions);
            }
            2 => {
                let to = ids[(t_seed % n as u64) as usize];
                let _ = b.try_add_transition(from, message, to, actions);
            }
            // A lone guarded declaration: enabled only below the budget,
            // so the message falls through to inherited handlers (or is
            // absorbed) once the threshold is reached.
            3 => {
                let to = ids[(t_seed % n as u64) as usize];
                let _ = b.try_add_guarded_transition(
                    from,
                    message,
                    below.clone(),
                    vec![Update::Inc(v)],
                    to,
                    actions,
                );
            }
            // A complementary pair: both sides of the threshold are
            // reachable, exercising priority scan, fused ≤-canonical
            // checks of both signs, and Inc/Set staging.
            _ => {
                let to_low = ids[(t_seed % n as u64) as usize];
                let to_high = ids[((t_seed >> 8) % n as u64) as usize];
                let _ = b.try_add_guarded_transition(
                    from,
                    message,
                    below,
                    vec![Update::Inc(v)],
                    to_low,
                    actions.clone(),
                );
                let high_updates = if t_seed & (1 << 16) != 0 {
                    vec![Update::Set(v, LinExpr::constant(0))]
                } else {
                    vec![Update::Inc(other)]
                };
                let _ =
                    b.try_add_guarded_transition(from, message, at, high_updates, to_high, actions);
            }
        }
    }
    let start = ids[(recipe.start % n as u64) as usize];
    b.try_build(start)
        .expect("recipe-derived machines are valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The four-way equivalence on random guarded machines and traces:
    /// identical action sequences, configuration names, variable
    /// registers, completion flags and step counts at every step.
    #[test]
    fn guarded_flattening_preserves_behaviour(
        r in recipe(),
        trace in prop::collection::vec(0usize..ALPHABET.len(), 0..48),
    ) {
        let hsm = build_random_guarded_hsm(&r);
        let params = vec![r.budget as i64];
        prop_assert!(hsm.is_guarded());
        let ir = hsm.flatten_ir();
        let compiled = CompiledEfsm::compile_ir(&ir)
            .expect("flattened candidate lists carry no duplicate guards");
        let engine = Engine::compile(Spec::hsm_with_params(hsm.clone(), params.clone()))
            .expect("guarded statechart compiles");
        prop_assert_eq!(engine.tier(), Tier::FlattenedHsmEfsm);

        let mut reference = hsm.instance_with(params.clone());
        let mut interp = ir.instance(params.clone());
        let mut fast = compiled.instance(params.clone());
        let mut rt = engine.runtime();
        let session = rt.spawn();

        prop_assert_eq!(reference.state_name(), interp.state_name());
        prop_assert_eq!(interp.state_name(), rt.state_name(session));
        for (step, &mi) in trace.iter().enumerate() {
            let name = ALPHABET[mi];
            let mid = engine.message_id(name).expect("declared message");
            let want = reference.deliver_ref(name).expect("declared message").to_vec();
            let from_interp = interp.deliver_ref(name).expect("declared message");
            prop_assert_eq!(&want, &from_interp.to_vec(), "step {}", step);
            let from_fast = fast.deliver_ref(name).expect("declared message");
            prop_assert_eq!(want.as_slice(), from_fast, "step {}", step);
            let from_rt = rt.deliver(session, mid).to_vec();
            prop_assert_eq!(want.as_slice(), &from_rt[..], "step {}", step);
            prop_assert_eq!(reference.state_name(), interp.state_name(), "step {}", step);
            prop_assert_eq!(interp.state_name(), fast.state_name(), "step {}", step);
            prop_assert_eq!(fast.state_name_str(), rt.state_name(session), "step {}", step);
            prop_assert_eq!(reference.vars(), interp.vars(), "step {}", step);
            prop_assert_eq!(interp.vars(), fast.vars(), "step {}", step);
            prop_assert_eq!(fast.vars(), rt.vars(session), "step {}", step);
            prop_assert_eq!(reference.is_finished(), interp.is_finished(), "step {}", step);
            prop_assert_eq!(interp.is_finished(), fast.is_finished(), "step {}", step);
            prop_assert_eq!(fast.is_finished(), rt.is_finished(session), "step {}", step);
        }
        prop_assert_eq!(reference.steps(), interp.steps());
        prop_assert_eq!(interp.steps(), fast.steps());
        prop_assert_eq!(fast.steps(), rt.steps());

        // Reset restores the initial configuration and zeroed registers
        // identically everywhere.
        reference.reset();
        interp.reset();
        fast.reset();
        rt.reset(session);
        prop_assert_eq!(reference.state_name(), interp.state_name());
        prop_assert_eq!(interp.state_name(), rt.state_name(session));
        prop_assert_eq!(reference.vars(), rt.vars(session));
        prop_assert_eq!(reference.steps(), 0);
    }

    /// Batch dispatch over the facade: a sharded `Runtime` stepping many
    /// guarded sessions in lock-step stays bit-identical to the direct
    /// interpreter receiving the same broadcast trace.
    #[test]
    fn guarded_batch_dispatch_matches_reference(
        r in recipe(),
        trace in prop::collection::vec(0usize..ALPHABET.len(), 0..24),
    ) {
        let hsm = build_random_guarded_hsm(&r);
        let params = vec![r.budget as i64];
        let engine = Engine::compile(Spec::hsm_with_params(hsm.clone(), params.clone()))
            .expect("guarded statechart compiles");
        let mut rt = engine.runtime().sharded(2);
        rt.spawn_many(6);
        let sessions: Vec<_> = (0..3).map(|_| rt.spawn()).collect();
        let mut reference = hsm.instance_with(params);
        let mut transitions = 0u64;
        for &mi in &trace {
            let mid = engine.message_id(ALPHABET[mi]).expect("declared message");
            let before = reference.steps();
            reference.deliver_ref(ALPHABET[mi]).expect("declared message");
            transitions += (reference.steps() - before) * rt.len() as u64;
            prop_assert_eq!(rt.deliver_all(mid), (reference.steps() - before) * 9);
        }
        prop_assert_eq!(rt.steps(), transitions);
        for s in sessions {
            prop_assert_eq!(rt.state_name(s), reference.state_name());
            prop_assert_eq!(rt.vars(s), reference.vars());
            prop_assert_eq!(rt.is_finished(s), reference.is_finished());
        }
    }

    /// Unknown messages error identically through every leg.
    #[test]
    fn guarded_unknown_messages_agree(r in recipe()) {
        let hsm = build_random_guarded_hsm(&r);
        let params = vec![r.budget as i64];
        let ir = hsm.flatten_ir();
        let mut reference = hsm.instance_with(params.clone());
        let mut interp = ir.instance(params);
        prop_assert_eq!(
            reference.deliver_ref("zap").map(<[Action]>::to_vec).unwrap_err(),
            interp.deliver_ref("zap").map(<[Action]>::to_vec).unwrap_err()
        );
    }
}

// ---------------------------------------------------------------------
// Guarded edge cases (satellite): targeted machines where the
// interesting behaviour is known in closed form, checked across every
// leg of the pipeline.
// ---------------------------------------------------------------------

fn send(m: &str) -> Action {
    Action::send(m)
}

/// Drives the same trace through all four engines, asserting identical
/// actions, names, variables and completion at every step, and returns
/// the reference's collected action log for closed-form assertions.
fn all_tiers_agree(
    hsm: &HierarchicalMachine,
    params: Vec<i64>,
    trace: &[&str],
) -> Vec<Vec<Action>> {
    let ir = hsm.flatten_ir();
    let compiled = CompiledEfsm::compile_ir(&ir).expect("compiles");
    let engine =
        Engine::compile(Spec::hsm_with_params(hsm.clone(), params.clone())).expect("compiles");
    let mut reference = hsm.instance_with(params.clone());
    let mut interp = ir.instance(params.clone());
    let mut fast = compiled.instance(params);
    let mut rt = engine.runtime();
    let session = rt.spawn();
    let mut log = Vec::new();
    for m in trace {
        let mid = engine.message_id(m).expect("declared message");
        let want = reference.deliver_ref(m).expect("declared message").to_vec();
        assert_eq!(interp.deliver_ref(m).unwrap(), want.as_slice(), "at {m}");
        assert_eq!(fast.deliver_ref(m).unwrap(), want.as_slice(), "at {m}");
        assert_eq!(rt.deliver(session, mid), want.as_slice(), "at {m}");
        assert_eq!(reference.state_name(), interp.state_name(), "at {m}");
        assert_eq!(interp.state_name(), fast.state_name(), "at {m}");
        assert_eq!(fast.state_name_str(), rt.state_name(session), "at {m}");
        assert_eq!(reference.vars(), fast.vars(), "at {m}");
        assert_eq!(fast.vars(), rt.vars(session), "at {m}");
        assert_eq!(reference.is_finished(), rt.is_finished(session), "at {m}");
        log.push(want);
    }
    log
}

/// A guard on an *inherited cross-level* transition: declared two
/// composite levels above the active leaf, it only fires once its
/// threshold opens — and when it does, the synthesized sequence still
/// exits innermost-first through every level.
#[test]
fn guard_on_inherited_cross_level_transition() {
    let mut b = HsmBuilder::new("deep-guard", ["bump", "escape"]);
    let limit = b.add_param("limit");
    let n = b.add_var("n");
    let r = b.add_state("R");
    let m = b.add_child(r, "M");
    let l = b.add_child(m, "L");
    let out = b.add_state("Out");
    for (state, tag) in [(r, "r"), (m, "m"), (l, "l")] {
        b.on_entry(state, vec![send(&format!("e_{tag}"))]);
        b.on_exit(state, vec![send(&format!("x_{tag}"))]);
    }
    b.on_entry(out, vec![send("e_out")]);
    b.add_guarded_internal_transition(
        r,
        "bump",
        Guard::always(),
        vec![Update::Inc(n)],
        vec![send("bumped")],
    );
    // Declared on R, inherited by L, enabled only at the threshold.
    b.add_guarded_transition(
        r,
        "escape",
        Guard::when(LinExpr::var(n), CmpOp::Ge, LinExpr::param(limit)),
        vec![],
        out,
        vec![send("t")],
    );
    let hsm = b.build(r);

    let log = all_tiers_agree(
        &hsm,
        vec![2],
        &["escape", "bump", "escape", "bump", "escape"],
    );
    // Below the threshold the inherited guard is closed: no handler.
    assert_eq!(log[0], Vec::<Action>::new());
    assert_eq!(log[2], Vec::<Action>::new());
    // At n = 2 it opens, exiting L, M, R innermost-first.
    assert_eq!(
        log[4],
        vec![
            send("x_l"),
            send("x_m"),
            send("x_r"),
            send("t"),
            send("e_out")
        ]
    );
}

/// Two sibling transitions distinguished *only* by disjoint guards:
/// the cell's candidate list routes by threshold, both directions
/// reachable, across every tier.
#[test]
fn sibling_transitions_with_disjoint_guards() {
    let mut b = HsmBuilder::new("siblings", ["go", "reset"]);
    let cutoff = b.add_param("cutoff");
    let v = b.add_var("v");
    let hub = b.add_state("Hub");
    let low = b.add_state("Low");
    let high = b.add_state("High");
    b.on_entry(low, vec![send("low_in")]);
    b.on_entry(high, vec![send("high_in")]);
    b.add_guarded_transition(
        hub,
        "go",
        Guard::when(LinExpr::var(v), CmpOp::Lt, LinExpr::param(cutoff)),
        vec![Update::Inc(v)],
        low,
        vec![],
    );
    b.add_guarded_transition(
        hub,
        "go",
        Guard::when(LinExpr::var(v), CmpOp::Ge, LinExpr::param(cutoff)),
        vec![],
        high,
        vec![],
    );
    b.add_transition(low, "reset", hub, vec![]);
    b.add_transition(high, "reset", hub, vec![]);
    let hsm = b.build(hub);

    let log = all_tiers_agree(
        &hsm,
        vec![2],
        &["go", "reset", "go", "reset", "go", "reset"],
    );
    // v = 0, 1: below the cutoff — routed to Low (incrementing v);
    // v = 2: the disjoint sibling wins — routed to High.
    assert_eq!(log[0], vec![send("low_in")]);
    assert_eq!(log[2], vec![send("low_in")]);
    assert_eq!(log[4], vec![send("high_in")]);
}

/// Update ordering across a synthesized exit/transition/entry sequence:
/// the updates stage against pre-transition values (no matter how many
/// exit and entry actions the flattener wraps around the transition's
/// own), and the action order stays exits ++ actions ++ entries.
#[test]
fn update_ordering_across_exit_entry_sequences() {
    let mut b = HsmBuilder::new("staged", ["hop"]);
    let x = b.add_var("x");
    let y = b.add_var("y");
    let a = b.add_state("A");
    let a1 = b.add_child(a, "A1");
    let z = b.add_state("Z");
    let z1 = b.add_child(z, "Z1");
    b.on_exit(a1, vec![send("x_a1")]);
    b.on_exit(a, vec![send("x_a")]);
    b.on_entry(z, vec![send("e_z")]);
    b.on_entry(z1, vec![send("e_z1")]);
    // A swap-with-offset across a cross-level hop: both Sets must read
    // the pre-transition registers even though the flattened transition
    // carries four synthesized actions around the hop's own.
    b.add_guarded_transition(
        a,
        "hop",
        Guard::always(),
        vec![
            Update::Set(x, LinExpr::var(y).plus_const(1)),
            Update::Set(y, LinExpr::var(x).plus_const(5)),
        ],
        z1,
        vec![send("hop")],
    );
    let hsm = b.build(a);

    let ir = hsm.flatten_ir();
    let compiled = CompiledEfsm::compile_ir(&ir).expect("compiles");
    let mut fast = compiled.instance(vec![]);
    let log = all_tiers_agree(&hsm, vec![], &["hop"]);
    assert_eq!(
        log[0],
        vec![
            send("x_a1"),
            send("x_a"),
            send("hop"),
            send("e_z"),
            send("e_z1"),
        ]
    );
    // Staged from (x, y) = (0, 0): x := y+1 = 1, y := x+5 = 5 — the new
    // x must not leak into y's expression on any tier.
    fast.deliver_ref("hop").unwrap();
    assert_eq!(fast.vars(), &[1, 5]);
    let mut reference = hsm.instance_with(vec![]);
    reference.deliver_ref("hop").unwrap();
    assert_eq!(reference.vars(), &[1, 5]);
}

/// An identical guard re-declared on an enclosing state is dead code in
/// the cells where the inner one applies — the flattener must drop it
/// (the compiler would reject the duplicate) while keeping it live for
/// leaves that only inherit the outer declaration.
#[test]
fn inherited_identical_guard_is_dropped_not_rejected() {
    let mut b = HsmBuilder::new("shadowed", ["go"]);
    let p = b.add_param("p");
    let v = b.add_var("v");
    let top = b.add_state("Top");
    let inner = b.add_child(top, "Inner");
    let plain = b.add_child(top, "Plain");
    let won = b.add_state("InnerWon");
    let outer = b.add_state("OuterWon");
    let g = Guard::when(LinExpr::var(v), CmpOp::Lt, LinExpr::param(p));
    b.add_guarded_transition(inner, "go", g.clone(), vec![Update::Inc(v)], won, vec![]);
    b.add_guarded_transition(top, "go", g, vec![Update::Inc(v)], outer, vec![]);
    b.add_transition(won, "go", plain, vec![]);
    let hsm = b.build(top);

    // From Inner the inner declaration wins; from Plain (which only
    // inherits the outer one) the outer fires. Both lower and agree.
    let log = all_tiers_agree(&hsm, vec![3], &["go", "go", "go"]);
    assert_eq!(log.len(), 3);
    let mut reference = hsm.instance_with(vec![3]);
    reference.deliver_ref("go").unwrap();
    assert_eq!(reference.state_name(), "InnerWon");
    reference.deliver_ref("go").unwrap(); // InnerWon -> Top.Plain
    assert_eq!(reference.state_name(), "Top.Plain");
    reference.deliver_ref("go").unwrap(); // inherited outer declaration
    assert_eq!(reference.state_name(), "OuterWon");
}

/// The guarded worked model rides the whole pipeline: the retry-budget
/// session lifecycle agrees across every tier on a trace that spends
/// the budget, escalates, recovers and closes.
#[test]
fn guarded_session_lifecycle_rides_the_whole_pipeline() {
    let hsm = stategen_models::session_lifecycle_guarded();
    let trace = [
        "connect", "update", "ping", "abort", "update", "vote", "suspend", "resume", "vote",
        "commit", "update", "abort", "update", "abort", "recover", "update", "vote", "commit",
        "close", "connect",
    ];
    for budget in 1..4 {
        all_tiers_agree(&hsm, vec![budget], &trace);
    }
    // And the unguarded lifecycle still lowers to the dense tier.
    let plain = Engine::compile(Spec::hierarchical(stategen_models::session_lifecycle()))
        .expect("unguarded statechart compiles");
    assert_eq!(plain.tier(), Tier::FlattenedHsm);
}
