//! The EFSM's genericity (paper §5.3) extended to family members too
//! large to enumerate comfortably in debug builds: for r = 25 and r = 46
//! the parameter-generic EFSM is checked against the hand-written
//! algorithm (also generic), without generating the FSM at all.

use proptest::prelude::*;

use stategen_commit::{
    commit_efsm, commit_efsm_instance, CommitConfig, ReferenceCommit, MESSAGE_NAMES,
};
use stategen_core::{Efsm, ProtocolEngine};

use std::sync::OnceLock;

fn efsm() -> &'static Efsm {
    static EFSM: OnceLock<Efsm> = OnceLock::new();
    EFSM.get_or_init(commit_efsm)
}

fn check(r: u32, messages: &[usize]) {
    let config = CommitConfig::new(r).unwrap();
    let mut reference = ReferenceCommit::new(config);
    let mut e = commit_efsm_instance(efsm(), &config);
    for (step, &mi) in messages.iter().enumerate() {
        let name = MESSAGE_NAMES[mi % MESSAGE_NAMES.len()];
        let a = reference.deliver(name).unwrap();
        let b = e.deliver(name).unwrap();
        assert_eq!(a, b, "r={r} step {step} ({name})");
        assert_eq!(
            reference.is_finished(),
            e.is_finished(),
            "r={r} step {step}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn efsm_matches_reference_r25(messages in prop::collection::vec(0usize..5, 0..400)) {
        check(25, &messages);
    }

    #[test]
    fn efsm_matches_reference_r46(messages in prop::collection::vec(0usize..5, 0..700)) {
        check(46, &messages);
    }
}

/// A long biased trace that actually commits at r = 46: the vote
/// threshold (31) and commit threshold (16) must both be crossed.
#[test]
fn r46_commits_on_canonical_trace() {
    let config = CommitConfig::new(46).unwrap();
    let mut reference = ReferenceCommit::new(config);
    let mut e = commit_efsm_instance(efsm(), &config);
    let mut trace: Vec<&str> = vec!["update"];
    trace.extend(std::iter::repeat_n("vote", 30)); // total votes 31 = threshold
    trace.extend(std::iter::repeat_n("commit", 16)); // external commits 16 = f+1
    for m in trace {
        let a = reference.deliver(m).unwrap();
        let b = e.deliver(m).unwrap();
        assert_eq!(a, b);
    }
    assert!(reference.is_finished());
    assert!(e.is_finished());
}
