//! The paper-reproduction oracle: every headline number and artefact the
//! paper reports, asserted in one place through the facade crate.

use stategen::commit::{commit_efsm, CommitConfig, CommitModel, EarlyCommitModel};
use stategen::fsm::{generate, AbstractModel, Outcome};
use stategen::render::TextRenderer;

/// Paper Table 1 (plus the §3.4 pruning count for r = 4).
#[test]
fn table1_and_pipeline_counts() {
    let rows: [(u32, u32, u64, Option<usize>, usize); 5] = [
        (1, 4, 512, Some(48), 33),
        (2, 7, 1568, None, 85),
        (4, 13, 5408, None, 261),
        (8, 25, 20000, None, 901),
        (15, 46, 67712, None, 2945),
    ];
    for (f, r, initial, reachable, final_states) in rows {
        let config = CommitConfig::new(r).expect("valid");
        assert_eq!(config.max_faulty(), f);
        let g = generate(&CommitModel::new(config)).expect("generates");
        assert_eq!(g.report.initial_states, initial, "r={r} initial");
        if let Some(want) = reachable {
            assert_eq!(g.report.reachable_states, want, "r={r} reachable");
        }
        assert_eq!(g.report.final_states, final_states, "r={r} final");
    }
}

/// Paper §3.1: the r = 4 FSM the authors drew by hand had 33 states; the
/// generated machine reproduces that count with a unique final state.
#[test]
fn r4_machine_shape() {
    let g = generate(&CommitModel::new(CommitConfig::new(4).unwrap())).unwrap();
    assert_eq!(g.machine.state_count(), 33);
    assert!(g.machine.unique_final().is_some());
    assert_eq!(g.machine.messages().len(), 5);
}

/// Paper Fig 14: header, commentary and all three transitions.
#[test]
fn fig14_text() {
    let g = generate(&CommitModel::new(CommitConfig::new(4).unwrap())).unwrap();
    let (id, _) = g.machine.state_by_name("T/2/F/0/F/F/F").expect("exists");
    let text = TextRenderer::new().render_state(&g.machine, id);
    for needle in [
        "state: T/2/F/0/F/F/F",
        "Have received initial update from client.",
        "Have not sent a commit since neither the vote threshold (3) nor the external commit threshold (2) has been reached.",
        "Waiting for 1 further vote (including local vote if any) before sending commit.",
        "Waiting for 2 further external commits to finish.",
        " message: VOTE",
        "  transition to: T/3/T/0/T/F/F",
        " message: COMMIT",
        "  transition to: T/2/F/1/F/F/F",
        " message: FREE",
        "  action: ->not free",
        "  transition to: T/2/T/0/T/T/T",
    ] {
        assert!(text.contains(needle), "missing: {needle}\nin:\n{text}");
    }
}

/// Paper §5.3: the EFSM has 9 states, for every replication factor.
#[test]
fn efsm_nine_states() {
    assert_eq!(commit_efsm().state_count(), 9);
}

/// Paper Fig 3: the early model's labelled transition.
#[test]
fn fig3_early_transition() {
    let model = EarlyCommitModel::new(CommitConfig::new(4).unwrap());
    let space = model.state_space().unwrap();
    let s = space.parse_name("1/0/1/0").unwrap();
    match model.transition(&s, "vote") {
        Outcome::Transition(spec) => {
            assert_eq!(space.name_of(&spec.target), "2/1/1/1");
            assert_eq!(spec.actions.len(), 2); // ->vote, ->commit
        }
        Outcome::Ignored => panic!("Fig 3 transition must exist"),
    }
}

/// Paper Fig 16: the generated code's example branch
/// `case (T-1-T-1-F-T-T): sendCommit(); setState(T-2-T-1-T-T-T)`.
#[test]
fn fig16_generated_branch() {
    let g = generate(&CommitModel::new(CommitConfig::new(4).unwrap())).unwrap();
    let handlers = stategen::render::java_src::render_handlers(&g.machine);
    assert!(handlers.contains("void receiveVote() {"));
    assert!(handlers.contains("case (T-1-T-1-F-T-T) : {"));
    let branch = handlers
        .split("case (T-1-T-1-F-T-T) : {")
        .nth(1)
        .expect("branch exists")
        .split('}')
        .next()
        .expect("branch body");
    assert!(branch.contains("sendCommit();"));
    assert!(branch.contains("setState(T-2-T-1-T-T-T);"));
}

/// Paper §3.4: the initial state space is 2^5 · r² for every r.
#[test]
fn state_space_formula() {
    for r in 4..32u32 {
        let model = CommitModel::new(CommitConfig::new(r).unwrap());
        let space = model.state_space().unwrap();
        assert_eq!(space.state_count(), 32 * u64::from(r) * u64::from(r));
    }
}

/// Paper Fig 20: the generic abstract model is configured from component
/// and message descriptors.
#[test]
fn fig20_component_configuration() {
    let model = CommitModel::new(CommitConfig::new(4).unwrap());
    let space = model.state_space().unwrap();
    let names: Vec<&str> = space.components().iter().map(|c| c.name()).collect();
    assert_eq!(
        names,
        vec![
            "update_received",
            "votes_received",
            "vote_sent",
            "commits_received",
            "commit_sent",
            "could_choose",
            "has_chosen"
        ]
    );
    assert_eq!(
        model.messages(),
        vec!["update", "vote", "commit", "free", "not_free"]
    );
}
