//! Paper §2: Chord's short-cut links yield "routing performance that
//! scales logarithmically with the size of the network". Measures mean
//! and maximum lookup hops as the overlay doubles.

use asa_chord::{Key, Overlay};

fn main() {
    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>12}",
        "nodes", "lookups", "mean", "max", "0.5*log2(n)"
    );
    for exp in 4..=12u32 {
        let n = 1usize << exp;
        let overlay = Overlay::with_nodes((0..n as u64).map(|i| Key::hash(&i.to_be_bytes())), 8);
        let nodes = overlay.live_nodes();
        let samples = 2_000u64;
        let mut total = 0usize;
        let mut max = 0usize;
        for i in 0..samples {
            let origin = nodes[(i as usize * 31) % nodes.len()];
            let key = Key::hash(&(1_000_000 + i).to_be_bytes());
            let hops = overlay.route(origin, key).expect("routes").hops;
            total += hops;
            max = max.max(hops);
        }
        let mean = total as f64 / samples as f64;
        println!(
            "{:>6} {:>10} {:>9.2} {:>9} {:>12.2}",
            n,
            samples,
            mean,
            max,
            0.5 * (n as f64).log2()
        );
    }
    println!("\nmean hops should track ~0.5*log2(n): the paper's logarithmic scaling");
}
