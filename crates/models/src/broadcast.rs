//! Byzantine reliable broadcast as a message-counting FSM family.
//!
//! Paper §5.2 argues the methodology "is applicable to a range of
//! distributed applications that can be broadly characterised as message
//! counting algorithms", naming consensus and threshold algorithms. This
//! model is a Bracha-style reliable broadcast for one broadcast instance:
//! a node echoes the initial value, sends `ready` once enough echoes (or
//! enough readies) accumulate, and delivers once the external ready count
//! reaches the delivery threshold. The thresholds depend on `n`, so —
//! exactly as with the commit protocol — the states encode counts bounded
//! by `n` and the algorithm maps to a *family* of FSMs.

use stategen_core::{
    AbstractModel, Action, Outcome, StateComponent, StateSpace, StateVector, TransitionSpec,
};

const INITIAL_RECEIVED: usize = 0;
const ECHOES_RECEIVED: usize = 1;
const ECHO_SENT: usize = 2;
const READIES_RECEIVED: usize = 3;
const READY_SENT: usize = 4;

/// Reliable-broadcast abstract model for `n` participants tolerating
/// `f = floor((n-1)/3)` Byzantine peers.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastModel {
    n: u32,
}

impl BroadcastModel {
    /// Creates the model for `n ≥ 4` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (no Byzantine tolerance below 3f+1 with f ≥ 1).
    pub fn new(n: u32) -> Self {
        assert!(n >= 4, "reliable broadcast needs n >= 4");
        BroadcastModel { n }
    }

    /// Participants.
    pub fn participants(&self) -> u32 {
        self.n
    }

    /// Tolerated Byzantine peers.
    pub fn max_faulty(&self) -> u32 {
        (self.n - 1) / 3
    }

    /// Echo count (own echo included) required before sending `ready`.
    pub fn echo_threshold(&self) -> u32 {
        2 * self.max_faulty() + 1
    }

    /// External ready count that *amplifies* (forces our own `ready`).
    pub fn ready_amplify_threshold(&self) -> u32 {
        self.max_faulty() + 1
    }

    /// External ready count at which the value is delivered.
    pub fn delivery_threshold(&self) -> u32 {
        2 * self.max_faulty() + 1
    }

    fn total_echoes(v: &StateVector) -> u32 {
        v.get(ECHOES_RECEIVED) + u32::from(v.flag(ECHO_SENT))
    }

    /// Sends `ready` once, plus delivery bookkeeping.
    fn maybe_ready(&self, v: &mut StateVector, actions: &mut Vec<Action>) {
        if !v.flag(READY_SENT)
            && (Self::total_echoes(v) >= self.echo_threshold()
                || v.get(READIES_RECEIVED) >= self.ready_amplify_threshold())
        {
            v.set_flag(READY_SENT, true);
            actions.push(Action::send("ready"));
        }
    }
}

impl AbstractModel for BroadcastModel {
    fn machine_name(&self) -> String {
        format!("broadcast@n={}", self.n)
    }

    fn state_space(&self) -> Result<StateSpace, stategen_core::SchemaError> {
        let max = self.n - 1;
        StateSpace::new(vec![
            StateComponent::boolean("initial_received"),
            StateComponent::int("echoes_received", max),
            StateComponent::boolean("echo_sent"),
            StateComponent::int("readies_received", max),
            StateComponent::boolean("ready_sent"),
        ])
    }

    fn messages(&self) -> Vec<String> {
        vec!["initial".into(), "echo".into(), "ready".into()]
    }

    fn start_state(&self) -> StateVector {
        self.state_space().expect("schema is valid").zero_vector()
    }

    fn transition(&self, state: &StateVector, message: &str) -> Outcome {
        let mut v = state.clone();
        let mut actions = Vec::new();
        match message {
            "initial" => {
                if v.flag(INITIAL_RECEIVED) {
                    return Outcome::Ignored;
                }
                v.set_flag(INITIAL_RECEIVED, true);
                if !v.flag(ECHO_SENT) {
                    v.set_flag(ECHO_SENT, true);
                    actions.push(Action::send("echo"));
                }
                self.maybe_ready(&mut v, &mut actions);
            }
            "echo" => {
                if v.get(ECHOES_RECEIVED) == self.n - 1 {
                    return Outcome::Ignored;
                }
                v.set(ECHOES_RECEIVED, v.get(ECHOES_RECEIVED) + 1);
                self.maybe_ready(&mut v, &mut actions);
            }
            "ready" => {
                if v.get(READIES_RECEIVED) == self.n - 1 {
                    return Outcome::Ignored;
                }
                v.set(READIES_RECEIVED, v.get(READIES_RECEIVED) + 1);
                self.maybe_ready(&mut v, &mut actions);
            }
            _ => return Outcome::Ignored,
        }
        Outcome::Transition(TransitionSpec {
            target: v,
            actions,
            annotations: Vec::new(),
        })
    }

    fn is_final_state(&self, state: &StateVector) -> bool {
        state.get(READIES_RECEIVED) >= self.delivery_threshold()
    }

    fn describe_state(&self, state: &StateVector) -> Vec<String> {
        let mut lines = Vec::new();
        if self.is_final_state(state) {
            lines.push("The value has been delivered.".to_string());
        }
        lines.push(if state.flag(INITIAL_RECEIVED) {
            "Have received the initial value from the broadcaster.".to_string()
        } else {
            "Have not yet received the initial value.".to_string()
        });
        lines.push(format!(
            "Have received {} echoes and {} readies.",
            state.get(ECHOES_RECEIVED),
            state.get(READIES_RECEIVED)
        ));
        if state.flag(READY_SENT) {
            lines.push("Have sent ready.".to_string());
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stategen_core::{generate, validate_machine, FsmInstance, ProtocolEngine};

    #[test]
    fn generates_family_members() {
        for n in [4u32, 7, 10] {
            let g = generate(&BroadcastModel::new(n)).expect("generates");
            // 2^3 * n^2 product states.
            assert_eq!(g.report.initial_states, 8 * u64::from(n) * u64::from(n));
            assert!(g.report.final_states < g.report.reachable_states);
            assert!(validate_machine(&g.machine).is_valid());
            assert!(g.machine.unique_final().is_some(), "n={n}");
        }
    }

    #[test]
    fn happy_path_delivers() {
        let g = generate(&BroadcastModel::new(4)).unwrap();
        let mut node = FsmInstance::new(&g.machine);
        // Initial → echo; two more echoes (total 3 = 2f+1) → ready.
        assert_eq!(node.deliver("initial").unwrap(), vec![Action::send("echo")]);
        assert!(node.deliver("echo").unwrap().is_empty());
        assert_eq!(node.deliver("echo").unwrap(), vec![Action::send("ready")]);
        // Three external readies deliver.
        assert!(node.deliver("ready").unwrap().is_empty());
        assert!(node.deliver("ready").unwrap().is_empty());
        assert!(!node.is_finished());
        assert!(node.deliver("ready").unwrap().is_empty());
        assert!(node.is_finished());
    }

    #[test]
    fn ready_amplification_without_initial() {
        // A node that never saw the initial value still joins once f+1
        // readies arrive (so correct nodes converge).
        let g = generate(&BroadcastModel::new(4)).unwrap();
        let mut node = FsmInstance::new(&g.machine);
        assert!(node.deliver("ready").unwrap().is_empty());
        let actions = node.deliver("ready").unwrap();
        assert_eq!(
            actions,
            vec![Action::send("ready")],
            "f+1 = 2 readies amplify"
        );
    }

    #[test]
    fn echo_sent_only_once() {
        let g = generate(&BroadcastModel::new(4)).unwrap();
        let mut node = FsmInstance::new(&g.machine);
        node.deliver("initial").unwrap();
        // The duplicate initial is not applicable.
        assert!(node.deliver("initial").unwrap().is_empty());
    }

    #[test]
    fn thresholds_match_bracha() {
        let m = BroadcastModel::new(7);
        assert_eq!(m.max_faulty(), 2);
        assert_eq!(m.echo_threshold(), 5);
        assert_eq!(m.ready_amplify_threshold(), 3);
        assert_eq!(m.delivery_threshold(), 5);
    }

    #[test]
    #[should_panic(expected = "n >= 4")]
    fn small_n_rejected() {
        BroadcastModel::new(3);
    }
}
