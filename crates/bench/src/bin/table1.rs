//! Regenerates paper Table 1: f, r, initial states, final states and
//! generation time for every row, in the paper's layout, and checks the
//! state counts against the published values.

use stategen_commit::{CommitConfig, CommitModel};
use stategen_core::generate;
use stategen_render::{render_table1, Table1Row};

fn main() {
    const EXPECTED: [(u32, u32, u64, usize); 5] = [
        (1, 4, 512, 33),
        (2, 7, 1568, 85),
        (4, 13, 5408, 261),
        (8, 25, 20000, 901),
        (15, 46, 67712, 2945),
    ];
    println!("Table 1. Times to generate state machines of various complexities\n");
    let mut rows = Vec::new();
    let mut all_ok = true;
    for (f, r, want_initial, want_final) in EXPECTED {
        let model = CommitModel::new(CommitConfig::new(r).expect("valid r"));
        let g = generate(&model).expect("generation succeeds");
        all_ok &= g.report.initial_states == want_initial && g.report.final_states == want_final;
        rows.push(Table1Row::from_report(f, r, &g.report));
    }
    print!("{}", render_table1(&rows));
    println!();
    if all_ok {
        println!("state counts match the paper for all five rows");
    } else {
        println!("STATE COUNT MISMATCH against the paper");
        std::process::exit(1);
    }
    println!("(paper, Java on a 2.33 GHz Core 2 Duo: 0.10 / 0.12 / 0.38 / 2.2 / 19.1 s)");
}
