//! Guarded statecharts end-to-end: author a hierarchical machine with
//! variables, guards and updates (a retry-budget session lifecycle),
//! debug it on the direct interpreter, then hand it to the runtime
//! pipeline — `Spec::hsm_with_params` flattens it through the unified
//! lowering IR onto the *compiled-EFSM* tier, so one compiled machine
//! serves the whole parameterized statechart family with the same
//! `Runtime` vocabulary (and zero allocation per delivery) as any flat
//! machine.
//!
//! ```text
//! cargo run --release --example hsm_guarded
//! ```

use stategen::fsm::ProtocolEngine;
use stategen::models::session_lifecycle_guarded;
use stategen::render::render_hsm_dot;
use stategen::runtime::{Engine, Spec, Tier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The statechart: the session lifecycle plus a retry budget — one
    // parameter (`max_retries`), one variable (`retries`), guarded
    // transitions declared on the `Commit` composite and inherited by
    // its children.
    let hsm = session_lifecycle_guarded();
    println!(
        "statechart {}: {} states, {} transitions, params {:?}, vars {:?}, guarded: {}",
        hsm.name(),
        hsm.state_count(),
        hsm.transition_count(),
        hsm.params(),
        hsm.variables(),
        hsm.is_guarded(),
    );

    // Tier 0: the direct interpreter is the semantic reference — guards
    // evaluate against live registers, updates stage against
    // pre-transition values, and inheritance falls through when an
    // inner state's guards are all closed.
    let mut session = hsm.instance_with(vec![2]); // budget: 2 attempts
    for message in ["connect", "update", "abort", "update", "abort"] {
        let actions = session.deliver_ref(message)?.to_vec();
        println!(
            "  {message:<8} -> {:<40} retries={:?} sends {:?}",
            session.state_name(),
            session.vars(),
            actions
        );
    }
    assert!(session.state_name().starts_with("Failed"));

    // The unified lowering IR: reachable configurations became flat
    // states, and each flat cell lists its guarded candidates in firing
    // priority order. A guarded IR has no flat-FSM projection — it
    // lowers onto the register-machine tier.
    let ir = hsm.flatten_ir();
    let guarded_cells: usize = ir
        .states()
        .iter()
        .flat_map(|s| s.transitions())
        .filter(|t| !t.guard().conditions().is_empty())
        .count();
    println!(
        "\nflattened IR: {} configurations, {} guarded candidate transitions",
        ir.state_count(),
        guarded_cells,
    );

    // The pipeline binds the budget at ingest: one compiled machine per
    // *family*, one binding per deployment — exactly like `Spec::efsm`.
    let engine = Engine::compile(Spec::hsm_with_params(hsm.clone(), vec![3]))?;
    assert_eq!(engine.tier(), Tier::FlattenedHsmEfsm);
    println!(
        "engine: tier `{}`, {} flat states, params {:?}",
        engine.tier(),
        engine.state_count(),
        engine.params(),
    );

    // Serve 40k concurrent guarded sessions, sharded, batch-stepped —
    // the same facade vocabulary as every other tier; per-session
    // variable registers live inside the runtime's shards.
    let mut rt = engine.runtime().sharded(4);
    rt.spawn_many(40_000);
    let probe = rt.spawn();
    let trace: Vec<_> = ["connect", "update", "abort", "update", "vote", "commit"]
        .iter()
        .map(|m| engine.message_id(m).expect("lifecycle alphabet"))
        .collect();
    let mut transitions = 0;
    for &mid in &trace {
        transitions += rt.deliver_all(mid);
    }
    println!(
        "\nsharded runtime: {} sessions, {} transitions, probe session at `{}` retries={:?}",
        rt.len(),
        transitions,
        rt.state_name(probe),
        rt.vars(probe),
    );

    // Handles from untrusted sources go through the non-panicking path:
    // a released (recycled) handle is an error, not a crash.
    rt.release(probe);
    let err = rt
        .try_deliver(probe, trace[0])
        .expect_err("stale handles fail loudly");
    println!("stale handle rejected: {err}");

    // Guard and update annotations stay inspectable in the diagrams.
    // Guard brackets are rendered on their own label line (`\n[...]`),
    // so count that marker, not DOT's attribute brackets.
    let dot = render_hsm_dot(&hsm);
    let guarded_labels = dot.matches("\\n[").count();
    println!("\nDOT diagram carries {guarded_labels} guard-annotated edge labels");
    let line = dot
        .lines()
        .find(|l| l.contains("retries+1 <"))
        .expect("guarded edge label");
    println!("e.g. {}", line.trim());
    Ok(())
}
