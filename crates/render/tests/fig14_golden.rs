//! Golden test: the textual rendering of state `T/2/F/0/F/F/F` of the
//! r = 4 commit machine reproduces paper Fig 14 — header, generated
//! commentary, and all three transitions with their actions — line for
//! line (the paper's extra blank lines between blocks are collapsed).

use stategen_commit::{CommitConfig, CommitModel};
use stategen_core::generate;
use stategen_render::TextRenderer;

/// Paper Fig 14, with consecutive blank lines collapsed.
const FIG14: &str = "\
state: T/2/F/0/F/F/F
--------------------
Description:
Have received initial update from client.
Have not voted since another update has already been voted for.
Have received 2 votes and no commits.
Have not sent a commit since neither the vote threshold (3) nor the external commit threshold (2) has been reached.
May not choose since another ongoing update has been voted for.
Have not chosen this update since another ongoing update has been chosen.
Waiting for 1 further vote (including local vote if any) before sending commit.
Waiting for 2 further external commits to finish.
Transitions:
 message: VOTE
  action: ->vote
  action: ->commit
  transition to: T/3/T/0/T/F/F
 message: COMMIT
  transition to: T/2/F/1/F/F/F
 message: FREE
  action: ->vote
  action: ->commit
  action: ->not free
  transition to: T/2/T/0/T/T/T
";

fn collapse_blank_lines(s: &str) -> String {
    let mut out = String::new();
    for line in s.lines() {
        if line.trim().is_empty() {
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[test]
fn fig14_state_rendering_matches_paper() {
    let model = CommitModel::new(CommitConfig::new(4).expect("valid"));
    let generated = generate(&model).expect("generation succeeds");
    let (id, _) = generated
        .machine
        .state_by_name("T/2/F/0/F/F/F")
        .expect("Fig 14 state survives pruning and merging");
    let text = TextRenderer::new().render_state(&generated.machine, id);
    assert_eq!(collapse_blank_lines(&text), collapse_blank_lines(FIG14));
}

#[test]
fn whole_machine_rendering_contains_every_state() {
    let model = CommitModel::new(CommitConfig::new(4).expect("valid"));
    let generated = generate(&model).expect("generation succeeds");
    let text = TextRenderer::new().render(&generated.machine);
    assert!(text.starts_with("machine: commit@r=4\n"));
    assert!(text.contains("messages: UPDATE, VOTE, COMMIT, FREE, NOT FREE\n"));
    assert!(text.contains("states: 33\n"));
    for state in generated.machine.states() {
        assert!(
            text.contains(&format!("state: {}", state.name())),
            "missing state {}",
            state.name()
        );
    }
}
