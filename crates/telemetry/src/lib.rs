//! # stategen-telemetry
//!
//! Observability primitives for the stategen runtime, built around one
//! constraint: **telemetry that is compiled in but disabled must cost
//! nothing**, and telemetry that is enabled must cost no allocation on
//! any steady-state path. (The `runtime_facade` benchmark row gates the
//! first claim at ≤ 1.10× raw stepping; `runtime_observed` gates the
//! second at ≤ 1.25× with 0 allocs/delivery.)
//!
//! Three building blocks, documented in depth in
//! `docs/OBSERVABILITY.md`:
//!
//! * **Counters** — [`ShardCounters`] (one per pool shard, cache-line
//!   padded so shard workers never false-share) and [`RuntimeCounters`]
//!   (one per runtime, for facade-level events: timeouts, swaps,
//!   snapshots). All counters are relaxed [`AtomicU64`]s: single-writer
//!   per shard, merged on read into a plain [`MetricsSnapshot`] that is
//!   `Copy`, comparable, and exportable as JSON.
//! * **Histograms** — [`LogHistogram`], an HDR-style log-bucketed
//!   fixed-size histogram: values below 2⁵ are exact, larger values land
//!   in power-of-two bands of 16 sub-buckets each (relative error
//!   ≤ 6.25%), with no allocation after construction and conservative
//!   (upper-edge) quantile extraction.
//! * **Flight recorder** — [`FlightRecorder`], a fixed-capacity ring of
//!   [`TransitionEvent`]s behind the sealed [`RuntimeObserver`] hook.
//!   The hook is statically dispatched: the runtime's batch loop is
//!   monomorphized per observer, and [`RuntimeObserver::ENABLED`] is a
//!   monomorphization-time constant that selects literally the
//!   unobserved loop body for [`NoopObserver`]. The runtime's observed
//!   batch path goes further still — it runs that unobserved loop and
//!   then *replays* only the ring-sized tail of the batch from a
//!   pre-batch state copy, so recording cost is bounded by the ring
//!   capacity rather than the batch's transition count.
//!
//! The trait is *sealed* — only the two observers in this crate
//! implement it — so the runtime's delivery loop is never asked to
//! monomorphize against arbitrary user code with arbitrary cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket precision of [`LogHistogram`]: values below `2^SUB_BITS`
/// are recorded exactly.
pub const SUB_BITS: u32 = 5;
/// Exact buckets: one per value in `0..2^SUB_BITS`.
const EXACT: usize = 1 << SUB_BITS; // 32
/// Sub-buckets per power-of-two band above the exact range.
const SUBS: usize = 1 << (SUB_BITS - 1); // 16
/// Bands covering `2^SUB_BITS ..= u64::MAX`.
const BANDS: usize = 64 - SUB_BITS as usize; // 59
/// Total bucket count (976 for `SUB_BITS = 5`, ~8 KiB of `u64`s).
const BUCKETS: usize = EXACT + BANDS * SUBS;

/// Per-shard event counters: one instance per pool shard, written only
/// by that shard's worker and merged on read.
///
/// `#[repr(align(64))]` pads each instance to its own cache line so
/// parallel shard workers never false-share counter lines. All fields
/// are relaxed atomics: there is exactly one writer per instance (the
/// shard is `&mut` while delivering), so the atomics buy lock-free
/// merged *reads* ([`ShardCounters::merge_into`] takes `&self`), not
/// cross-writer coordination.
///
/// Counter semantics (see `docs/OBSERVABILITY.md` for the full table):
///
/// * `deliveries` — messages delivered to *live* sessions, single and
///   batch paths alike (a batch counts one delivery per live session).
/// * `transitions` — deliveries that took a transition (self-loops
///   included). `deliveries - transitions` is the **guard fall-through**
///   count: deliveries absorbed with no matching edge, a false guard, or
///   an absorbing finish state.
/// * `spawns` / `resets` — sessions started / returned to start.
/// * `releases_finished` — released slots whose session had reached a
///   finish state (normal end-of-life reclaim).
/// * `releases_aborted` — released slots whose session was still mid
///   execution (user abort / GC).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct ShardCounters {
    deliveries: AtomicU64,
    transitions: AtomicU64,
    spawns: AtomicU64,
    releases_finished: AtomicU64,
    releases_aborted: AtomicU64,
    resets: AtomicU64,
}

impl ShardCounters {
    /// A zeroed counter block.
    pub fn new() -> Self {
        ShardCounters::default()
    }

    /// Counts `n` deliveries to live sessions (one batch = one call).
    #[inline]
    pub fn add_deliveries(&self, n: u64) {
        self.deliveries.fetch_add(n, Relaxed);
    }

    /// Counts `n` taken transitions (one batch = one call).
    #[inline]
    pub fn add_transitions(&self, n: u64) {
        self.transitions.fetch_add(n, Relaxed);
    }

    /// Counts one spawned session.
    #[inline]
    pub fn inc_spawns(&self) {
        self.spawns.fetch_add(1, Relaxed);
    }

    /// Counts one released slot whose session had finished.
    #[inline]
    pub fn inc_releases_finished(&self) {
        self.releases_finished.fetch_add(1, Relaxed);
    }

    /// Counts one released slot whose session was still executing.
    #[inline]
    pub fn inc_releases_aborted(&self) {
        self.releases_aborted.fetch_add(1, Relaxed);
    }

    /// Counts `n` sessions returned to the start state.
    #[inline]
    pub fn add_resets(&self, n: u64) {
        self.resets.fetch_add(n, Relaxed);
    }

    /// Accumulates this shard's counters into a snapshot (the
    /// fall-through count is derived here: deliveries − transitions).
    pub fn merge_into(&self, into: &mut MetricsSnapshot) {
        let deliveries = self.deliveries.load(Relaxed);
        let transitions = self.transitions.load(Relaxed);
        into.deliveries += deliveries;
        into.transitions += transitions;
        into.guard_fall_throughs += deliveries - transitions;
        into.spawns += self.spawns.load(Relaxed);
        into.releases_finished += self.releases_finished.load(Relaxed);
        into.releases_aborted += self.releases_aborted.load(Relaxed);
        into.resets += self.resets.load(Relaxed);
    }
}

impl Clone for ShardCounters {
    fn clone(&self) -> Self {
        ShardCounters {
            deliveries: AtomicU64::new(self.deliveries.load(Relaxed)),
            transitions: AtomicU64::new(self.transitions.load(Relaxed)),
            spawns: AtomicU64::new(self.spawns.load(Relaxed)),
            releases_finished: AtomicU64::new(self.releases_finished.load(Relaxed)),
            releases_aborted: AtomicU64::new(self.releases_aborted.load(Relaxed)),
            resets: AtomicU64::new(self.resets.load(Relaxed)),
        }
    }
}

/// Runtime-level (facade) event counters: timeouts, hot-swap phases and
/// snapshot/restore traffic. One instance per runtime, cache-line
/// padded like [`ShardCounters`]; atomics let `&self` accessors (e.g. a
/// snapshot capture) count themselves.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct RuntimeCounters {
    timeouts_fired: AtomicU64,
    timeouts_cancelled: AtomicU64,
    swap_migrated_sessions: AtomicU64,
    swaps_drained: AtomicU64,
    swaps_completed: AtomicU64,
    swaps_aborted: AtomicU64,
    snapshots: AtomicU64,
    restores: AtomicU64,
}

impl RuntimeCounters {
    /// A zeroed counter block.
    pub fn new() -> Self {
        RuntimeCounters::default()
    }

    /// Counts `n` timeouts that expired and were delivered.
    #[inline]
    pub fn add_timeouts_fired(&self, n: u64) {
        self.timeouts_fired.fetch_add(n, Relaxed);
    }

    /// Counts one armed timeout cancelled before firing.
    #[inline]
    pub fn inc_timeouts_cancelled(&self) {
        self.timeouts_cancelled.fetch_add(1, Relaxed);
    }

    /// Counts `n` sessions migrated in place by a fingerprint-matched
    /// hot-swap.
    #[inline]
    pub fn add_swap_migrated(&self, n: u64) {
        self.swap_migrated_sessions.fetch_add(n, Relaxed);
    }

    /// Counts one hot-swap entering the draining phase.
    #[inline]
    pub fn inc_swaps_drained(&self) {
        self.swaps_drained.fetch_add(1, Relaxed);
    }

    /// Counts one hot-swap completing (immediately or after a drain).
    #[inline]
    pub fn inc_swaps_completed(&self) {
        self.swaps_completed.fetch_add(1, Relaxed);
    }

    /// Counts one hot-swap rolled back.
    #[inline]
    pub fn inc_swaps_aborted(&self) {
        self.swaps_aborted.fetch_add(1, Relaxed);
    }

    /// Counts one snapshot capture (whole-pool or single-session).
    #[inline]
    pub fn inc_snapshots(&self) {
        self.snapshots.fetch_add(1, Relaxed);
    }

    /// Counts one restore from a snapshot.
    #[inline]
    pub fn inc_restores(&self) {
        self.restores.fetch_add(1, Relaxed);
    }

    /// Accumulates these counters into a snapshot.
    pub fn merge_into(&self, into: &mut MetricsSnapshot) {
        into.timeouts_fired += self.timeouts_fired.load(Relaxed);
        into.timeouts_cancelled += self.timeouts_cancelled.load(Relaxed);
        into.swap_migrated_sessions += self.swap_migrated_sessions.load(Relaxed);
        into.swaps_drained += self.swaps_drained.load(Relaxed);
        into.swaps_completed += self.swaps_completed.load(Relaxed);
        into.swaps_aborted += self.swaps_aborted.load(Relaxed);
        into.snapshots += self.snapshots.load(Relaxed);
        into.restores += self.restores.load(Relaxed);
    }
}

impl Clone for RuntimeCounters {
    fn clone(&self) -> Self {
        let mut snap = MetricsSnapshot::default();
        self.merge_into(&mut snap);
        let fresh = RuntimeCounters::new();
        fresh.timeouts_fired.store(snap.timeouts_fired, Relaxed);
        fresh
            .timeouts_cancelled
            .store(snap.timeouts_cancelled, Relaxed);
        fresh
            .swap_migrated_sessions
            .store(snap.swap_migrated_sessions, Relaxed);
        fresh.swaps_drained.store(snap.swaps_drained, Relaxed);
        fresh.swaps_completed.store(snap.swaps_completed, Relaxed);
        fresh.swaps_aborted.store(snap.swaps_aborted, Relaxed);
        fresh.snapshots.store(snap.snapshots, Relaxed);
        fresh.restores.store(snap.restores, Relaxed);
        fresh
    }
}

/// A point-in-time, plain-`u64` capture of every counter: what
/// `Runtime::metrics()` returns. Merge snapshots across runtimes with
/// [`MetricsSnapshot::merge`]; export with [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Messages delivered to live sessions (single + batch paths).
    pub deliveries: u64,
    /// Deliveries that took a transition (self-loops included).
    pub transitions: u64,
    /// Deliveries absorbed without a transition: no edge for the
    /// message, every candidate guard false, or an absorbing finish
    /// state. Always `deliveries - transitions`.
    pub guard_fall_throughs: u64,
    /// Sessions spawned.
    pub spawns: u64,
    /// Released slots whose session had reached a finish state.
    pub releases_finished: u64,
    /// Released slots whose session was still mid-execution.
    pub releases_aborted: u64,
    /// Sessions returned to the start state.
    pub resets: u64,
    /// Timeouts that expired and were delivered to a live session.
    pub timeouts_fired: u64,
    /// Armed timeouts cancelled before firing (explicit cancels and the
    /// eager cancel on release).
    pub timeouts_cancelled: u64,
    /// Timer-wheel cascade operations (an armed deadline re-filed into
    /// a finer wheel level while advancing).
    pub timer_cascades: u64,
    /// Sessions migrated in place by fingerprint-matched hot-swaps.
    pub swap_migrated_sessions: u64,
    /// Hot-swaps that entered the draining phase.
    pub swaps_drained: u64,
    /// Hot-swaps completed (immediately, by migration, or after drain).
    pub swaps_completed: u64,
    /// Hot-swaps rolled back via abort.
    pub swaps_aborted: u64,
    /// Snapshot captures (whole-pool and single-session).
    pub snapshots: u64,
    /// Restores from a snapshot.
    pub restores: u64,
}

impl MetricsSnapshot {
    /// Total released slots, finished and aborted alike.
    pub fn releases(&self) -> u64 {
        self.releases_finished + self.releases_aborted
    }

    /// Accumulates `other` into `self`, field by field.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.deliveries += other.deliveries;
        self.transitions += other.transitions;
        self.guard_fall_throughs += other.guard_fall_throughs;
        self.spawns += other.spawns;
        self.releases_finished += other.releases_finished;
        self.releases_aborted += other.releases_aborted;
        self.resets += other.resets;
        self.timeouts_fired += other.timeouts_fired;
        self.timeouts_cancelled += other.timeouts_cancelled;
        self.timer_cascades += other.timer_cascades;
        self.swap_migrated_sessions += other.swap_migrated_sessions;
        self.swaps_drained += other.swaps_drained;
        self.swaps_completed += other.swaps_completed;
        self.swaps_aborted += other.swaps_aborted;
        self.snapshots += other.snapshots;
        self.restores += other.restores;
    }

    /// Renders the snapshot as a single JSON object (stable key order,
    /// no external dependencies).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"deliveries\": {}, \"transitions\": {}, ",
                "\"guard_fall_throughs\": {}, \"spawns\": {}, ",
                "\"releases_finished\": {}, \"releases_aborted\": {}, ",
                "\"resets\": {}, \"timeouts_fired\": {}, ",
                "\"timeouts_cancelled\": {}, \"timer_cascades\": {}, ",
                "\"swap_migrated_sessions\": {}, \"swaps_drained\": {}, ",
                "\"swaps_completed\": {}, \"swaps_aborted\": {}, ",
                "\"snapshots\": {}, \"restores\": {}}}"
            ),
            self.deliveries,
            self.transitions,
            self.guard_fall_throughs,
            self.spawns,
            self.releases_finished,
            self.releases_aborted,
            self.resets,
            self.timeouts_fired,
            self.timeouts_cancelled,
            self.timer_cascades,
            self.swap_migrated_sessions,
            self.swaps_drained,
            self.swaps_completed,
            self.swaps_aborted,
            self.snapshots,
            self.restores,
        )
    }
}

/// An HDR-style log-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, retry counts, …): fixed 976-bucket layout, zero
/// allocation after construction, O(1) record, O(buckets) quantile.
///
/// **Bucket scheme** (`SUB_BITS = 5`): values `0..32` get one exact
/// bucket each; every power-of-two band `[2^m, 2^(m+1))` above that is
/// split into 16 equal sub-buckets of width `2^(m-4)`. A recorded value
/// is therefore never mis-bucketed by more than one sub-bucket width —
/// a relative error of at most `2^(1-SUB_BITS)` = **6.25%**.
///
/// **Quantiles are conservative:** [`LogHistogram::quantile`] returns
/// the *upper edge* of the bucket holding the requested rank (clamped
/// to the true observed maximum), so a reported p99 is never below the
/// real p99.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Box<[u64]>,
    count: u64,
    max: u64,
    sum: u64,
}

impl LogHistogram {
    /// An empty histogram (the only allocation this type ever makes).
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKETS].into_boxed_slice(),
            count: 0,
            max: 0,
            sum: 0,
        }
    }

    /// The bucket index of `value`.
    #[inline]
    fn index(value: u64) -> usize {
        if value < EXACT as u64 {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros(); // >= SUB_BITS
            let band = (msb - SUB_BITS + 1) as usize; // 1..=BANDS
            let within = ((value - (1u64 << msb)) >> (msb - (SUB_BITS - 1))) as usize;
            EXACT + (band - 1) * SUBS + within
        }
    }

    /// The largest value a bucket can hold (inclusive).
    fn upper_edge(index: usize) -> u64 {
        if index < EXACT {
            index as u64
        } else {
            let rel = index - EXACT;
            let band = rel / SUBS + 1;
            let within = (rel % SUBS) as u64;
            let msb = band as u32 + SUB_BITS - 1;
            let width = 1u64 << (msb - (SUB_BITS - 1));
            (1u64 << msb) + within * width + (width - 1)
        }
    }

    /// Records one sample. O(1), no allocation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[LogHistogram::index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The mean of recorded samples (0 when empty; the running sum
    /// saturates at `u64::MAX`).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper edge of the
    /// bucket containing the `ceil(q · count)`-th smallest sample,
    /// clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return LogHistogram::upper_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`LogHistogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Accumulates `other`'s samples into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// One recorded transition: the flight recorder's ring entry.
///
/// `tick` is the recorder's own monotone event sequence number (callers
/// pass 0 — [`FlightRecorder`] derives it from ring position when
/// iterating), so a dump orders events exactly as the shard took them
/// even across batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransitionEvent {
    /// Slot index of the session within its shard.
    pub slot: u32,
    /// The slot's generation (distinguishes recycled executions).
    pub generation: u32,
    /// Dense state id the session left.
    pub from: u32,
    /// Dense state id the session entered.
    pub to: u32,
    /// Dense id of the message that drove the transition.
    pub message: u32,
    /// Actions the transition triggered.
    pub actions: u32,
    /// Monotone per-recorder event sequence number.
    pub tick: u64,
}

mod sealed {
    /// Seals [`super::RuntimeObserver`]: the runtime's delivery loop is
    /// monomorphized only against this crate's two observers, never
    /// against arbitrary user code.
    pub trait Sealed {}
}

/// The transition hook the runtime's delivery paths call. **Sealed**:
/// only [`NoopObserver`] (statically free) and [`FlightRecorder`]
/// implement it, so the hook's cost envelope is fixed by this crate.
pub trait RuntimeObserver: sealed::Sealed {
    /// `false` only for [`NoopObserver`]. Delivery loops guard event
    /// construction behind this constant, so the disabled
    /// monomorphization contains no observer code at all — not even
    /// the loads (slot generations, action lengths) that feed the
    /// event, whose bounds checks would otherwise survive dead-code
    /// elimination.
    const ENABLED: bool = true;

    /// Called once per taken transition, before the next session steps.
    fn on_transition(&mut self, event: TransitionEvent);
}

/// The disabled observer: an empty `#[inline(always)]` hook, so the
/// monomorphized delivery loop is *identical* to an unobserved one —
/// the event construction feeding it is dead code and is eliminated.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl sealed::Sealed for NoopObserver {}

impl RuntimeObserver for NoopObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_transition(&mut self, _event: TransitionEvent) {}
}

/// A ring entry: a [`TransitionEvent`] packed into two words so the
/// hot-loop record is two 8-byte stores instead of four (and spills
/// half as many temporaries). `from`/`to`/`message`/`actions` are
/// truncated to 16 bits — dense state and message ids beyond 65535
/// would wrap in a dump, but the recorder is a diagnostic ring, and no
/// generated machine is within two orders of magnitude of that.
/// `tick` is not stored at all: the ring index *is* the low bits of the
/// sequence number, so iteration reconstructs it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct CompactEvent {
    /// `slot | generation << 32`.
    slot_gen: u64,
    /// `from | to << 16 | message << 32 | actions << 48`.
    rest: u64,
}

impl CompactEvent {
    #[inline(always)]
    fn pack(e: &TransitionEvent) -> CompactEvent {
        CompactEvent {
            slot_gen: u64::from(e.slot) | u64::from(e.generation) << 32,
            rest: u64::from(e.from as u16)
                | u64::from(e.to as u16) << 16
                | u64::from(e.message as u16) << 32
                | u64::from(e.actions as u16) << 48,
        }
    }

    fn unpack(self, tick: u64) -> TransitionEvent {
        TransitionEvent {
            slot: self.slot_gen as u32,
            generation: (self.slot_gen >> 32) as u32,
            from: self.rest as u16 as u32,
            to: (self.rest >> 16) as u16 as u32,
            message: (self.rest >> 32) as u16 as u32,
            actions: (self.rest >> 48) as u16 as u32,
            tick,
        }
    }
}

/// A fixed-capacity ring buffer of the most recent [`TransitionEvent`]s
/// — the per-shard flight recorder. Capacity is rounded up to a power
/// of two at construction (the ring's only allocation); recording packs
/// the event into a 16-byte entry and does a masked store plus a
/// sequence bump, O(1) and allocation-free.
///
/// Dump the ring with [`FlightRecorder::iter`] (oldest surviving event
/// first); `recorded()` tells how many events were ever recorded, so a
/// dump can say "… N earlier events overwritten".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    events: Box<[CompactEvent]>,
    /// Total events ever recorded; `head & mask` is the next write slot.
    head: u64,
    mask: u64,
}

impl sealed::Sealed for FlightRecorder {}

impl RuntimeObserver for FlightRecorder {
    #[inline(always)]
    fn on_transition(&mut self, event: TransitionEvent) {
        self.record(event);
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (rounded up to a
    /// power of two, minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        FlightRecorder {
            events: vec![CompactEvent::default(); capacity].into_boxed_slice(),
            head: 0,
            mask: capacity as u64 - 1,
        }
    }

    /// The ring's capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.events.len()
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.head.min(self.events.len() as u64) as usize
    }

    /// `true` while nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.head == 0
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.head
    }

    /// Records an event, overwriting the oldest entry when full. The
    /// event's `tick` is *implied* by its position — stamped with this
    /// recorder's sequence number on iteration, not stored.
    #[inline(always)]
    pub fn record(&mut self, event: TransitionEvent) {
        // `len` is a power of two ≥ 1, so `head & (len - 1) < len`
        // always holds; spelling the mask from `len` (instead of the
        // stored `mask` field) lets the optimizer prove the store in
        // bounds and drop the panic path from the hot loop.
        let len = self.events.len();
        if len == 0 {
            return;
        }
        self.events[(self.head as usize) & (len - 1)] = CompactEvent::pack(&event);
        self.head += 1;
    }

    /// The surviving events, oldest first, `tick` stamped with each
    /// event's global sequence number (`recorded() - len() ..`).
    pub fn iter(&self) -> impl Iterator<Item = TransitionEvent> + '_ {
        let start = self.head - self.len() as u64;
        (start..self.head).map(move |tick| self.events[(tick & self.mask) as usize].unpack(tick))
    }

    /// Advances the sequence counter past `n` events that were recorded
    /// and immediately overwritten without surviving — the batch replay
    /// path accounts a whole batch's overwritten prefix this way, then
    /// records only the surviving tail. Equivalent to `n` calls to
    /// [`FlightRecorder::record`] each followed by an overwrite.
    pub fn skip_overwritten(&mut self, n: u64) {
        self.head += n;
    }

    /// Forgets every recorded event (capacity is kept).
    pub fn clear(&mut self) {
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_exact_below_the_sub_bucket_range() {
        let mut h = LogHistogram::new();
        for v in 0..EXACT as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), EXACT as u64);
        assert_eq!(h.quantile(1.0), EXACT as u64 - 1);
        assert_eq!(h.p50(), EXACT as u64 / 2 - 1);
        assert_eq!(h.max(), EXACT as u64 - 1);
    }

    #[test]
    fn histogram_error_is_bounded_at_six_percent() {
        // Quantile of a single-sample histogram is that bucket's upper
        // edge clamped to max: within 6.25% above the sample.
        for shift in 0..63 {
            for offset in [0u64, 1, 3] {
                let v = (1u64 << shift) + offset;
                let mut h = LogHistogram::new();
                h.record(v);
                let q = h.quantile(0.5);
                assert!(q >= v.min(h.max()), "quantile below sample for {v}");
                assert!(
                    q <= v + v / 16 + 1,
                    "quantile {q} exceeds 6.25% error bound for {v}"
                );
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_conservative_and_ordered() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        let (p50, p99, p999) = (h.p50(), h.p99(), h.p999());
        assert!((5_000..=5_000 + 5_000 / 16 + 1).contains(&p50));
        assert!((9_900..=9_900 + 9_900 / 16 + 1).contains(&p99));
        assert!((9_990..=10_000).contains(&p999));
        assert!(p50 <= p99 && p99 <= p999);
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.mean(), (1 + 10_000) * 10_000 / 2 / 10_000);
    }

    #[test]
    fn histogram_merge_equals_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for i in 0..1_000u64 {
            let v = i * 37 % 4_096;
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn recorder_overwrites_oldest_and_stamps_ticks() {
        let mut r = FlightRecorder::new(4);
        assert_eq!(r.capacity(), 4);
        for i in 0..6u32 {
            r.record(TransitionEvent {
                slot: i,
                ..TransitionEvent::default()
            });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.recorded(), 6);
        let slots: Vec<u32> = r.iter().map(|e| e.slot).collect();
        assert_eq!(slots, [2, 3, 4, 5]);
        let ticks: Vec<u64> = r.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, [2, 3, 4, 5]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn counters_merge_and_derive_fall_throughs() {
        let c = ShardCounters::new();
        c.add_deliveries(10);
        c.add_transitions(7);
        c.inc_spawns();
        c.inc_releases_finished();
        c.inc_releases_aborted();
        c.add_resets(3);
        let mut snap = MetricsSnapshot::default();
        c.merge_into(&mut snap);
        c.merge_into(&mut snap); // merging twice doubles
        assert_eq!(snap.deliveries, 20);
        assert_eq!(snap.transitions, 14);
        assert_eq!(snap.guard_fall_throughs, 6);
        assert_eq!(snap.spawns, 2);
        assert_eq!(snap.releases(), 4);
        assert_eq!(snap.resets, 6);
        let json = snap.to_json();
        assert!(json.contains("\"guard_fall_throughs\": 6"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn noop_observer_is_callable_and_inert() {
        let mut o = NoopObserver;
        o.on_transition(TransitionEvent::default());
    }
}
