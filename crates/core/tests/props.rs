//! Property-based tests of the core invariants: state-space encoding,
//! generation pipeline monotonicity, prune/merge idempotence.

use proptest::prelude::*;

use stategen_core::{
    generate, generate_with, merge_equivalent_states, prune_unreachable, validate_machine,
    AbstractModel, Action, CompiledMachine, FsmInstance, GenerateOptions, MergeStrategy, Outcome,
    ProtocolEngine, SessionPool, ShardedPool, StateComponent, StateSpace, StateVector,
};

// ---------------------------------------------------------------------
// State-space encoding properties.
// ---------------------------------------------------------------------

/// Strategy: a component list of 1..=6 entries, bools or small ints.
fn component_list() -> impl Strategy<Value = Vec<StateComponent>> {
    prop::collection::vec(
        prop_oneof![
            Just(None::<u32>),        // boolean
            (1u32..6).prop_map(Some), // int with max 1..5
        ],
        1..=6,
    )
    .prop_map(|kinds| {
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| match kind {
                None => StateComponent::boolean(format!("b{i}")),
                Some(max) => StateComponent::int(format!("n{i}"), max),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(components in component_list()) {
        let space = StateSpace::new(components).expect("valid schema");
        // Exhaustive over the whole space (bounded by 6 components of ≤6 values).
        for (i, v) in space.iter().enumerate() {
            prop_assert_eq!(space.encode(&v), i as u64);
            prop_assert_eq!(space.decode(i as u64), v);
        }
    }

    #[test]
    fn name_parse_roundtrip(components in component_list(), code_seed in any::<u64>()) {
        let space = StateSpace::new(components).expect("valid schema");
        let code = code_seed % space.state_count();
        let v = space.decode(code);
        let name = space.name_of(&v);
        prop_assert_eq!(space.parse_name(&name).expect("parses"), v);
    }

    #[test]
    fn state_count_is_product(components in component_list()) {
        let expected: u64 = components.iter().map(|c| c.cardinality()).product();
        let space = StateSpace::new(components).expect("valid schema");
        prop_assert_eq!(space.state_count(), expected);
        prop_assert_eq!(space.iter().count() as u64, expected);
    }
}

// ---------------------------------------------------------------------
// Pipeline properties over a parameterised model family.
// ---------------------------------------------------------------------

/// A randomised threshold model: two counters and a flag; message `a`
/// bumps counter 0, `b` bumps counter 1; crossing `threshold` on the sum
/// fires an action; completion when counter 1 reaches its max.
#[derive(Debug, Clone)]
struct TwoCounter {
    max0: u32,
    max1: u32,
    threshold: u32,
}

impl AbstractModel for TwoCounter {
    fn machine_name(&self) -> String {
        format!("two-counter@{}x{}t{}", self.max0, self.max1, self.threshold)
    }

    fn state_space(&self) -> Result<StateSpace, stategen_core::SchemaError> {
        StateSpace::new(vec![
            StateComponent::int("c0", self.max0),
            StateComponent::int("c1", self.max1),
            StateComponent::boolean("fired"),
        ])
    }

    fn messages(&self) -> Vec<String> {
        vec!["a".into(), "b".into()]
    }

    fn start_state(&self) -> StateVector {
        self.state_space().expect("schema").zero_vector()
    }

    fn transition(&self, state: &StateVector, message: &str) -> Outcome {
        let idx = if message == "a" { 0 } else { 1 };
        let max = if idx == 0 { self.max0 } else { self.max1 };
        if state.get(idx) == max {
            return Outcome::Ignored;
        }
        let mut t = state.clone();
        t.set(idx, state.get(idx) + 1);
        let mut actions = Vec::new();
        if t.get(0) + t.get(1) >= self.threshold && !t.flag(2) {
            t.set_flag(2, true);
            actions.push(Action::send("fire"));
        }
        Outcome::to(t, actions)
    }

    fn is_final_state(&self, state: &StateVector) -> bool {
        state.get(1) == self.max1
    }
}

fn two_counter() -> impl Strategy<Value = TwoCounter> {
    (1u32..6, 1u32..6, 1u32..8).prop_map(|(max0, max1, threshold)| TwoCounter {
        max0,
        max1,
        threshold,
    })
}

proptest! {
    #[test]
    fn pipeline_counts_are_monotone(model in two_counter()) {
        let g = generate(&model).expect("generates");
        prop_assert!(g.report.final_states <= g.report.reachable_states);
        prop_assert!(g.report.reachable_states as u64 <= g.report.initial_states);
        prop_assert_eq!(
            g.report.initial_states,
            u64::from(model.max0 + 1) * u64::from(model.max1 + 1) * 2
        );
    }

    #[test]
    fn generated_machines_validate(model in two_counter()) {
        let g = generate(&model).expect("generates");
        let report = validate_machine(&g.machine);
        prop_assert!(report.is_valid(), "{:?}", report.diagnostics);
        prop_assert_eq!(report.diagnostics.len(), 0, "{:?}", report.diagnostics);
    }

    #[test]
    fn prune_and_merge_idempotent(model in two_counter()) {
        let g = generate(&model).expect("generates");
        let pruned_again = prune_unreachable(&g.machine);
        prop_assert_eq!(pruned_again.state_count(), g.machine.state_count());
        let (merged_again, _) =
            merge_equivalent_states(&g.machine, MergeStrategy::ToFixpoint);
        prop_assert_eq!(merged_again.state_count(), g.machine.state_count());
    }

    #[test]
    fn merge_preserves_reachability(model in two_counter()) {
        // Pruning after merging removes nothing: merging never makes a
        // state unreachable.
        let options = GenerateOptions { merge: MergeStrategy::ToFixpoint, ..Default::default() };
        let g = generate_with(&model, &options).expect("generates");
        let pruned = prune_unreachable(&g.machine);
        prop_assert_eq!(pruned.state_count(), g.machine.state_count());
    }

    #[test]
    fn merge_never_crosses_roles(model in two_counter()) {
        let options = GenerateOptions { merge: MergeStrategy::None, ..Default::default() };
        let unmerged = generate_with(&model, &options).expect("generates");
        let (merged, _) =
            merge_equivalent_states(&unmerged.machine, MergeStrategy::ToFixpoint);
        let finals_before = unmerged.machine.final_state_ids().len();
        let finals_after = merged.final_state_ids().len();
        prop_assert!(finals_after <= finals_before);
        prop_assert!(finals_before == 0 || finals_after >= 1);
    }

    #[test]
    fn single_pass_never_smaller_than_fixpoint(model in two_counter()) {
        let single = GenerateOptions { merge: MergeStrategy::SinglePass, ..Default::default() };
        let fix = GenerateOptions { merge: MergeStrategy::ToFixpoint, ..Default::default() };
        let a = generate_with(&model, &single).expect("generates");
        let b = generate_with(&model, &fix).expect("generates");
        prop_assert!(a.machine.state_count() >= b.machine.state_count());
    }
}

// ---------------------------------------------------------------------
// Compiled-tier equivalence: flattening a generated machine into dense
// tables must not change its observable behaviour.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The interpreted instance, the compiled instance and a batched
    /// session must emit identical actions, visit identically named
    /// states and agree on completion for any random message sequence
    /// over any family member.
    #[test]
    fn compiled_execution_matches_interpreter(
        model in two_counter(),
        messages in prop::collection::vec(0usize..2, 0..64),
    ) {
        let g = generate(&model).expect("generates");
        let compiled = CompiledMachine::compile(&g.machine);
        prop_assert_eq!(compiled.state_count(), g.machine.state_count());
        prop_assert_eq!(compiled.messages(), g.machine.messages());

        let mut fsm = FsmInstance::new(&g.machine);
        let mut single = compiled.instance();
        let mut pool = SessionPool::new(&compiled, 2);
        for (step, &mi) in messages.iter().enumerate() {
            let name = if mi == 0 { "a" } else { "b" };
            let mid = compiled.message_id(name).expect("declared message");
            prop_assert_eq!(Some(mid), g.machine.message_id(name));

            let a_fsm = fsm.deliver(name).expect("declared message");
            let a_single = single.deliver(name).expect("declared message");
            let a_pool = pool.deliver(0, mid);
            pool.deliver(1, mid);
            prop_assert_eq!(&a_fsm, &a_single, "step {}", step);
            prop_assert_eq!(a_fsm.as_slice(), a_pool, "step {}", step);
            prop_assert_eq!(fsm.state_name_str(), single.state_name_str(), "step {}", step);
            prop_assert_eq!(single.current_state(), pool.state(0), "step {}", step);
            prop_assert_eq!(pool.state(0), pool.state(1), "step {}", step);
            prop_assert_eq!(fsm.is_finished(), single.is_finished(), "step {}", step);
            prop_assert_eq!(single.is_finished(), pool.is_finished(0), "step {}", step);
        }
        prop_assert_eq!(fsm.steps(), single.steps());
        prop_assert_eq!(pool.steps(), 2 * single.steps());
    }

    /// Unknown messages error identically through both engines' trait
    /// paths; known-but-inapplicable messages are ignored by both.
    #[test]
    fn compiled_error_behaviour_matches(model in two_counter()) {
        let g = generate(&model).expect("generates");
        let compiled = CompiledMachine::compile(&g.machine);
        let mut fsm = FsmInstance::new(&g.machine);
        let mut single = compiled.instance();
        prop_assert_eq!(fsm.deliver("zap").unwrap_err(), single.deliver("zap").unwrap_err());
    }

    /// Sharding a pool across worker threads is a pure layout decision:
    /// for any machine, session count, shard count and message sequence,
    /// the sharded pool's per-session states, finished flags, totals and
    /// transition counts are identical to one flat pool stepping the
    /// same sessions — whatever the thread scheduling.
    #[test]
    fn sharded_pool_is_deterministic(
        model in two_counter(),
        sessions in 1usize..150,
        shards in 1usize..6,
        messages in prop::collection::vec(0usize..2, 0..48),
    ) {
        let g = generate(&model).expect("generates");
        let compiled = CompiledMachine::compile(&g.machine);
        let mut flat = SessionPool::new(&compiled, sessions);
        let mut sharded = ShardedPool::split(sessions, shards, |len| SessionPool::new(&compiled, len));
        prop_assert_eq!(sharded.len(), sessions);
        prop_assert_eq!(sharded.shard_count(), shards);
        for (step, &mi) in messages.iter().enumerate() {
            let name = if mi == 0 { "a" } else { "b" };
            let mid = compiled.message_id(name).expect("declared message");
            let t_flat = flat.deliver_all(mid);
            let t_sharded = sharded.deliver_all(mid);
            prop_assert_eq!(t_flat, t_sharded, "step {}", step);
            prop_assert_eq!(flat.finished_count(), sharded.finished_count(), "step {}", step);
            prop_assert_eq!(flat.steps(), sharded.steps(), "step {}", step);
            for s in 0..sessions {
                prop_assert_eq!(flat.state(s), sharded.state(s), "step {} session {}", step, s);
                prop_assert_eq!(
                    flat.is_finished(s), sharded.is_finished(s),
                    "step {} session {}", step, s
                );
            }
        }
    }

    /// Persistent parked workers are just a scheduling change: driving a
    /// sharded pool through `with_workers` (workers kept alive across
    /// `deliver_all` calls behind a condvar) yields per-step transition
    /// counts, aggregate finished/step totals and final per-session
    /// states identical to one flat pool stepping the same sessions.
    #[test]
    fn parked_workers_are_deterministic(
        model in two_counter(),
        sessions in 1usize..150,
        shards in 1usize..6,
        messages in prop::collection::vec(0usize..2, 0..48),
    ) {
        let g = generate(&model).expect("generates");
        let compiled = CompiledMachine::compile(&g.machine);
        let mut flat = SessionPool::new(&compiled, sessions);
        let mut sharded = ShardedPool::split(sessions, shards, |len| SessionPool::new(&compiled, len));
        let checks: Result<(), TestCaseError> = sharded.with_workers(|workers| {
            for (step, &mi) in messages.iter().enumerate() {
                let name = if mi == 0 { "a" } else { "b" };
                let mid = compiled.message_id(name).expect("declared message");
                let t_flat = flat.deliver_all(mid);
                prop_assert_eq!(workers.deliver_all(mid), t_flat, "step {}", step);
                prop_assert_eq!(workers.finished_count(), flat.finished_count(), "step {}", step);
                prop_assert_eq!(workers.steps(), flat.steps(), "step {}", step);
            }
            Ok(())
        });
        checks?;
        for s in 0..sessions {
            prop_assert_eq!(flat.state(s), sharded.state(s), "session {}", s);
            prop_assert_eq!(flat.is_finished(s), sharded.is_finished(s), "session {}", s);
        }
        prop_assert_eq!(flat.steps(), sharded.steps());
    }
}
