//! The paper's running example end to end: generate the BFT commit FSM
//! family, inspect the Fig 14 state, compare the spectrum of
//! implementations, and simulate a Byzantine peer set agreeing on a
//! version history.
//!
//! Run with: `cargo run --example commit_protocol`

use stategen::commit::{CommitConfig, CommitModel, ReferenceCommit};
use stategen::fsm::{generate, ProtocolEngine};
use stategen::render::TextRenderer;
use stategen::runtime::{Engine, Spec};
use stategen::simnet::SimConfig;
use stategen::storage::{run_harness, HarnessConfig, PeerBehaviour, Pid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- Generate the family (paper Table 1). ------------------------------
    for r in [4u32, 7, 13] {
        let generated = generate(&CommitModel::new(CommitConfig::new(r)?))?;
        println!(
            "commit@r={r}: {} -> {} -> {} states in {:?}",
            generated.report.initial_states,
            generated.report.reachable_states,
            generated.report.final_states,
            generated.report.total,
        );
    }

    // -- The Fig 14 state, with generated commentary. -----------------------
    let generated = generate(&CommitModel::new(CommitConfig::new(4)?))?;
    let (fig14, _) = generated
        .machine
        .state_by_name("T/2/F/0/F/F/F")
        .expect("exists");
    println!(
        "\n{}",
        TextRenderer::new().render_state(&generated.machine, fig14)
    );

    // -- The spectrum (paper §3.2): FSM vs hand-written algorithm. The
    // generated machine runs behind the `Spec → Engine → Runtime`
    // pipeline; the reference stays a plain hand-written struct.
    let mut rt = Engine::compile(Spec::machine(generated.machine.clone()))?.runtime();
    let session = rt.spawn();
    let mut reference = ReferenceCommit::new(CommitConfig::new(4)?);
    for message in ["update", "vote", "vote", "commit", "commit"] {
        let mid = rt.message_id(message).expect("commit alphabet");
        let a = rt.deliver(session, mid).to_vec();
        let b = reference.deliver(message)?;
        assert_eq!(a, b, "both ends of the spectrum behave identically");
    }
    assert!(rt.is_finished(session) && reference.is_finished());
    println!("FSM and hand-written algorithm agree on the canonical trace\n");

    // -- Simulated peer set with one Byzantine member (paper §2.2). ---------
    let config = HarnessConfig {
        behaviours: vec![PeerBehaviour::Equivocator],
        client_updates: vec![vec![Pid::of(b"version 1"), Pid::of(b"version 2")]],
        net: SimConfig {
            seed: 3,
            min_delay: 1,
            max_delay: 10,
            ..Default::default()
        },
        ..Default::default()
    };
    let report = run_harness(&config);
    assert!(report.all_committed && report.orders_agree());
    println!(
        "simulated r=4 peer set with 1 equivocator: {} versions committed, histories agree",
        report.correct_histories()[0].len()
    );
    Ok(())
}
