//! Property suite for the hashed hierarchical [`TimerWheel`]: the
//! `next_deadline` wake-up hint is never later than the true next
//! expiry, expiry sets are exact under arbitrary arm/cancel/re-arm
//! churn, and the cascade counter feeds runtime metrics.
//!
//! The model is a plain map from key to *effective* deadline — the
//! armed deadline clamped up to the wheel's clock at arm time, since an
//! already-due arm fires at the next `advance` regardless of `to`. The
//! wheel must agree with the model on membership, raw deadlines, and
//! every expiry batch; its hint must always land in
//! `[now, min effective deadline]`.

use std::collections::HashMap;

use proptest::prelude::*;
use stategen_commit::{CommitConfig, MESSAGE_NAMES};
use stategen_runtime::{Engine, Spec, TimerWheel};

/// One scripted wheel operation. Keys collide on purpose (re-arm moves
/// deadlines); offsets span level-0 ticks through past-the-horizon
/// parks.
#[derive(Debug, Clone, Copy)]
enum WheelOp {
    /// Arm `key` at `now + offset` (offset 0 arms an overdue timer).
    Arm(u64, u64),
    /// Arm `key` strictly in the past: `now.saturating_sub(back + 1)`.
    ArmPast(u64, u64),
    Cancel(u64),
    Advance(u64),
}

fn wheel_script() -> impl Strategy<Value = Vec<WheelOp>> {
    let offset = || {
        prop_oneof![
            0u64..64,           // level 0: exact ticks
            0u64..100_000,      // levels 1–3
            0u64..(1u64 << 38), // deep levels and past the 64^6 horizon
        ]
        .boxed()
    };
    let op = prop_oneof![
        (0u64..8, offset()).prop_map(|(k, d)| WheelOp::Arm(k, d)),
        (0u64..8, 0u64..1_000).prop_map(|(k, b)| WheelOp::ArmPast(k, b)),
        (0u64..8).prop_map(WheelOp::Cancel),
        (0u64..8, offset()).prop_map(|(k, d)| WheelOp::Arm(k, d)),
        offset().prop_map(WheelOp::Advance),
    ];
    prop::collection::vec(op, 0..80)
}

/// Model entry: the raw armed deadline and the effective expiry floor.
#[derive(Debug, Clone, Copy)]
struct Armed {
    deadline: u64,
    effective: u64,
}

/// Checks the hint invariant and bookkeeping against the model.
fn check_wheel(wheel: &TimerWheel<u64>, model: &HashMap<u64, Armed>) {
    assert_eq!(wheel.len(), model.len());
    assert_eq!(wheel.is_empty(), model.is_empty());
    for key in 0..8u64 {
        assert_eq!(wheel.is_armed(&key), model.contains_key(&key));
        assert_eq!(wheel.deadline_of(&key), model.get(&key).map(|a| a.deadline));
    }
    let true_next = model.values().map(|a| a.effective).min();
    match (wheel.next_deadline(), true_next) {
        (None, None) => {}
        (Some(hint), Some(next)) => {
            assert!(
                wheel.now() <= hint && hint <= next,
                "hint {hint} outside [now {}, true next {next}]",
                wheel.now()
            );
        }
        (hint, next) => panic!("hint {hint:?} but true next expiry {next:?}"),
    }
}

/// Applies one advance to wheel and model, asserting the expiry batch
/// is exactly the model's due set.
fn advance_checked(wheel: &mut TimerWheel<u64>, model: &mut HashMap<u64, Armed>, to: u64) {
    let mut fired: Vec<u64> = wheel.advance(to).to_vec();
    let mut due: Vec<u64> = model
        .iter()
        .filter(|(_, a)| a.effective <= to)
        .map(|(&k, _)| k)
        .collect();
    fired.sort_unstable();
    due.sort_unstable();
    assert_eq!(fired, due, "expiry batch at {to} differs from the model");
    for key in &fired {
        model.remove(key);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary arm/cancel/re-arm/advance churn: membership, raw
    /// deadlines, expiry batches and the hint bound all hold after
    /// every operation, the cascade counter never decreases, and
    /// sleeping on the hint drains the wheel to empty.
    #[test]
    fn hint_is_never_later_than_true_next_deadline(ops in wheel_script()) {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut model: HashMap<u64, Armed> = HashMap::new();
        let mut cascades = 0u64;
        for op in ops {
            match op {
                WheelOp::Arm(key, offset) => {
                    let deadline = wheel.now().saturating_add(offset);
                    wheel.arm(key, deadline);
                    model.insert(key, Armed { deadline, effective: deadline.max(wheel.now()) });
                }
                WheelOp::ArmPast(key, back) => {
                    let deadline = wheel.now().saturating_sub(back + 1);
                    wheel.arm(key, deadline);
                    // Already due: fires at the next advance, i.e. at
                    // or before any future wheel time.
                    model.insert(key, Armed { deadline, effective: wheel.now() });
                }
                WheelOp::Cancel(key) => {
                    prop_assert_eq!(wheel.cancel(&key), model.remove(&key).is_some());
                }
                WheelOp::Advance(step) => {
                    let to = wheel.now().saturating_add(step);
                    advance_checked(&mut wheel, &mut model, to);
                }
            }
            prop_assert!(wheel.cascades() >= cascades, "cascade counter went backwards");
            cascades = wheel.cascades();
            check_wheel(&wheel, &model);
        }
        // Waking exactly at the hint must reach every timer: each wake
        // either fires something or cascades coarse entries closer, and
        // the hint never overshoots a deadline (the property above), so
        // the drain terminates with nothing left armed.
        let mut wakes = 0;
        while let Some(hint) = wheel.next_deadline() {
            advance_checked(&mut wheel, &mut model, hint);
            check_wheel(&wheel, &model);
            wakes += 1;
            prop_assert!(wakes < 10_000, "hint-driven drain failed to terminate");
        }
        prop_assert!(model.is_empty(), "wheel empty but the model still holds timers");
    }
}

/// A coarse-slot timer reached by fine-grained polling is cascaded down
/// the hierarchy — visible in the telemetry counter — and still fires
/// at its exact tick, never early.
#[test]
fn polling_a_far_deadline_cascades_and_fires_exactly() {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    wheel.arm(7, 70_000);
    let hint = wheel.next_deadline().expect("armed");
    assert!(hint <= 70_000);
    assert!(wheel.advance(69_999).is_empty(), "fired 1 tick early");
    assert!(
        wheel.cascades() > 0,
        "a level-2 deadline reached at tick precision must cascade"
    );
    assert_eq!(wheel.advance(70_000), &[7]);
    assert_eq!(
        wheel.cascades(),
        {
            let mut replay: TimerWheel<u64> = TimerWheel::new();
            replay.arm(7, 70_000);
            replay.advance(69_999);
            replay.advance(70_000);
            replay.cascades()
        },
        "cascade work is deterministic"
    );
}

/// The wheel's cascade count surfaces through [`Runtime::metrics`]
/// alongside fired/cancelled timeout counts.
#[test]
fn timer_telemetry_reaches_runtime_metrics() {
    let config = CommitConfig::new(4).unwrap();
    let machine = stategen_core::generate(&stategen_commit::CommitModel::new(config))
        .unwrap()
        .machine;
    let mut rt = Engine::compile(Spec::machine(machine)).unwrap().runtime();
    let timeout = rt.message_id(MESSAGE_NAMES[0]).unwrap();

    let fired = rt.spawn();
    let cancelled = rt.spawn();
    rt.arm_timeout(fired, 70_000);
    rt.arm_timeout(cancelled, 90_000);
    // Releasing a session cancels its pending timeout.
    rt.release(cancelled);
    assert_eq!(rt.advance_time(65_000, timeout), 0);
    assert_eq!(rt.advance_time(70_000, timeout), 1);

    let m = rt.metrics();
    assert_eq!(m.timeouts_fired, 1);
    assert_eq!(m.timeouts_cancelled, 1);
    assert!(m.timer_cascades > 0, "fine-grained polling cascaded");
    assert_eq!(m.deliveries, 1, "the fired timeout was delivered");
}
