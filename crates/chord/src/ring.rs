//! Ring arithmetic for the Chord key space.
//!
//! Keys and node identifiers live on a circle of 2^64 points (the paper's
//! deployment hashes onto the ring with SHA-1 (paper reference 6); we place digests via
//! their 64-bit prefix). All interval tests are circular.

/// A point on the Chord ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

impl Key {
    /// Derives a key from arbitrary bytes via SHA-1, as the ASA layer
    /// derives storage keys from PIDs/GUIDs (paper §2.1).
    pub fn hash(data: &[u8]) -> Key {
        Key(asa_sha1::Sha1::digest(data).prefix_u64())
    }

    /// Clockwise distance from `self` to `other`.
    pub fn distance_to(self, other: Key) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// `true` if `self` lies in the half-open ring interval `(from, to]`.
    ///
    /// This is the Chord ownership test: node `s` owns key `k` iff
    /// `k ∈ (predecessor(s), s]`.
    pub fn in_open_closed(self, from: Key, to: Key) -> bool {
        if from == to {
            // The whole ring.
            return true;
        }
        from.distance_to(self) != 0 && from.distance_to(self) <= from.distance_to(to)
    }

    /// `true` if `self` lies in the open ring interval `(from, to)`.
    pub fn in_open_open(self, from: Key, to: Key) -> bool {
        self != to && self.in_open_closed(from, to)
    }

    /// The point `2^i` clockwise of `self` (the start of finger `i`).
    pub fn finger_start(self, i: u32) -> Key {
        Key(self.0.wrapping_add(1u64.wrapping_shl(i)))
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_wraps() {
        assert_eq!(Key(10).distance_to(Key(15)), 5);
        assert_eq!(Key(u64::MAX).distance_to(Key(4)), 5);
        assert_eq!(Key(5).distance_to(Key(5)), 0);
    }

    #[test]
    fn open_closed_basic() {
        assert!(Key(5).in_open_closed(Key(1), Key(5)));
        assert!(!Key(1).in_open_closed(Key(1), Key(5)));
        assert!(Key(3).in_open_closed(Key(1), Key(5)));
        assert!(!Key(7).in_open_closed(Key(1), Key(5)));
    }

    #[test]
    fn open_closed_wrapping() {
        // Interval wrapping zero: (MAX-2, 3]
        assert!(Key(0).in_open_closed(Key(u64::MAX - 2), Key(3)));
        assert!(Key(3).in_open_closed(Key(u64::MAX - 2), Key(3)));
        assert!(!Key(4).in_open_closed(Key(u64::MAX - 2), Key(3)));
        assert!(!Key(u64::MAX - 2).in_open_closed(Key(u64::MAX - 2), Key(3)));
    }

    #[test]
    fn degenerate_interval_is_whole_ring() {
        assert!(Key(42).in_open_closed(Key(7), Key(7)));
        assert!(Key(7).in_open_closed(Key(7), Key(7)));
    }

    #[test]
    fn open_open_excludes_both_ends() {
        assert!(!Key(5).in_open_open(Key(1), Key(5)));
        assert!(!Key(1).in_open_open(Key(1), Key(5)));
        assert!(Key(3).in_open_open(Key(1), Key(5)));
    }

    #[test]
    fn finger_starts_double() {
        let k = Key(100);
        assert_eq!(k.finger_start(0).0, 101);
        assert_eq!(k.finger_start(1).0, 102);
        assert_eq!(k.finger_start(10).0, 100 + 1024);
        // Wrap-around.
        assert_eq!(Key(u64::MAX).finger_start(0).0, 0);
    }

    #[test]
    fn hash_is_sha1_prefix() {
        let k = Key::hash(b"abc");
        assert_eq!(k.0, asa_sha1::Sha1::digest(b"abc").prefix_u64());
    }
}
