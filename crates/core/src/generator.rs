//! The generation engine: executes an [`AbstractModel`] to produce one
//! member of its FSM family.
//!
//! The pipeline follows paper §3.4 exactly:
//!
//! 1. **enumerate** — build representations of all possible states (the
//!    full component product, e.g. 512 states for the commit protocol at
//!    replication factor 4);
//! 2. **transitions** — for each state, elaborate the effect of every
//!    message via [`AbstractModel::transition`] and record the resulting
//!    transitions and actions; states where the protocol has completed
//!    ([`AbstractModel::is_final_state`]) process no messages;
//! 3. **prune** — remove states unreachable from the start state
//!    (512 → 48 for the commit protocol at r = 4);
//! 4. **merge** — combine equivalent states, i.e. states whose outgoing
//!    transitions perform the same actions and lead to the same target
//!    (48 → 33 at r = 4; in particular all completed states — which have
//!    no outgoing transitions — merge into the single conceptual finish
//!    state).
//!
//! The engine reports per-stage counts and timings in a
//! [`GenerationReport`], which is the data behind the paper's Table 1.

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use crate::component::StateVector;
use crate::error::GenerateError;
use crate::machine::{Action, MessageId, State, StateId, StateMachine, StateRole, Transition};
use crate::model::{AbstractModel, Outcome};

/// How aggressively equivalent states are combined (paper §3.4 step 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Do not merge.
    None,
    /// A single grouping pass over the states.
    SinglePass,
    /// Repeat grouping until a fixpoint is reached (states merged in one
    /// round can make further states equivalent in the next).
    #[default]
    ToFixpoint,
}

/// Options controlling the generation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateOptions {
    /// Run the reachability pruning step (paper step 3). Default `true`.
    pub prune: bool,
    /// Equivalent-state merging strategy (paper step 4).
    pub merge: MergeStrategy,
    /// Record transitions that neither change state nor perform actions.
    /// The paper's generator omits them (a message with no effect is simply
    /// not applicable in that state). Default `false`.
    pub keep_self_loops: bool,
    /// Attach per-state commentary from
    /// [`AbstractModel::describe_state`] to the surviving states.
    /// Default `true`.
    pub annotate_states: bool,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        GenerateOptions {
            prune: true,
            merge: MergeStrategy::ToFixpoint,
            keep_self_loops: false,
            annotate_states: true,
        }
    }
}

/// Wall-clock time spent in each pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Step 1: enumerating the state space.
    pub enumerate: Duration,
    /// Step 2: elaborating transitions for every (state, message) pair.
    pub transitions: Duration,
    /// Step 3: reachability pruning.
    pub prune: Duration,
    /// Step 4: equivalent-state merging.
    pub merge: Duration,
    /// Attaching generated documentation to surviving states.
    pub annotate: Duration,
}

/// Counts and timings from one run of the generation pipeline — the data
/// behind the paper's Table 1 and Figs 12/13.
#[derive(Debug, Clone)]
pub struct GenerationReport {
    /// Name of the generated machine.
    pub machine_name: String,
    /// States in the full component product (Table 1 "initial states").
    pub initial_states: u64,
    /// `(state, message)` pairs elaborated in step 2 (final states are
    /// not elaborated).
    pub elaborations: u64,
    /// Transitions recorded in step 2 (excludes ignored messages and,
    /// unless configured otherwise, no-op self loops).
    pub transitions_recorded: u64,
    /// `(state, message)` pairs the model declared not applicable.
    pub ignored: u64,
    /// No-op self loops dropped by the engine.
    pub self_loops_dropped: u64,
    /// States surviving reachability pruning (48 for the commit protocol
    /// at r = 4, paper Fig 12).
    pub reachable_states: usize,
    /// States after equivalent-state merging (Table 1 "final states";
    /// 33 for the commit protocol at r = 4).
    pub final_states: usize,
    /// Grouping rounds performed by the merge step (including the final
    /// pass that confirms the fixpoint).
    pub merge_rounds: usize,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Total wall-clock generation time (Table 1 "generation time").
    pub total: Duration,
}

/// A generated machine together with its generation report.
#[derive(Debug, Clone)]
pub struct GeneratedMachine {
    /// The generated finite state machine.
    pub machine: StateMachine,
    /// Pipeline statistics.
    pub report: GenerationReport,
}

#[derive(Debug, Clone)]
struct RawTransition {
    target: u64,
    actions: Vec<Action>,
    annotations: Vec<String>,
}

/// Executes `model` with default [`GenerateOptions`].
///
/// # Errors
///
/// Returns [`GenerateError`] if the model's schema, messages, start state
/// or produced vectors are malformed.
///
/// # Examples
///
/// ```
/// use stategen_core::{generate, AbstractModel, Outcome, StateComponent,
///     StateSpace, StateVector};
///
/// struct Count3;
/// impl AbstractModel for Count3 {
///     fn machine_name(&self) -> String { "count3".into() }
///     fn state_space(&self) -> Result<StateSpace, stategen_core::SchemaError> {
///         StateSpace::new(vec![StateComponent::int("n", 3)])
///     }
///     fn messages(&self) -> Vec<String> { vec!["tick".into()] }
///     fn start_state(&self) -> StateVector {
///         self.state_space().unwrap().zero_vector()
///     }
///     fn transition(&self, s: &StateVector, _m: &str) -> Outcome {
///         let mut t = s.clone();
///         t.set(0, s.get(0) + 1);
///         Outcome::to(t, vec![])
///     }
///     fn is_final_state(&self, s: &StateVector) -> bool { s.get(0) == 3 }
/// }
///
/// let generated = generate(&Count3)?;
/// assert_eq!(generated.report.initial_states, 4);
/// assert_eq!(generated.machine.final_state_ids().len(), 1);
/// # Ok::<(), stategen_core::GenerateError>(())
/// ```
pub fn generate(model: &dyn AbstractModel) -> Result<GeneratedMachine, GenerateError> {
    generate_with(model, &GenerateOptions::default())
}

/// Executes `model` with explicit options.
///
/// # Errors
///
/// As for [`generate`].
pub fn generate_with(
    model: &dyn AbstractModel,
    options: &GenerateOptions,
) -> Result<GeneratedMachine, GenerateError> {
    let overall = Instant::now();
    let mut timings = StageTimings::default();

    // -- Validate the model interface. ------------------------------------
    let space = model.state_space()?;
    let messages = model.messages();
    if messages.is_empty() {
        return Err(GenerateError::NoMessages);
    }
    assert!(messages.len() <= usize::from(u16::MAX), "too many messages");
    for (i, m) in messages.iter().enumerate() {
        if messages[..i].contains(m) {
            return Err(GenerateError::DuplicateMessage(m.clone()));
        }
    }
    let start_vector = model.start_state();
    if !space.contains(&start_vector) {
        return Err(GenerateError::InvalidStart(format!("{start_vector}")));
    }

    // -- Step 1: enumerate all possible states. ---------------------------
    let stage = Instant::now();
    let state_count = space.state_count();
    let n = state_count as usize;
    let vectors: Vec<StateVector> = space.iter().collect();
    let finals: Vec<bool> = vectors.iter().map(|v| model.is_final_state(v)).collect();
    timings.enumerate = stage.elapsed();

    // -- Step 2: elaborate transitions for every (state, message). --------
    let stage = Instant::now();
    let mut raw: Vec<Vec<Option<RawTransition>>> = vec![Vec::new(); n];
    let mut elaborations = 0u64;
    let mut transitions_recorded = 0u64;
    let mut ignored = 0u64;
    let mut self_loops_dropped = 0u64;
    for (code, vector) in vectors.iter().enumerate() {
        if finals[code] {
            // A completed instance processes no further messages.
            continue;
        }
        let mut row: Vec<Option<RawTransition>> = Vec::with_capacity(messages.len());
        for message in &messages {
            elaborations += 1;
            let outcome = model.transition(vector, message);
            let slot = match outcome {
                Outcome::Ignored => {
                    ignored += 1;
                    None
                }
                Outcome::Transition(spec) => {
                    if !space.contains(&spec.target) {
                        return Err(GenerateError::InvalidVector {
                            vector: format!("{}", spec.target),
                            context: "transition elaboration",
                        });
                    }
                    if spec.target == *vector && spec.actions.is_empty() && !options.keep_self_loops
                    {
                        self_loops_dropped += 1;
                        None
                    } else {
                        transitions_recorded += 1;
                        Some(RawTransition {
                            target: space.encode(&spec.target),
                            actions: spec.actions,
                            annotations: spec.annotations,
                        })
                    }
                }
            };
            row.push(slot);
        }
        raw[code] = row;
    }
    timings.transitions = stage.elapsed();

    // -- Step 3: prune unreachable states. --------------------------------
    let stage = Instant::now();
    let start_code = space.encode(&start_vector);
    let kept_codes = if options.prune {
        reachable_from(&raw, start_code)
    } else {
        (0..state_count).collect()
    };
    timings.prune = stage.elapsed();

    // -- Materialise the (pruned) machine. --------------------------------
    let mut code_to_id: BTreeMap<u64, StateId> = BTreeMap::new();
    for (i, &code) in kept_codes.iter().enumerate() {
        code_to_id.insert(code, StateId(i as u32));
    }
    let mut states: Vec<State> = Vec::with_capacity(kept_codes.len());
    for &code in &kept_codes {
        let vector = &vectors[code as usize];
        let role = if finals[code as usize] {
            StateRole::Finish
        } else {
            StateRole::Normal
        };
        states.push(State::new(
            space.name_of(vector),
            Some(vector.clone()),
            role,
            Vec::new(),
        ));
    }
    for (i, &code) in kept_codes.iter().enumerate() {
        for (mid, slot) in raw[code as usize].iter().enumerate() {
            let Some(rt) = slot else { continue };
            let target = code_to_id[&rt.target];
            states[i].insert_transition(
                MessageId(mid as u16),
                Transition::new(target, rt.actions.clone(), rt.annotations.clone()),
            );
        }
    }
    let start_id = *code_to_id
        .get(&start_code)
        .ok_or(GenerateError::EmptyMachine)?;
    let machine =
        StateMachine::from_parts(model.machine_name(), messages.clone(), states, start_id);
    let reachable_states = machine.state_count();

    // -- Step 4: combine equivalent states. -------------------------------
    let stage = Instant::now();
    let (mut machine, merge_rounds) = match options.merge {
        MergeStrategy::None => (machine, 0),
        strategy => merge_equivalent_states(&machine, strategy),
    };
    timings.merge = stage.elapsed();
    let final_states = machine.state_count();

    // -- Attach generated documentation (paper footnote 3). ---------------
    let stage = Instant::now();
    if options.annotate_states {
        machine = annotate_states(machine, model);
    }
    timings.annotate = stage.elapsed();

    let report = GenerationReport {
        machine_name: machine.name().to_string(),
        initial_states: state_count,
        elaborations,
        transitions_recorded,
        ignored,
        self_loops_dropped,
        reachable_states,
        final_states,
        merge_rounds,
        timings,
        total: overall.elapsed(),
    };
    Ok(GeneratedMachine { machine, report })
}

/// BFS over the raw transition table; returns the sorted list of reachable
/// state codes.
fn reachable_from(raw: &[Vec<Option<RawTransition>>], start: u64) -> Vec<u64> {
    let mut seen = vec![false; raw.len()];
    let mut queue = VecDeque::new();
    seen[start as usize] = true;
    queue.push_back(start);
    while let Some(code) = queue.pop_front() {
        for slot in &raw[code as usize] {
            let Some(rt) = slot else { continue };
            if !seen[rt.target as usize] {
                seen[rt.target as usize] = true;
                queue.push_back(rt.target);
            }
        }
    }
    seen.iter()
        .enumerate()
        .filter_map(|(c, &s)| s.then_some(c as u64))
        .collect()
}

/// Removes states unreachable from the start state (paper §3.4 step 3),
/// returning the pruned machine.
///
/// This is the standalone form used on hand-built machines; the generation
/// pipeline prunes on its internal representation before materialising.
pub fn prune_unreachable(machine: &StateMachine) -> StateMachine {
    let mut seen = vec![false; machine.state_count()];
    let mut queue = VecDeque::new();
    seen[machine.start().index()] = true;
    queue.push_back(machine.start());
    while let Some(id) = queue.pop_front() {
        for (_m, t) in machine.state(id).transitions() {
            if !seen[t.target().index()] {
                seen[t.target().index()] = true;
                queue.push_back(t.target());
            }
        }
    }
    let mut remap: Vec<Option<StateId>> = vec![None; machine.state_count()];
    let mut next = 0u32;
    for (i, &kept) in seen.iter().enumerate() {
        if kept {
            remap[i] = Some(StateId(next));
            next += 1;
        }
    }
    let mut states = Vec::with_capacity(next as usize);
    for (id, state) in machine.states_with_ids() {
        if !seen[id.index()] {
            continue;
        }
        let mut new_state = State::new(
            state.name(),
            state.vector().cloned(),
            state.role(),
            state.annotations().to_vec(),
        );
        for (mid, t) in state.transitions() {
            let target = remap[t.target().index()]
                .expect("transition from reachable state must point to reachable state");
            new_state.insert_transition(
                mid,
                Transition::new(target, t.actions().to_vec(), t.annotations().to_vec()),
            );
        }
        states.push(new_state);
    }
    let start = remap[machine.start().index()].expect("start state is reachable");
    StateMachine::from_parts(
        machine.name().to_string(),
        machine.messages().to_vec(),
        states,
        start,
    )
}

/// Combines equivalent states (paper §3.4 step 4): states are equivalent
/// when their outgoing transitions fire on the same messages, perform the
/// same actions and lead to the same destination. With
/// [`MergeStrategy::ToFixpoint`], destinations are compared up to the
/// equivalence computed so far and grouping repeats until stable.
///
/// Returns the merged machine and the number of grouping rounds performed
/// (including the final pass that confirms the fixpoint). The
/// representative (and name) of each merged group is its lowest-numbered
/// member. Completed states only merge with completed states.
pub fn merge_equivalent_states(
    machine: &StateMachine,
    strategy: MergeStrategy,
) -> (StateMachine, usize) {
    if matches!(strategy, MergeStrategy::None) {
        return (machine.clone(), 0);
    }
    let n = machine.state_count();
    // class[i] = lowest state index in i's equivalence group.
    let mut class: Vec<u32> = (0..n as u32).collect();
    let mut rounds = 0usize;
    /// Per-message behavioural signature entry: message id, action list,
    /// target equivalence class.
    type SigEntry<'a> = (u16, Vec<&'a str>, u32);
    loop {
        rounds += 1;
        // Signature: per-message (action list, target class) plus a
        // pseudo-entry encoding the role, so finish states only group with
        // finish states.
        let mut groups: BTreeMap<Vec<SigEntry<'_>>, Vec<u32>> = BTreeMap::new();
        for (id, state) in machine.states_with_ids() {
            let mut sig: Vec<SigEntry<'_>> = state
                .transitions()
                .map(|(m, t)| {
                    (
                        m.0,
                        t.actions().iter().map(Action::message).collect(),
                        class[t.target().index()],
                    )
                })
                .collect();
            let role_tag = match state.role() {
                StateRole::Normal => 0,
                StateRole::Finish => 1,
            };
            sig.push((u16::MAX, Vec::new(), role_tag));
            groups.entry(sig).or_default().push(id.0);
        }
        let mut next_class = class.clone();
        for members in groups.values() {
            let rep = *members.iter().min().expect("group is non-empty");
            for &m in members {
                next_class[m as usize] = rep;
            }
        }
        let changed = next_class != class;
        class = next_class;
        if matches!(strategy, MergeStrategy::SinglePass) || !changed {
            break;
        }
    }
    // Materialise one state per class, ordered by representative index.
    let mut reps: Vec<u32> = class.clone();
    reps.sort_unstable();
    reps.dedup();
    let mut rep_to_new: BTreeMap<u32, StateId> = BTreeMap::new();
    for (i, &rep) in reps.iter().enumerate() {
        rep_to_new.insert(rep, StateId(i as u32));
    }
    let mut states = Vec::with_capacity(reps.len());
    for &rep in &reps {
        let old = machine.state(StateId(rep));
        let mut new_state = State::new(
            old.name(),
            old.vector().cloned(),
            old.role(),
            old.annotations().to_vec(),
        );
        for (mid, t) in old.transitions() {
            let target = rep_to_new[&class[t.target().index()]];
            new_state.insert_transition(
                mid,
                Transition::new(target, t.actions().to_vec(), t.annotations().to_vec()),
            );
        }
        states.push(new_state);
    }
    let start = rep_to_new[&class[machine.start().index()]];
    let merged = StateMachine::from_parts(
        machine.name().to_string(),
        machine.messages().to_vec(),
        states,
        start,
    );
    (merged, rounds)
}

/// Attaches [`AbstractModel::describe_state`] commentary to every surviving
/// state that has an underlying vector.
fn annotate_states(machine: StateMachine, model: &dyn AbstractModel) -> StateMachine {
    let mut states = Vec::with_capacity(machine.state_count());
    for state in machine.states() {
        let annotations = match state.vector() {
            Some(v) => model.describe_state(v),
            None => state.annotations().to_vec(),
        };
        let mut new_state = State::new(
            state.name(),
            state.vector().cloned(),
            state.role(),
            annotations,
        );
        for (mid, t) in state.transitions() {
            new_state.insert_transition(mid, t.clone());
        }
        states.push(new_state);
    }
    StateMachine::from_parts(
        machine.name().to_string(),
        machine.messages().to_vec(),
        states,
        machine.start(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{StateComponent, StateSpace};

    /// Counter that completes at `max` and emits a "fire" action at
    /// `threshold` (a miniature phase transition).
    struct ThresholdCounter {
        max: u32,
        threshold: u32,
    }

    impl AbstractModel for ThresholdCounter {
        fn machine_name(&self) -> String {
            format!("threshold@{}/{}", self.threshold, self.max)
        }

        fn state_space(&self) -> Result<StateSpace, crate::SchemaError> {
            StateSpace::new(vec![
                StateComponent::int("n", self.max),
                StateComponent::boolean("fired"),
            ])
        }

        fn messages(&self) -> Vec<String> {
            vec!["tick".into(), "noop".into()]
        }

        fn start_state(&self) -> StateVector {
            self.state_space().expect("schema").zero_vector()
        }

        fn transition(&self, state: &StateVector, message: &str) -> Outcome {
            match message {
                "noop" => Outcome::to(state.clone(), vec![]),
                "tick" => {
                    let mut t = state.clone();
                    t.set(0, state.get(0) + 1);
                    let mut actions = Vec::new();
                    if t.get(0) == self.threshold && !t.flag(1) {
                        t.set_flag(1, true);
                        actions.push(Action::send("fire"));
                    }
                    Outcome::to(t, actions)
                }
                other => panic!("unknown message {other}"),
            }
        }

        fn is_final_state(&self, state: &StateVector) -> bool {
            state.get(0) == self.max
        }
    }

    #[test]
    fn pipeline_counts() {
        let model = ThresholdCounter {
            max: 3,
            threshold: 2,
        };
        let g = generate(&model).expect("generate");
        // 4 counter values x 2 flag values.
        assert_eq!(g.report.initial_states, 8);
        // Final states (n == 3, either flag) are not elaborated.
        assert_eq!(g.report.elaborations, 12);
        // Reachable: (0,F) (1,F) (2,T) (3,T).
        assert_eq!(g.report.reachable_states, 4);
        // No two distinct reachable states are equivalent here.
        assert_eq!(g.report.final_states, 4);
        assert_eq!(g.machine.final_state_ids().len(), 1);
        // noop self-loops dropped for each of the 6 elaborated states.
        assert_eq!(g.report.self_loops_dropped, 6);
    }

    #[test]
    fn keep_self_loops_option() {
        let model = ThresholdCounter {
            max: 3,
            threshold: 2,
        };
        let options = GenerateOptions {
            keep_self_loops: true,
            ..Default::default()
        };
        let g = generate_with(&model, &options).expect("generate");
        assert_eq!(g.report.self_loops_dropped, 0);
        let noop = g.machine.message_id("noop").unwrap();
        assert!(g
            .machine
            .state(g.machine.start())
            .transition(noop)
            .is_some());
    }

    #[test]
    fn no_prune_keeps_full_space() {
        let model = ThresholdCounter {
            max: 3,
            threshold: 2,
        };
        let options = GenerateOptions {
            prune: false,
            merge: MergeStrategy::None,
            ..Default::default()
        };
        let g = generate_with(&model, &options).expect("generate");
        assert_eq!(g.machine.state_count(), 8);
        // Both (3,F) and (3,T) are final in the unpruned machine.
        assert_eq!(g.machine.final_state_ids().len(), 2);
    }

    #[test]
    fn equivalent_finals_merge_to_one() {
        let model = ThresholdCounter {
            max: 3,
            threshold: 2,
        };
        let options = GenerateOptions {
            prune: false,
            ..Default::default()
        };
        let g = generate_with(&model, &options).expect("generate");
        // Merging combines the two final states even without pruning.
        assert_eq!(g.machine.final_state_ids().len(), 1);
        assert!(g.machine.unique_final().is_some());
    }

    #[test]
    fn phase_transition_detected() {
        let model = ThresholdCounter {
            max: 3,
            threshold: 2,
        };
        let g = generate(&model).expect("generate");
        assert_eq!(g.machine.phase_transition_count(), 1);
        let tick = g.machine.message_id("tick").unwrap();
        let s1 = g
            .machine
            .state(g.machine.start())
            .transition(tick)
            .unwrap()
            .target();
        let t = g.machine.state(s1).transition(tick).unwrap();
        assert_eq!(t.actions(), &[Action::send("fire")]);
    }

    #[test]
    fn final_state_is_terminal() {
        let model = ThresholdCounter {
            max: 3,
            threshold: 2,
        };
        let g = generate(&model).expect("generate");
        let finish = g.machine.unique_final().expect("unique final state");
        let state = g.machine.state(finish);
        assert_eq!(state.role(), StateRole::Finish);
        assert_eq!(state.transition_count(), 0);
        assert_eq!(state.name(), "3/T");
    }

    /// Two chains that do the same thing should merge into one under
    /// fixpoint merging.
    #[test]
    fn merge_collapses_parallel_chains() {
        use crate::machine::StateMachineBuilder;
        let mut b = StateMachineBuilder::new("twin", ["go"]);
        let s0 = b.add_state("s0");
        let a1 = b.add_state("a1");
        let b1 = b.add_state("b1");
        let end = b.add_state("end");
        // Two distinct intermediate states with identical behaviour.
        b.add_transition(s0, "go", a1, vec![Action::send("x")]);
        b.add_transition(a1, "go", end, vec![]);
        b.add_transition(b1, "go", end, vec![]);
        let m = b.build(s0);
        let (merged, _rounds) = merge_equivalent_states(&m, MergeStrategy::ToFixpoint);
        // a1 and b1 merge; s0 and end stay distinct.
        assert_eq!(merged.state_count(), 3);
    }

    #[test]
    fn merge_single_pass_weaker_than_fixpoint() {
        use crate::machine::StateMachineBuilder;
        // Chain pairs: (a2,b2) merge only after (a1,b1) merged.
        let mut b = StateMachineBuilder::new("chain", ["go"]);
        let s0 = b.add_state("s0");
        let a2 = b.add_state("a2");
        let b2 = b.add_state("b2");
        let a1 = b.add_state("a1");
        let b1 = b.add_state("b1");
        let end = b.add_state("end");
        b.add_transition(s0, "go", a2, vec![Action::send("x")]);
        b.add_transition(a2, "go", a1, vec![]);
        b.add_transition(b2, "go", b1, vec![]);
        b.add_transition(a1, "go", end, vec![]);
        b.add_transition(b1, "go", end, vec![]);
        let m = b.build(s0);
        let (single, _) = merge_equivalent_states(&m, MergeStrategy::SinglePass);
        let (fix, _) = merge_equivalent_states(&m, MergeStrategy::ToFixpoint);
        assert_eq!(single.state_count(), 5); // only (a1,b1) merged
        assert_eq!(fix.state_count(), 4); // both pairs merged
    }

    #[test]
    fn merge_respects_roles() {
        use crate::machine::StateMachineBuilder;
        // A dead-end normal state must not merge with a final state.
        let mut b = StateMachineBuilder::new("roles", ["go"]);
        let s0 = b.add_state("s0");
        let dead = b.add_state("dead");
        let fin = b.add_state_full("fin", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "go", dead, vec![]);
        b.add_transition(dead, "go", fin, vec![]);
        let m = b.build(s0);
        let (merged, _) = merge_equivalent_states(&m, MergeStrategy::ToFixpoint);
        assert_eq!(merged.state_count(), 3);
    }

    #[test]
    fn prune_standalone() {
        use crate::machine::StateMachineBuilder;
        let mut b = StateMachineBuilder::new("m", ["go"]);
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let orphan = b.add_state("orphan");
        b.add_transition(s0, "go", s1, vec![]);
        b.add_transition(orphan, "go", s1, vec![]);
        let m = b.build(s0);
        let pruned = prune_unreachable(&m);
        assert_eq!(pruned.state_count(), 2);
        assert!(pruned.state_by_name("orphan").is_none());
        assert_eq!(pruned.state(pruned.start()).name(), "s0");
    }

    #[test]
    fn invalid_start_rejected() {
        struct BadStart;
        impl AbstractModel for BadStart {
            fn machine_name(&self) -> String {
                "bad".into()
            }
            fn state_space(&self) -> Result<StateSpace, crate::SchemaError> {
                StateSpace::new(vec![StateComponent::int("n", 1)])
            }
            fn messages(&self) -> Vec<String> {
                vec!["tick".into()]
            }
            fn start_state(&self) -> StateVector {
                let mut v = self.state_space().unwrap().zero_vector();
                v.set(0, 9); // out of range
                v
            }
            fn transition(&self, s: &StateVector, _m: &str) -> Outcome {
                Outcome::to(s.clone(), vec![])
            }
        }
        assert!(matches!(
            generate(&BadStart),
            Err(GenerateError::InvalidStart(_))
        ));
    }

    #[test]
    fn invalid_target_rejected() {
        struct BadTarget;
        impl AbstractModel for BadTarget {
            fn machine_name(&self) -> String {
                "bad".into()
            }
            fn state_space(&self) -> Result<StateSpace, crate::SchemaError> {
                StateSpace::new(vec![StateComponent::int("n", 1)])
            }
            fn messages(&self) -> Vec<String> {
                vec!["tick".into()]
            }
            fn start_state(&self) -> StateVector {
                self.state_space().unwrap().zero_vector()
            }
            fn transition(&self, s: &StateVector, _m: &str) -> Outcome {
                let mut t = s.clone();
                t.set(0, 9);
                Outcome::to(t, vec![])
            }
        }
        assert!(matches!(
            generate(&BadTarget),
            Err(GenerateError::InvalidVector { .. })
        ));
    }

    #[test]
    fn duplicate_messages_rejected() {
        struct DupMsg;
        impl AbstractModel for DupMsg {
            fn machine_name(&self) -> String {
                "dup".into()
            }
            fn state_space(&self) -> Result<StateSpace, crate::SchemaError> {
                StateSpace::new(vec![StateComponent::boolean("f")])
            }
            fn messages(&self) -> Vec<String> {
                vec!["a".into(), "a".into()]
            }
            fn start_state(&self) -> StateVector {
                self.state_space().unwrap().zero_vector()
            }
            fn transition(&self, s: &StateVector, _m: &str) -> Outcome {
                Outcome::to(s.clone(), vec![])
            }
        }
        assert!(matches!(
            generate(&DupMsg),
            Err(GenerateError::DuplicateMessage(_))
        ));
    }
}
