//! Regenerates paper Fig 14: the generated textual description of state
//! T/2/F/0/F/F/F of the r = 4 commit machine, commentary included.

use stategen_commit::{CommitConfig, CommitModel};
use stategen_core::generate;
use stategen_render::TextRenderer;

fn main() {
    let g = generate(&CommitModel::new(CommitConfig::new(4).expect("valid")))
        .expect("generation succeeds");
    let (id, _) = g
        .machine
        .state_by_name("T/2/F/0/F/F/F")
        .expect("the Fig 14 state survives pruning and merging");
    print!("{}", TextRenderer::new().render_state(&g.machine, id));
}
