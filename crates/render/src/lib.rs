//! # stategen-render
//!
//! Renderers producing the paper's concrete artefacts (§3.5) from a
//! generated [`StateMachine`](stategen_core::StateMachine):
//!
//! * [`TextRenderer`] — the textual state descriptions of Fig 14, with
//!   automatically generated commentary;
//! * [`render_dot`] / [`render_xml`] / [`render_mermaid`] — state-
//!   transition diagrams (Fig 15);
//! * [`render_rust_module`] — a compilable Rust protocol implementation
//!   (the Fig 16 artefact; the `stategen-generated` crate compiles it);
//! * [`java_src`] — the paper's Java presentation, including the raw
//!   (Fig 17) vs. abstracted (Fig 19) generative styles, tested to emit
//!   byte-identical code;
//! * [`CodeBuffer`] — the generation utility methods of Fig 18;
//! * [`report`] — the paper's Table 1 layout and markdown summaries;
//! * [`efsm_text`] — textual/DOT renderings of EFSMs (§5.3);
//! * [`hsm`](mod@hsm) — hierarchy-aware DOT (clustered subgraphs) and
//!   Mermaid (composite states) renderings of hierarchical statecharts,
//!   drawn as authored rather than flattened.
//!
//! All renderers are generic with respect to the algorithm being modelled
//! (paper §5.1): they consume only the machine representation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codebuf;
pub mod dot;
pub mod efsm_text;
pub mod hsm;
pub mod java_src;
pub mod mermaid;
pub mod report;
pub mod rust_src;
pub mod text;
pub mod xml;

pub use codebuf::CodeBuffer;
pub use dot::{render_dot, DotOptions};
pub use efsm_text::{render_efsm_dot, render_efsm_text};
pub use hsm::{render_hsm_dot, render_hsm_mermaid};
pub use java_src::JavaRenderer;
pub use mermaid::render_mermaid;
pub use report::{
    render_generation_report, render_machine_summary, render_markdown_report, render_table1,
    Table1Row,
};
pub use rust_src::render_rust_module;
pub use text::TextRenderer;
pub use xml::render_xml;
