//! Protocol parameters and thresholds.

use std::error::Error;
use std::fmt;

/// Error constructing a [`CommitConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Replication factor below the minimum of 2 (with one node there is
    /// no peer to exchange votes or commits with, so the protocol can
    /// never complete).
    ReplicationTooSmall(u32),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ReplicationTooSmall(r) => {
                write!(f, "replication factor {r} is below the minimum of 2")
            }
        }
    }
}

impl Error for ConfigError {}

/// Parameters of one commit-protocol family member.
///
/// The protocol tolerates `f = floor((r-1)/3)` Byzantine-faulty peers for
/// replication factor `r` (paper §2.2); Byzantine fault tolerance proper
/// (`f ≥ 1`) requires `r ≥ 4`.
///
/// # Examples
///
/// ```
/// use stategen_commit::CommitConfig;
///
/// let config = CommitConfig::new(4)?;
/// assert_eq!(config.max_faulty(), 1);
/// assert_eq!(config.vote_threshold(), 3);   // Fig 14: "vote threshold (3)"
/// assert_eq!(config.commit_threshold(), 2); // Fig 14: "external commit threshold (2)"
/// # Ok::<(), stategen_commit::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommitConfig {
    replication_factor: u32,
}

impl CommitConfig {
    /// Creates a configuration for the given replication factor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ReplicationTooSmall`] for `r < 2`.
    pub fn new(replication_factor: u32) -> Result<Self, ConfigError> {
        if replication_factor < 2 {
            return Err(ConfigError::ReplicationTooSmall(replication_factor));
        }
        Ok(CommitConfig { replication_factor })
    }

    /// The replication factor `r`: the number of peers holding a replica,
    /// all of which participate in the protocol.
    pub fn replication_factor(&self) -> u32 {
        self.replication_factor
    }

    /// Maximum number of Byzantine-faulty peers tolerated:
    /// `f = floor((r-1)/3)`.
    pub fn max_faulty(&self) -> u32 {
        (self.replication_factor - 1) / 3
    }

    /// `true` if the configuration tolerates at least one faulty peer
    /// (`r ≥ 4`), as required for Byzantine fault tolerance.
    pub fn is_byzantine_tolerant(&self) -> bool {
        self.max_faulty() >= 1
    }

    /// The vote threshold: when the total of votes sent and received for an
    /// update reaches the number of non-faulty peers (`r − f`), the update
    /// is agreed and commits are exchanged. For `r = 3f + 1` this equals
    /// the paper's `2f + 1` majority.
    pub fn vote_threshold(&self) -> u32 {
        self.replication_factor - self.max_faulty()
    }

    /// The external commit threshold: receipt of `f + 1` commit messages
    /// guarantees at least one comes from a non-faulty peer, so the update
    /// is globally agreed and the instance finishes.
    pub fn commit_threshold(&self) -> u32 {
        self.max_faulty() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_parameters() {
        // Table 1 rows: (f, r) pairs.
        for (f, r) in [(1u32, 4u32), (2, 7), (4, 13), (8, 25), (15, 46)] {
            let c = CommitConfig::new(r).expect("valid");
            assert_eq!(c.max_faulty(), f, "f for r={r}");
            assert_eq!(c.vote_threshold(), r - f);
            assert_eq!(c.commit_threshold(), f + 1);
            assert!(c.is_byzantine_tolerant());
        }
    }

    #[test]
    fn r4_matches_fig14_thresholds() {
        let c = CommitConfig::new(4).expect("valid");
        assert_eq!(c.vote_threshold(), 3);
        assert_eq!(c.commit_threshold(), 2);
    }

    #[test]
    fn vote_threshold_equals_2f_plus_1_for_3f_plus_1() {
        for f in 1..20u32 {
            let c = CommitConfig::new(3 * f + 1).expect("valid");
            assert_eq!(c.vote_threshold(), 2 * f + 1);
        }
    }

    #[test]
    fn small_replication_rejected() {
        assert_eq!(
            CommitConfig::new(0),
            Err(ConfigError::ReplicationTooSmall(0))
        );
        assert_eq!(
            CommitConfig::new(1),
            Err(ConfigError::ReplicationTooSmall(1))
        );
        assert!(CommitConfig::new(2).is_ok());
    }

    #[test]
    fn non_bft_configs_flagged() {
        assert!(!CommitConfig::new(2).unwrap().is_byzantine_tolerant());
        assert!(!CommitConfig::new(3).unwrap().is_byzantine_tolerant());
        assert!(CommitConfig::new(4).unwrap().is_byzantine_tolerant());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            ConfigError::ReplicationTooSmall(1).to_string(),
            "replication factor 1 is below the minimum of 2"
        );
    }
}
