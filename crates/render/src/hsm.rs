//! Hierarchy-aware diagram renderers for
//! [`HierarchicalMachine`]s.
//!
//! The flat renderers ([`render_dot`](crate::render_dot),
//! [`render_mermaid`](crate::render_mermaid)) draw the *flattened*
//! machine — one node per reachable configuration, useful for seeing
//! exactly what the execution tiers run. These renderers draw the
//! statechart as authored: composites become DOT `cluster` subgraphs /
//! Mermaid composite states, shallow-history pseudostates are drawn
//! inside their composites, and inherited transitions are drawn once on
//! the composite that declares them.

use std::fmt::Write as _;

use stategen_core::{HierarchicalMachine, HsmStateId, HsmTarget, StateRole};

use crate::dot::escape;
use crate::efsm_text::{format_guard_names, format_updates_names};

/// The representative node of a state: itself for leaves, the leaf
/// reached by descending through initial children for composites (DOT
/// edges cannot terminate on a cluster, so they anchor on this leaf
/// with `lhead`/`ltail` pointing at the cluster border).
fn representative(machine: &HierarchicalMachine, id: HsmStateId) -> HsmStateId {
    let mut cur = id;
    while let Some(init) = machine.state(cur).initial() {
        cur = init;
    }
    cur
}

fn dot_node_label(machine: &HierarchicalMachine, id: HsmStateId) -> String {
    let state = machine.state(id);
    let mut label = escape(state.name());
    for a in state.entry_actions() {
        let _ = write!(label, "\\nentry / ->{}", escape(a.message()));
    }
    for a in state.exit_actions() {
        let _ = write!(label, "\\nexit / ->{}", escape(a.message()));
    }
    label
}

fn render_dot_state(
    machine: &HierarchicalMachine,
    id: HsmStateId,
    indent: usize,
    out: &mut String,
) {
    let pad = "    ".repeat(indent);
    let state = machine.state(id);
    if state.is_leaf() {
        let shape = match state.role() {
            StateRole::Finish => ", peripheries=2",
            StateRole::Normal => "",
        };
        let _ = writeln!(
            out,
            "{pad}s{} [label=\"{}\"{shape}];",
            id.index(),
            dot_node_label(machine, id)
        );
        return;
    }
    let _ = writeln!(out, "{pad}subgraph cluster_{} {{", id.index());
    let _ = writeln!(out, "{pad}    label=\"{}\";", dot_node_label(machine, id));
    let _ = writeln!(out, "{pad}    style=rounded;");
    if state.has_history() {
        let _ = writeln!(
            out,
            "{pad}    h{} [label=\"H\", shape=circle, fontsize=8, width=0.2];",
            id.index()
        );
    }
    for &child in state.children() {
        render_dot_state(machine, child, indent + 1, out);
    }
    let _ = writeln!(out, "{pad}}}");
}

/// Renders the statechart as a Graphviz DOT document with one `cluster`
/// subgraph per composite state (using `compound=true` so transitions
/// can start and end at cluster borders), `H` pseudostate nodes for
/// shallow history, and dashed self-loops for internal transitions.
pub fn render_hsm_dot(machine: &HierarchicalMachine) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(machine.name()));
    out.push_str("    rankdir=LR;\n    compound=true;\n");
    out.push_str("    node [shape=box, style=rounded, fontsize=10, fontname=\"Helvetica\"];\n");
    out.push_str("    edge [fontsize=9, fontname=\"Helvetica\"];\n");
    out.push_str("    __start [shape=point];\n");
    for id in machine.top_level() {
        render_dot_state(machine, id, 1, &mut out);
    }

    let start_repr = representative(machine, machine.start());
    let start_attr = if machine.state(machine.start()).is_leaf() {
        String::new()
    } else {
        format!(" [lhead=cluster_{}]", machine.start().index())
    };
    let _ = writeln!(out, "    __start -> s{}{};", start_repr.index(), start_attr);

    for (id, state) in machine.states_with_ids() {
        let tail_repr = representative(machine, id);
        let tail_attr = if state.is_leaf() {
            String::new()
        } else {
            format!(", ltail=cluster_{}", id.index())
        };
        for (mid, t) in state.transitions() {
            // Escape each fragment at insertion time (as the node labels
            // do), so the `\n` separators stay literal DOT line breaks
            // whatever bytes the message names contain.
            let mut label = escape(&machine.messages()[mid.index()].to_uppercase());
            let guard = format_guard_names(machine.variables(), machine.params(), t.guard());
            if !guard.is_empty() {
                let _ = write!(label, "\\n{}", escape(&guard));
            }
            let updates = format_updates_names(machine.variables(), machine.params(), t.updates());
            if !updates.is_empty() {
                let _ = write!(label, "\\n/ {}", escape(&updates));
            }
            for a in t.actions() {
                let _ = write!(label, "\\n->{}", escape(a.message()));
            }
            let (head, head_attr, style) = match t.target() {
                HsmTarget::Internal => {
                    label.push_str("\\n(internal)");
                    (
                        format!("s{}", tail_repr.index()),
                        String::new(),
                        ", style=dashed",
                    )
                }
                HsmTarget::History(c) => (format!("h{}", c.index()), String::new(), ""),
                HsmTarget::State(to) => {
                    let head_attr = if machine.state(to).is_leaf() {
                        String::new()
                    } else {
                        format!(", lhead=cluster_{}", to.index())
                    };
                    (
                        format!("s{}", representative(machine, to).index()),
                        head_attr,
                        "",
                    )
                }
            };
            let _ = writeln!(
                out,
                "    s{} -> {} [label=\"{}\"{}{}{}];",
                tail_repr.index(),
                head,
                label,
                tail_attr,
                head_attr,
                style
            );
        }
    }
    out.push_str("}\n");
    out
}

fn render_mermaid_state(
    machine: &HierarchicalMachine,
    id: HsmStateId,
    indent: usize,
    out: &mut String,
) {
    let pad = "    ".repeat(indent);
    let state = machine.state(id);
    if state.is_leaf() {
        let mut label = state.name().to_string();
        for a in state.entry_actions() {
            let _ = write!(label, " [entry ->{}]", a.message());
        }
        for a in state.exit_actions() {
            let _ = write!(label, " [exit ->{}]", a.message());
        }
        let _ = writeln!(out, "{pad}s{} : {}", id.index(), label);
        return;
    }
    let _ = writeln!(out, "{pad}state \"{}\" as s{} {{", state.name(), id.index());
    let init = state.initial().expect("composites have an initial child");
    let _ = writeln!(out, "{pad}    [*] --> s{}", init.index());
    for &child in state.children() {
        render_mermaid_state(machine, child, indent + 1, out);
    }
    let _ = writeln!(out, "{pad}}}");
}

/// Renders the statechart as a Mermaid `stateDiagram-v2` with composite
/// states as nested blocks, `[*]` markers for each composite's initial
/// child, `[H]`-suffixed edges for shallow-history targets and
/// `(internal)`-suffixed self-loops for internal transitions.
pub fn render_hsm_mermaid(machine: &HierarchicalMachine) -> String {
    let mut out = String::from("stateDiagram-v2\n");
    for id in machine.top_level() {
        render_mermaid_state(machine, id, 1, &mut out);
    }
    let _ = writeln!(out, "    [*] --> s{}", machine.start().index());
    for (id, state) in machine.states_with_ids() {
        for (mid, t) in state.transitions() {
            let mut label = machine.messages()[mid.index()].to_uppercase();
            let guard = format_guard_names(machine.variables(), machine.params(), t.guard());
            if !guard.is_empty() {
                let _ = write!(label, " {guard}");
            }
            let updates = format_updates_names(machine.variables(), machine.params(), t.updates());
            let mut effects: Vec<String> = Vec::new();
            if !updates.is_empty() {
                effects.push(updates);
            }
            effects.extend(t.actions().iter().map(|a| a.message().to_string()));
            if !effects.is_empty() {
                let _ = write!(label, " / {}", effects.join(", "));
            }
            let to = match t.target() {
                HsmTarget::Internal => {
                    label.push_str(" (internal)");
                    id
                }
                HsmTarget::History(c) => {
                    label.push_str(" [H]");
                    c
                }
                HsmTarget::State(to) => to,
            };
            let _ = writeln!(out, "    s{} --> s{} : {}", id.index(), to.index(), label);
        }
        if state.role() == StateRole::Finish {
            let _ = writeln!(out, "    s{} --> [*]", id.index());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stategen_core::{Action, HsmBuilder};

    fn sample() -> HierarchicalMachine {
        let mut b = HsmBuilder::new("life", ["go", "stop", "back", "ping"]);
        let idle = b.add_state("Idle");
        let run = b.add_state("Run");
        let a = b.add_child(run, "A");
        let bb = b.add_child(run, "B");
        let done = b.add_state("Done");
        b.mark_final(done);
        b.enable_history(run);
        b.on_entry(run, vec![Action::send("up")]);
        b.on_exit(a, vec![Action::send("bye")]);
        b.add_transition(idle, "go", run, vec![Action::send("syn")]);
        b.add_transition(a, "go", bb, vec![]);
        b.add_transition(run, "stop", done, vec![]);
        b.add_history_transition(idle, "back", run, vec![]);
        b.add_internal_transition(run, "ping", vec![Action::send("pong")]);
        b.build(idle)
    }

    #[test]
    fn dot_clusters_and_pseudostates() {
        let out = render_hsm_dot(&sample());
        assert!(out.starts_with("digraph \"life\" {"));
        assert!(out.contains("compound=true;"));
        assert!(out.contains("subgraph cluster_1 {"));
        assert!(out.contains("label=\"Run\\nentry / ->up\";"));
        assert!(out.contains("h1 [label=\"H\""));
        assert!(out.contains("s2 [label=\"A\\nexit / ->bye\"];"));
        assert!(out.contains("s4 [label=\"Done\", peripheries=2];"));
        // Entering a composite anchors on its initial leaf with lhead.
        assert!(out.contains("s0 -> s2 [label=\"GO\\n->syn\", lhead=cluster_1];"));
        // Leaving a composite anchors on its representative with ltail.
        assert!(out.contains("s2 -> s4 [label=\"STOP\", ltail=cluster_1];"));
        // History transitions point at the H pseudostate.
        assert!(out.contains("s0 -> h1 [label=\"BACK\"];"));
        // Internal transitions are dashed self-loops.
        assert!(out.contains(
            "s2 -> s2 [label=\"PING\\n->pong\\n(internal)\", ltail=cluster_1, style=dashed];"
        ));
        assert!(out.contains("__start -> s0;"));
        assert!(out.trim_end().ends_with('}'));
    }

    fn guarded_sample() -> HierarchicalMachine {
        use stategen_core::efsm::{CmpOp, Guard, LinExpr, Update};
        let mut b = HsmBuilder::new("budgeted", ["go", "fail"]);
        let max = b.add_param("max");
        let tries = b.add_var("tries");
        let idle = b.add_state("Idle");
        let busy = b.add_state("Busy");
        let down = b.add_state("Down");
        b.add_transition(idle, "go", busy, vec![]);
        b.add_guarded_transition(
            busy,
            "fail",
            Guard::when(
                LinExpr::var(tries).plus_const(1),
                CmpOp::Lt,
                LinExpr::param(max),
            ),
            vec![Update::Inc(tries)],
            busy,
            vec![Action::send("retry")],
        );
        b.add_guarded_transition(
            busy,
            "fail",
            Guard::when(
                LinExpr::var(tries).plus_const(1),
                CmpOp::Ge,
                LinExpr::param(max),
            ),
            vec![Update::Set(tries, LinExpr::constant(0))],
            down,
            vec![],
        );
        b.build(idle)
    }

    #[test]
    fn dot_renders_guard_and_update_annotations() {
        let out = render_hsm_dot(&guarded_sample());
        // Both guarded variants of the cell are drawn, each with its
        // guard bracket and update clause on the label.
        assert!(
            out.contains("s1 -> s1 [label=\"FAIL\\n[tries+1 < max]\\n/ tries+=1\\n->retry\"];"),
            "{out}"
        );
        assert!(
            out.contains("s1 -> s2 [label=\"FAIL\\n[tries+1 >= max]\\n/ tries:=0\"];"),
            "{out}"
        );
        // Unguarded transitions keep their plain labels.
        assert!(out.contains("s0 -> s1 [label=\"GO\"];"));
    }

    #[test]
    fn mermaid_renders_guard_and_update_annotations() {
        let out = render_hsm_mermaid(&guarded_sample());
        assert!(
            out.contains("    s1 --> s1 : FAIL [tries+1 < max] / tries+=1, retry\n"),
            "{out}"
        );
        assert!(
            out.contains("    s1 --> s2 : FAIL [tries+1 >= max] / tries:=0\n"),
            "{out}"
        );
        assert!(out.contains("    s0 --> s1 : GO\n"));
    }

    #[test]
    fn mermaid_composites_and_history() {
        let out = render_hsm_mermaid(&sample());
        assert!(out.starts_with("stateDiagram-v2\n"));
        assert!(out.contains("    state \"Run\" as s1 {"));
        assert!(out.contains("        [*] --> s2\n"));
        assert!(out.contains("        s2 : A [exit ->bye]\n"));
        assert!(out.contains("    [*] --> s0\n"));
        assert!(out.contains("    s0 --> s1 : GO / syn\n"));
        assert!(out.contains("    s0 --> s1 : BACK [H]\n"));
        assert!(out.contains("    s1 --> s1 : PING / pong (internal)\n"));
        assert!(out.contains("    s4 --> [*]\n"));
    }
}
