//! The seeded defect corpus: for every lint in the catalog, at least
//! one machine that triggers it and one near-miss that must not — the
//! analyzer's false-positive/false-negative pinning suite.

use stategen_analysis::{analyze, analyze_bound, minimize, Analysis, AnalysisConfig};
use stategen_core::efsm::{CmpOp, EfsmBuilder, Guard, LinExpr, Update};
use stategen_core::{
    Action, FlatIr, FlatState, FlatTransition, Level, Lint, StateMachineBuilder, StateRole,
};

fn run(ir: &FlatIr) -> Analysis {
    analyze(ir, &AnalysisConfig::new())
}

/// Builds an unguarded IR from explicit states (full control over the
/// shapes `StateMachineBuilder` refuses to produce).
fn raw(messages: &[&str], states: Vec<FlatState>, start: u32) -> FlatIr {
    FlatIr::from_parts(
        "defect",
        messages.iter().map(|m| m.to_string()).collect(),
        vec![],
        vec![],
        states,
        start,
    )
}

fn t(message: usize, target: u32) -> FlatTransition {
    FlatTransition::new(message, Guard::always(), vec![], vec![], target)
}

fn t_act(message: usize, action: &str, target: u32) -> FlatTransition {
    FlatTransition::new(
        message,
        Guard::always(),
        vec![],
        vec![Action::send(action)],
        target,
    )
}

// ---- final-with-outgoing ------------------------------------------------

#[test]
fn final_with_outgoing_triggers() {
    let ir = raw(
        &["a"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1)]),
            FlatState::new("fin", StateRole::Finish, vec![t(0, 0)]),
        ],
        0,
    );
    let analysis = run(&ir);
    assert!(analysis.has(Lint::FinalWithOutgoing));
    // Deny by default: the gate rejects the machine.
    assert!(!analysis.is_clean());
    assert!(analysis.check().is_err());
    // The impossible transition is also dead.
    assert!(analysis.has(Lint::DeadTransition));
}

#[test]
fn final_without_outgoing_does_not_trigger() {
    let ir = raw(
        &["a"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1)]),
            FlatState::new("fin", StateRole::Finish, vec![]),
        ],
        0,
    );
    let analysis = run(&ir);
    assert!(!analysis.has(Lint::FinalWithOutgoing));
    assert!(analysis.is_clean());
    assert!(analysis.check().is_ok());
}

// ---- unreachable-state --------------------------------------------------

#[test]
fn unreachable_state_triggers() {
    let ir = raw(
        &["a"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1)]),
            FlatState::new("fin", StateRole::Finish, vec![]),
            FlatState::new("orphan", StateRole::Normal, vec![t(0, 1)]),
        ],
        0,
    );
    let analysis = run(&ir);
    assert_eq!(analysis.count(Lint::UnreachableState), 1);
    assert!(!analysis.reachable[2]);
    // Its transitions are dead too.
    assert!(analysis.has(Lint::DeadTransition));
    // Warn by default: reported, not gated.
    assert!(analysis.is_clean());
}

#[test]
fn reachable_states_do_not_trigger() {
    let ir = raw(
        &["a", "b"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1), t(1, 2)]),
            FlatState::new("s1", StateRole::Normal, vec![t(0, 2)]),
            FlatState::new("fin", StateRole::Finish, vec![]),
        ],
        0,
    );
    let analysis = run(&ir);
    assert!(!analysis.has(Lint::UnreachableState));
    assert!(analysis.reachable.iter().all(|&r| r));
}

// ---- dead-end-state -----------------------------------------------------

#[test]
fn dead_end_state_triggers() {
    let ir = raw(
        &["a"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1)]),
            FlatState::new("stuck", StateRole::Normal, vec![]),
        ],
        0,
    );
    let analysis = run(&ir);
    assert!(analysis.has(Lint::DeadEndState));
}

#[test]
fn final_dead_end_does_not_trigger() {
    // The same shape marked final is the *correct* absorbing end.
    let ir = raw(
        &["a"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1)]),
            FlatState::new("done", StateRole::Finish, vec![]),
        ],
        0,
    );
    assert!(!run(&ir).has(Lint::DeadEndState));
}

// ---- duplicate-state-name -----------------------------------------------

#[test]
fn duplicate_state_name_triggers() {
    let ir = raw(
        &["a"],
        vec![
            FlatState::new("dup", StateRole::Normal, vec![t(0, 1)]),
            FlatState::new("dup", StateRole::Finish, vec![]),
        ],
        0,
    );
    let analysis = run(&ir);
    assert_eq!(analysis.count(Lint::DuplicateStateName), 1);
}

#[test]
fn distinct_state_names_do_not_trigger() {
    let ir = raw(
        &["a"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1)]),
            FlatState::new("s1", StateRole::Finish, vec![]),
        ],
        0,
    );
    assert!(!run(&ir).has(Lint::DuplicateStateName));
}

// ---- dead-transition ----------------------------------------------------

#[test]
fn shadowed_transition_triggers() {
    // The unconditional first transition on `a` wins every match; the
    // second can never fire.
    let ir = raw(
        &["a"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1), t_act(0, "x", 1)]),
            FlatState::new("fin", StateRole::Finish, vec![]),
        ],
        0,
    );
    let analysis = run(&ir);
    assert!(analysis.has(Lint::DeadTransition));
}

#[test]
fn guarded_first_transition_does_not_shadow() {
    let mut b = EfsmBuilder::new("defect", ["a"]);
    let v = b.add_var("v");
    let s0 = b.add_state("s0");
    let s1 = b.add_state("s1");
    b.add_transition(
        s0,
        "a",
        Guard::when(LinExpr::var(v), CmpOp::Lt, LinExpr::constant(1)),
        vec![Update::Inc(v)],
        vec![],
        s0,
    );
    b.add_transition(s0, "a", Guard::always(), vec![], vec![], s1);
    let ir = FlatIr::from_efsm(&b.build(s0, Some(s1)));
    assert!(!run(&ir).has(Lint::DeadTransition));
}

// ---- unhandled-message --------------------------------------------------

#[test]
fn unhandled_message_triggers() {
    let ir = raw(
        &["a", "ghost"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1)]),
            FlatState::new("fin", StateRole::Finish, vec![]),
        ],
        0,
    );
    let analysis = run(&ir);
    assert_eq!(analysis.count(Lint::UnhandledMessage), 1);
    assert!(analysis
        .diagnostics
        .iter()
        .any(|d| d.lint == Lint::UnhandledMessage && d.message.contains("ghost")));
}

#[test]
fn handled_messages_do_not_trigger() {
    let ir = raw(
        &["a", "b"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1), t(1, 1)]),
            FlatState::new("fin", StateRole::Finish, vec![]),
        ],
        0,
    );
    assert!(!run(&ir).has(Lint::UnhandledMessage));
}

// ---- absorbing-sink -----------------------------------------------------

#[test]
fn absorbing_sink_triggers() {
    let ir = raw(
        &["a"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1)]),
            FlatState::new("trap", StateRole::Normal, vec![t_act(0, "echo", 1)]),
        ],
        0,
    );
    let analysis = run(&ir);
    assert!(analysis.has(Lint::AbsorbingSink));
}

#[test]
fn state_with_an_exit_does_not_trigger() {
    let ir = raw(
        &["a", "quit"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1)]),
            FlatState::new(
                "busy",
                StateRole::Normal,
                vec![t_act(0, "echo", 1), t(1, 2)],
            ),
            FlatState::new("fin", StateRole::Finish, vec![]),
        ],
        0,
    );
    assert!(!run(&ir).has(Lint::AbsorbingSink));
}

// ---- unsatisfiable-guard ------------------------------------------------

/// `v + 1 < b  ∧  v + 1 ≥ b`: contradictory for every binding.
#[test]
fn contradictory_guard_triggers() {
    let mut b = EfsmBuilder::new("defect", ["a"]);
    let p = b.add_param("b");
    let v = b.add_var("v");
    let s0 = b.add_state("s0");
    let s1 = b.add_state("s1");
    let contradiction = Guard::when(LinExpr::var(v).plus_const(1), CmpOp::Lt, LinExpr::param(p))
        .and(LinExpr::var(v).plus_const(1), CmpOp::Ge, LinExpr::param(p));
    b.add_transition(s0, "a", contradiction, vec![], vec![], s1);
    b.add_transition(s0, "a", Guard::always(), vec![], vec![], s1);
    let ir = FlatIr::from_efsm(&b.build(s0, Some(s1)));
    let analysis = run(&ir);
    assert!(analysis.has(Lint::UnsatisfiableGuard));
}

/// `v < 0` where `v` starts at zero and only grows: satisfiable in the
/// abstract, dead under the ranges the fixpoint proves.
#[test]
fn context_unsatisfiable_guard_triggers() {
    let mut b = EfsmBuilder::new("defect", ["inc", "neg"]);
    let v = b.add_var("v");
    let s0 = b.add_state("s0");
    let s1 = b.add_state("s1");
    b.add_transition(s0, "inc", Guard::always(), vec![Update::Inc(v)], vec![], s0);
    b.add_transition(
        s0,
        "neg",
        Guard::when(LinExpr::var(v), CmpOp::Lt, LinExpr::constant(0)),
        vec![],
        vec![],
        s1,
    );
    let ir = FlatIr::from_efsm(&b.build(s0, Some(s1)));
    let analysis = run(&ir);
    assert!(analysis.has(Lint::UnsatisfiableGuard));
}

#[test]
fn satisfiable_guard_does_not_trigger() {
    let mut b = EfsmBuilder::new("ok", ["a"]);
    let p = b.add_param("b");
    let v = b.add_var("v");
    let s0 = b.add_state("s0");
    let s1 = b.add_state("s1");
    b.add_transition(
        s0,
        "a",
        Guard::when(LinExpr::var(v).plus_const(1), CmpOp::Lt, LinExpr::param(p)),
        vec![Update::Inc(v)],
        vec![],
        s0,
    );
    b.add_transition(
        s0,
        "a",
        Guard::when(LinExpr::var(v).plus_const(1), CmpOp::Ge, LinExpr::param(p)),
        vec![],
        vec![],
        s1,
    );
    let ir = FlatIr::from_efsm(&b.build(s0, Some(s1)));
    assert!(!run(&ir).has(Lint::UnsatisfiableGuard));
    assert!(!analyze_bound(&ir, &[3], &AnalysisConfig::new()).has(Lint::UnsatisfiableGuard));
}

// ---- vacuous-guard ------------------------------------------------------

#[test]
fn vacuous_guard_triggers() {
    // `v >= 0` can only be true: v starts at 0 and only grows.
    let mut b = EfsmBuilder::new("defect", ["a"]);
    let v = b.add_var("v");
    let s0 = b.add_state("s0");
    let s1 = b.add_state("s1");
    b.add_transition(
        s0,
        "a",
        Guard::when(LinExpr::var(v), CmpOp::Ge, LinExpr::constant(0)),
        vec![Update::Inc(v)],
        vec![],
        s1,
    );
    let ir = FlatIr::from_efsm(&b.build(s0, Some(s1)));
    assert!(run(&ir).has(Lint::VacuousGuard));
}

#[test]
fn guard_that_can_fail_does_not_trigger() {
    // `v >= 1` is false at first and true later: neither vacuous nor
    // unsatisfiable.
    let mut b = EfsmBuilder::new("ok", ["inc", "go"]);
    let v = b.add_var("v");
    let s0 = b.add_state("s0");
    let s1 = b.add_state("s1");
    b.add_transition(s0, "inc", Guard::always(), vec![Update::Inc(v)], vec![], s0);
    b.add_transition(
        s0,
        "go",
        Guard::when(LinExpr::var(v), CmpOp::Ge, LinExpr::constant(1)),
        vec![],
        vec![],
        s1,
    );
    let ir = FlatIr::from_efsm(&b.build(s0, Some(s1)));
    let analysis = run(&ir);
    assert!(!analysis.has(Lint::VacuousGuard));
    assert!(!analysis.has(Lint::UnsatisfiableGuard));
}

// ---- overlapping-guards -------------------------------------------------

#[test]
fn overlapping_guards_trigger_with_witness() {
    // `v <= 5` and `v >= 3` both hold on v ∈ [3, 5]; with the (empty)
    // binding in hand the witness search finds a concrete assignment
    // and the finding lands at its default Deny.
    let mut b = EfsmBuilder::new("defect", ["a"]);
    let v = b.add_var("v");
    let r0 = b.add_state("s0");
    let r1 = b.add_state("s1");
    let r2 = b.add_state("s2");
    b.add_transition(
        r0,
        "a",
        Guard::when(LinExpr::var(v), CmpOp::Le, LinExpr::constant(5)),
        vec![Update::Inc(v)],
        vec![],
        r1,
    );
    b.add_transition(
        r0,
        "a",
        Guard::when(LinExpr::var(v), CmpOp::Ge, LinExpr::constant(3)),
        vec![],
        vec![],
        r2,
    );
    b.add_transition(r1, "a", Guard::always(), vec![], vec![], r0);
    b.add_transition(r2, "a", Guard::always(), vec![], vec![], r0);
    let ir = FlatIr::from_efsm(&b.build(r0, None));
    let analysis = analyze_bound(&ir, &[], &AnalysisConfig::new());
    let finding = analysis
        .diagnostics
        .iter()
        .find(|d| d.lint == Lint::OverlappingGuards)
        .expect("overlap reported");
    assert_eq!(finding.level, Level::Deny);
    assert!(finding.message.contains("both hold"));
    assert!(!analysis.is_clean());
}

#[test]
fn unproven_overlap_is_capped_at_warn() {
    // Binding-free analysis cannot run the witness search; the finding
    // drops to Warn ("not proved disjoint") instead of rejecting.
    let mut b = EfsmBuilder::new("suspect", ["a"]);
    let v = b.add_var("v");
    let s0 = b.add_state("s0");
    let s1 = b.add_state("s1");
    b.add_transition(
        s0,
        "a",
        Guard::when(LinExpr::var(v), CmpOp::Le, LinExpr::constant(5)),
        vec![],
        vec![],
        s1,
    );
    b.add_transition(
        s0,
        "a",
        Guard::when(LinExpr::var(v), CmpOp::Ge, LinExpr::constant(3)),
        vec![],
        vec![],
        s1,
    );
    let ir = FlatIr::from_efsm(&b.build(s0, Some(s1)));
    let analysis = analyze(&ir, &AnalysisConfig::new());
    let finding = analysis
        .diagnostics
        .iter()
        .find(|d| d.lint == Lint::OverlappingGuards)
        .expect("overlap reported");
    assert_eq!(finding.level, Level::Warn);
    assert!(analysis.is_clean());
}

#[test]
fn disjoint_guards_do_not_trigger() {
    // The complementary retry pair: proved disjoint without a binding.
    let mut b = EfsmBuilder::new("ok", ["a"]);
    let p = b.add_param("b");
    let v = b.add_var("v");
    let s0 = b.add_state("s0");
    let s1 = b.add_state("s1");
    b.add_transition(
        s0,
        "a",
        Guard::when(LinExpr::var(v).plus_const(1), CmpOp::Lt, LinExpr::param(p)),
        vec![Update::Inc(v)],
        vec![],
        s0,
    );
    b.add_transition(
        s0,
        "a",
        Guard::when(LinExpr::var(v).plus_const(1), CmpOp::Ge, LinExpr::param(p)),
        vec![],
        vec![],
        s1,
    );
    let ir = FlatIr::from_efsm(&b.build(s0, Some(s1)));
    assert!(!analyze_bound(&ir, &[4], &AnalysisConfig::new()).has(Lint::OverlappingGuards));
    assert!(!analyze(&ir, &AnalysisConfig::new()).has(Lint::OverlappingGuards));
}

// ---- possible-overflow --------------------------------------------------

#[test]
fn unbounded_growth_triggers() {
    // An unguarded `Inc` in a cycle: the widened range hits +∞.
    let mut b = EfsmBuilder::new("defect", ["a"]);
    let v = b.add_var("v");
    let s0 = b.add_state("s0");
    b.add_transition(s0, "a", Guard::always(), vec![Update::Inc(v)], vec![], s0);
    let ir = FlatIr::from_efsm(&b.build(s0, None));
    let analysis = run(&ir);
    assert!(analysis.has(Lint::PossibleOverflow));
}

#[test]
fn guard_bounded_growth_does_not_trigger() {
    // The retry-budget shape: the increment only fires below the bound,
    // so the narrowed range stays finite under a concrete binding.
    let mut b = EfsmBuilder::new("ok", ["a"]);
    let p = b.add_param("b");
    let v = b.add_var("v");
    let s0 = b.add_state("s0");
    let s1 = b.add_state("s1");
    b.add_transition(
        s0,
        "a",
        Guard::when(LinExpr::var(v).plus_const(1), CmpOp::Lt, LinExpr::param(p)),
        vec![Update::Inc(v)],
        vec![],
        s0,
    );
    b.add_transition(
        s0,
        "a",
        Guard::when(LinExpr::var(v).plus_const(1), CmpOp::Ge, LinExpr::param(p)),
        vec![],
        vec![],
        s1,
    );
    let ir = FlatIr::from_efsm(&b.build(s0, Some(s1)));
    assert!(!analyze_bound(&ir, &[5], &AnalysisConfig::new()).has(Lint::PossibleOverflow));
}

// ---- equivalent-states --------------------------------------------------

#[test]
fn equivalent_states_trigger_and_minimize() {
    // `twin-a` and `twin-b` behave identically.
    let ir = raw(
        &["go", "stop"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1), t(1, 3)]),
            FlatState::new("twin-a", StateRole::Normal, vec![t_act(0, "x", 2), t(1, 3)]),
            FlatState::new("twin-b", StateRole::Normal, vec![t_act(0, "x", 1), t(1, 3)]),
            FlatState::new("fin", StateRole::Finish, vec![]),
        ],
        0,
    );
    let analysis = run(&ir);
    assert!(analysis.has(Lint::EquivalentStates));
    // Allow by default: informational, not gating.
    assert!(analysis.is_clean());
    let (smaller, stats) = minimize(&ir);
    assert_eq!(stats.states_before, 4);
    assert_eq!(stats.states_after, 3);
    assert_eq!(smaller.state_count(), 3);
    // Escalating the lint makes redundancy a hard failure.
    let strict = analyze(&ir, &AnalysisConfig::new().deny(Lint::EquivalentStates));
    assert!(!strict.is_clean());
}

#[test]
fn behaviourally_distinct_states_do_not_trigger() {
    // Same shape, but the twins emit different actions.
    let ir = raw(
        &["go", "stop"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1), t(1, 3)]),
            FlatState::new("twin-a", StateRole::Normal, vec![t_act(0, "x", 2), t(1, 3)]),
            FlatState::new("twin-b", StateRole::Normal, vec![t_act(0, "y", 1), t(1, 3)]),
            FlatState::new("fin", StateRole::Finish, vec![]),
        ],
        0,
    );
    let analysis = run(&ir);
    assert!(!analysis.has(Lint::EquivalentStates));
    let (_, stats) = minimize(&ir);
    assert_eq!(stats.merged(), 0);
}

// ---- configuration plumbing --------------------------------------------

#[test]
fn config_overrides_change_gating() {
    let ir = raw(
        &["a"],
        vec![
            FlatState::new("s0", StateRole::Normal, vec![t(0, 1)]),
            FlatState::new("fin", StateRole::Finish, vec![]),
            FlatState::new("orphan", StateRole::Normal, vec![]),
        ],
        0,
    );
    // Default: unreachable-state is Warn — clean.
    assert!(run(&ir).is_clean());
    // Escalated: the same machine is rejected, and the error carries
    // the finding.
    let strict = analyze(&ir, &AnalysisConfig::new().deny(Lint::UnreachableState));
    let err = strict.check().unwrap_err();
    assert!(err.to_string().contains("unreachable-state"), "{err}");
    // Silenced: the finding is still recorded, at Allow.
    let lax = analyze(&ir, &AnalysisConfig::new().allow(Lint::UnreachableState));
    assert!(lax.has(Lint::UnreachableState));
    assert_eq!(lax.worst(), Some(Level::Allow));
}

#[test]
fn builder_machines_flow_through_the_ir() {
    // The analyzer consumes any front-end's lowering; a plain
    // StateMachine round-trips with no findings.
    let mut b = StateMachineBuilder::new("ok", ["a", "b"]);
    let s0 = b.add_state("s0");
    let s1 = b.add_state("s1");
    let fin = b.add_state_full("fin", None, StateRole::Finish, vec![]);
    b.add_transition(s0, "a", s1, vec![Action::send("x")]);
    b.add_transition(s1, "b", fin, vec![]);
    let ir = FlatIr::from_machine(&b.build(s0));
    let analysis = run(&ir);
    assert!(
        analysis.diagnostics.is_empty(),
        "{:?}",
        analysis.diagnostics
    );
}
