//! Extended finite state machines (EFSMs).
//!
//! Paper §3.2/§5.3: an algorithm can be mapped to a *spectrum* of state
//! machines. At one end sits the original algorithm (one state, many
//! variables); at the other the FSM family (many states, no variables).
//! EFSMs are the intermediate points: transitions carry *guards* over
//! internal variables and *updates* to them, so counter-like variables
//! (e.g. `votes_received`) need not be encoded into the state space. The
//! commit protocol's EFSM has 9 states regardless of the replication
//! factor, because its states encode only whether thresholds have been
//! reached — not the counts themselves.

use std::borrow::Cow;
use std::fmt;

use crate::error::InterpError;
use crate::interp::ProtocolEngine;
use crate::machine::Action;

/// Identifier of an EFSM variable (index into [`Efsm::variables`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index into the EFSM's variable table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an EFSM parameter (index into [`Efsm::params`]).
///
/// Parameters are bound when an [`EfsmInstance`] is created — this is what
/// makes a single EFSM generic over, say, the replication factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index into the EFSM's parameter table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an EFSM state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EfsmStateId(pub(crate) u32);

impl EfsmStateId {
    /// Index into the EFSM's state table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term of a linear expression: a variable or a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// An EFSM variable.
    Var(VarId),
    /// An instance parameter.
    Param(ParamId),
}

/// A linear integer expression over variables and parameters:
/// `constant + Σ coeff·operand`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    constant: i64,
    terms: Vec<(i64, Operand)>,
}

impl LinExpr {
    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        LinExpr {
            constant: c,
            terms: Vec::new(),
        }
    }

    /// The value of a variable.
    pub fn var(v: VarId) -> Self {
        LinExpr {
            constant: 0,
            terms: vec![(1, Operand::Var(v))],
        }
    }

    /// The value of a parameter.
    pub fn param(p: ParamId) -> Self {
        LinExpr {
            constant: 0,
            terms: vec![(1, Operand::Param(p))],
        }
    }

    /// Adds another expression.
    #[must_use]
    pub fn plus(mut self, other: LinExpr) -> Self {
        self.constant += other.constant;
        self.terms.extend(other.terms);
        self
    }

    /// Adds a constant.
    #[must_use]
    pub fn plus_const(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    /// Scales the whole expression by `k`.
    #[must_use]
    pub fn times(mut self, k: i64) -> Self {
        self.constant *= k;
        for (coeff, _) in &mut self.terms {
            *coeff *= k;
        }
        self
    }

    /// The constant part of the expression.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The `(coefficient, operand)` terms of the expression.
    pub fn terms(&self) -> &[(i64, Operand)] {
        &self.terms
    }

    /// Evaluates against concrete variable and parameter values.
    pub fn eval(&self, vars: &[i64], params: &[i64]) -> i64 {
        let mut acc = self.constant;
        for (coeff, op) in &self.terms {
            let v = match op {
                Operand::Var(v) => vars[v.0],
                Operand::Param(p) => params[p.0],
            };
            acc += coeff * v;
        }
        acc
    }
}

/// Comparison operator in a guard condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        };
        f.write_str(s)
    }
}

/// One atomic condition `lhs op rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    /// Left-hand side.
    pub lhs: LinExpr,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: LinExpr,
}

impl Cond {
    /// Evaluates the condition.
    pub fn eval(&self, vars: &[i64], params: &[i64]) -> bool {
        let l = self.lhs.eval(vars, params);
        let r = self.rhs.eval(vars, params);
        match self.op {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Ge => l >= r,
            CmpOp::Gt => l > r,
        }
    }
}

/// A conjunction of conditions; the empty guard is always true.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Guard {
    conds: Vec<Cond>,
}

impl Guard {
    /// The always-true guard.
    pub fn always() -> Self {
        Guard::default()
    }

    /// A guard with a single condition.
    pub fn when(lhs: LinExpr, op: CmpOp, rhs: LinExpr) -> Self {
        Guard {
            conds: vec![Cond { lhs, op, rhs }],
        }
    }

    /// Conjoins another condition.
    #[must_use]
    pub fn and(mut self, lhs: LinExpr, op: CmpOp, rhs: LinExpr) -> Self {
        self.conds.push(Cond { lhs, op, rhs });
        self
    }

    /// The conditions of this guard.
    pub fn conditions(&self) -> &[Cond] {
        &self.conds
    }

    /// Evaluates the conjunction.
    pub fn eval(&self, vars: &[i64], params: &[i64]) -> bool {
        self.conds.iter().all(|c| c.eval(vars, params))
    }
}

/// An update to a variable performed when a transition fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// `var := expr` (evaluated against the pre-transition values).
    Set(VarId, LinExpr),
    /// `var := var + 1`.
    Inc(VarId),
}

/// Applies a transition's updates with the staged
/// read-pre-transition-values semantics shared by every interpreter
/// (EFSM, flat IR, guarded statechart) and mirrored by the compiled
/// lowering: `vars` is snapshotted into the caller-provided `old_vars`
/// buffer (reused across deliveries, so the hot path never allocates)
/// and every update expression reads the snapshot.
///
/// # Panics
///
/// Panics if `old_vars` is shorter than `vars`, or an update references
/// a register outside `vars`.
pub(crate) fn apply_staged_updates(
    updates: &[Update],
    vars: &mut [i64],
    old_vars: &mut [i64],
    params: &[i64],
) {
    old_vars.copy_from_slice(vars);
    for update in updates {
        match update {
            Update::Set(v, expr) => vars[v.index()] = expr.eval(old_vars, params),
            Update::Inc(v) => vars[v.index()] = old_vars[v.index()] + 1,
        }
    }
}

/// A guarded transition of an EFSM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EfsmTransition {
    message: u16,
    guard: Guard,
    updates: Vec<Update>,
    actions: Vec<Action>,
    target: EfsmStateId,
    annotations: Vec<String>,
}

impl EfsmTransition {
    /// Index of the message that triggers this transition (into
    /// [`Efsm::messages`]).
    pub fn message_index(&self) -> usize {
        usize::from(self.message)
    }

    /// The guard that must hold for this transition to fire.
    pub fn guard(&self) -> &Guard {
        &self.guard
    }

    /// Variable updates applied when firing.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Actions (messages sent) when firing.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Destination state.
    pub fn target(&self) -> EfsmStateId {
        self.target
    }

    /// Documentation annotations.
    pub fn annotations(&self) -> &[String] {
        &self.annotations
    }
}

/// One state of an EFSM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EfsmState {
    name: String,
    transitions: Vec<EfsmTransition>,
    annotations: Vec<String>,
}

impl EfsmState {
    /// The state's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All guarded transitions out of this state, in declaration order
    /// (earlier transitions take priority when guards overlap).
    pub fn transitions(&self) -> &[EfsmTransition] {
        &self.transitions
    }

    /// Documentation annotations.
    pub fn annotations(&self) -> &[String] {
        &self.annotations
    }
}

/// An extended finite state machine: states plus integer variables,
/// guarded transitions and parameters bound at instantiation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Efsm {
    name: String,
    messages: Vec<String>,
    params: Vec<String>,
    variables: Vec<String>,
    states: Vec<EfsmState>,
    start: EfsmStateId,
    finish: Option<EfsmStateId>,
}

impl Efsm {
    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The message alphabet.
    pub fn messages(&self) -> &[String] {
        &self.messages
    }

    /// Parameter names (bound per instance).
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Variable names (all initialised to zero).
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// All states.
    pub fn states(&self) -> &[EfsmState] {
        &self.states
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The start state.
    pub fn start(&self) -> EfsmStateId {
        self.start
    }

    /// The finish state, if any.
    pub fn finish(&self) -> Option<EfsmStateId> {
        self.finish
    }

    /// Looks up a message id by name.
    pub fn message_id(&self, name: &str) -> Option<u16> {
        self.messages
            .iter()
            .position(|m| m == name)
            .map(|i| i as u16)
    }

    /// Checks that for every state, message and combination of variable
    /// values in `0..=bound` (per variable), at most one guard holds —
    /// i.e. transition priority never actually disambiguates anything and
    /// the EFSM is deterministic in the strong sense.
    ///
    /// # Errors
    ///
    /// Returns a description of the first overlapping pair found.
    pub fn check_deterministic(&self, params: &[i64], var_bound: i64) -> Result<(), String> {
        assert_eq!(params.len(), self.params.len(), "wrong parameter count");
        let nvars = self.variables.len();
        let mut vars = vec![0i64; nvars];
        loop {
            for (sid, state) in self.states.iter().enumerate() {
                for mid in 0..self.messages.len() as u16 {
                    let mut matched: Option<usize> = None;
                    for (ti, t) in state.transitions.iter().enumerate() {
                        if t.message != mid || !t.guard.eval(&vars, params) {
                            continue;
                        }
                        if let Some(prev) = matched {
                            return Err(format!(
                                "state `{}` (id {sid}), message `{}`: transitions {prev} and {ti} both enabled at vars {vars:?}",
                                state.name, self.messages[mid as usize]
                            ));
                        }
                        matched = Some(ti);
                    }
                }
            }
            // Advance the mixed-radix counter over variable values.
            let mut i = 0;
            loop {
                if i == nvars {
                    return Ok(());
                }
                vars[i] += 1;
                if vars[i] <= var_bound {
                    break;
                }
                vars[i] = 0;
                i += 1;
            }
        }
    }
}

/// Builder for [`Efsm`]s.
///
/// # Examples
///
/// ```
/// use stategen_core::efsm::{CmpOp, EfsmBuilder, Guard, LinExpr, Update};
/// use stategen_core::Action;
///
/// let mut b = EfsmBuilder::new("counter", ["tick"]);
/// let limit = b.add_param("limit");
/// let n = b.add_var("n");
/// let counting = b.add_state("counting");
/// let done = b.add_state("done");
/// b.add_transition(
///     counting, "tick",
///     Guard::when(LinExpr::var(n).plus_const(1), CmpOp::Lt, LinExpr::param(limit)),
///     vec![Update::Inc(n)], vec![], counting,
/// );
/// b.add_transition(
///     counting, "tick",
///     Guard::when(LinExpr::var(n).plus_const(1), CmpOp::Ge, LinExpr::param(limit)),
///     vec![Update::Inc(n)], vec![Action::send("done")], done,
/// );
/// let efsm = b.build(counting, Some(done));
/// assert_eq!(efsm.state_count(), 2);
/// assert!(efsm.check_deterministic(&[5], 6).is_ok());
/// ```
#[derive(Debug)]
pub struct EfsmBuilder {
    name: String,
    messages: Vec<String>,
    params: Vec<String>,
    variables: Vec<String>,
    states: Vec<EfsmState>,
}

impl EfsmBuilder {
    /// Starts a builder with the given message alphabet.
    ///
    /// # Panics
    ///
    /// Panics if `messages` is empty or contains duplicates.
    pub fn new<I, S>(name: impl Into<String>, messages: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let messages: Vec<String> = messages.into_iter().map(Into::into).collect();
        assert!(
            !messages.is_empty(),
            "EFSM must declare at least one message"
        );
        for (i, m) in messages.iter().enumerate() {
            assert!(!messages[..i].contains(m), "duplicate message `{m}`");
        }
        EfsmBuilder {
            name: name.into(),
            messages,
            params: Vec::new(),
            variables: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Declares an instance parameter; returns its id.
    pub fn add_param(&mut self, name: impl Into<String>) -> ParamId {
        self.params.push(name.into());
        ParamId(self.params.len() - 1)
    }

    /// Declares a variable (initial value zero); returns its id.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.variables.push(name.into());
        VarId(self.variables.len() - 1)
    }

    /// Adds a state; returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> EfsmStateId {
        self.add_state_annotated(name, Vec::new())
    }

    /// Adds a state with annotations; returns its id.
    pub fn add_state_annotated(
        &mut self,
        name: impl Into<String>,
        annotations: Vec<String>,
    ) -> EfsmStateId {
        let id = EfsmStateId(self.states.len() as u32);
        self.states.push(EfsmState {
            name: name.into(),
            transitions: Vec::new(),
            annotations,
        });
        id
    }

    /// Adds a guarded transition.
    ///
    /// # Panics
    ///
    /// Panics if the message is unknown or a state id is out of range.
    pub fn add_transition(
        &mut self,
        from: EfsmStateId,
        message: &str,
        guard: Guard,
        updates: Vec<Update>,
        actions: Vec<Action>,
        target: EfsmStateId,
    ) {
        self.add_transition_annotated(from, message, guard, updates, actions, target, Vec::new());
    }

    /// Adds a guarded transition with annotations.
    ///
    /// # Panics
    ///
    /// Panics if the message is unknown or a state id is out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn add_transition_annotated(
        &mut self,
        from: EfsmStateId,
        message: &str,
        guard: Guard,
        updates: Vec<Update>,
        actions: Vec<Action>,
        target: EfsmStateId,
        annotations: Vec<String>,
    ) {
        let mid = self
            .messages
            .iter()
            .position(|m| m == message)
            .unwrap_or_else(|| panic!("unknown message `{message}`"));
        assert!(
            target.index() < self.states.len(),
            "target state out of range"
        );
        self.states[from.index()].transitions.push(EfsmTransition {
            message: mid as u16,
            guard,
            updates,
            actions,
            target,
            annotations,
        });
    }

    /// Finalises the EFSM.
    ///
    /// # Panics
    ///
    /// Panics if `start` (or `finish`) is out of range.
    pub fn build(self, start: EfsmStateId, finish: Option<EfsmStateId>) -> Efsm {
        assert!(
            start.index() < self.states.len(),
            "start state out of range"
        );
        if let Some(f) = finish {
            assert!(f.index() < self.states.len(), "finish state out of range");
        }
        Efsm {
            name: self.name,
            messages: self.messages,
            params: self.params,
            variables: self.variables,
            states: self.states,
            start,
            finish,
        }
    }
}

/// One executing instance of an [`Efsm`], with bound parameters and
/// concrete variable values.
#[derive(Debug, Clone)]
pub struct EfsmInstance<'e> {
    efsm: &'e Efsm,
    params: Vec<i64>,
    vars: Vec<i64>,
    /// Pre-transition variable snapshot, reused across deliveries so the
    /// hot path does not allocate.
    old_vars: Vec<i64>,
    current: EfsmStateId,
}

impl<'e> EfsmInstance<'e> {
    /// Creates an instance with the given parameter values; variables start
    /// at zero and the machine at its start state.
    ///
    /// # Panics
    ///
    /// Panics if the number of parameters differs from the EFSM's
    /// declaration.
    pub fn new(efsm: &'e Efsm, params: Vec<i64>) -> Self {
        assert_eq!(params.len(), efsm.params.len(), "wrong parameter count");
        EfsmInstance {
            efsm,
            params,
            vars: vec![0; efsm.variables.len()],
            old_vars: vec![0; efsm.variables.len()],
            current: efsm.start,
        }
    }

    /// The EFSM this instance executes.
    pub fn efsm(&self) -> &'e Efsm {
        self.efsm
    }

    /// Current variable values, in declaration order.
    pub fn vars(&self) -> &[i64] {
        &self.vars
    }

    /// The current state.
    pub fn current(&self) -> &'e EfsmState {
        &self.efsm.states[self.current.index()]
    }

    /// Display name of the current state, borrowed from the EFSM
    /// (non-allocating form of [`ProtocolEngine::state_name`]).
    pub fn state_name_str(&self) -> &'e str {
        &self.current().name
    }
}

impl ProtocolEngine for EfsmInstance<'_> {
    fn deliver_ref(&mut self, message: &str) -> Result<&[Action], InterpError> {
        let efsm = self.efsm;
        let mid = efsm
            .message_id(message)
            .ok_or_else(|| InterpError::UnknownMessage(message.to_string()))?;
        if self.is_finished() {
            return Ok(&[]);
        }
        let state = &efsm.states[self.current.index()];
        for t in &state.transitions {
            if t.message != mid || !t.guard.eval(&self.vars, &self.params) {
                continue;
            }
            apply_staged_updates(&t.updates, &mut self.vars, &mut self.old_vars, &self.params);
            self.current = t.target;
            return Ok(&t.actions);
        }
        Ok(&[])
    }

    fn is_finished(&self) -> bool {
        Some(self.current) == self.efsm.finish
    }

    fn state_name(&self) -> Cow<'_, str> {
        Cow::Borrowed(self.state_name_str())
    }

    fn reset(&mut self) {
        self.current = self.efsm.start;
        self.vars.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counter EFSM: counts to a parameter-determined limit, then fires.
    fn counter() -> Efsm {
        let mut b = EfsmBuilder::new("counter", ["tick"]);
        let limit = b.add_param("limit");
        let n = b.add_var("n");
        let counting = b.add_state("counting");
        let done = b.add_state("done");
        b.add_transition(
            counting,
            "tick",
            Guard::when(
                LinExpr::var(n).plus_const(1),
                CmpOp::Lt,
                LinExpr::param(limit),
            ),
            vec![Update::Inc(n)],
            vec![],
            counting,
        );
        b.add_transition(
            counting,
            "tick",
            Guard::when(
                LinExpr::var(n).plus_const(1),
                CmpOp::Ge,
                LinExpr::param(limit),
            ),
            vec![Update::Inc(n)],
            vec![Action::send("done")],
            done,
        );
        b.build(counting, Some(done))
    }

    #[test]
    fn counter_counts_to_param() {
        let efsm = counter();
        let mut i = EfsmInstance::new(&efsm, vec![3]);
        assert!(i.deliver("tick").unwrap().is_empty());
        assert!(i.deliver("tick").unwrap().is_empty());
        assert_eq!(i.deliver("tick").unwrap(), vec![Action::send("done")]);
        assert!(i.is_finished());
        assert_eq!(i.vars(), &[3]);
    }

    #[test]
    fn same_efsm_different_params() {
        // The point of EFSMs (paper §5.3): one machine serves the family.
        let efsm = counter();
        for limit in 1..6 {
            let mut i = EfsmInstance::new(&efsm, vec![limit]);
            let mut fired = 0;
            for _ in 0..limit {
                fired += i.deliver("tick").unwrap().len();
            }
            assert_eq!(fired, 1, "fires exactly once at limit {limit}");
            assert!(i.is_finished());
        }
    }

    #[test]
    fn guards_respect_priority_and_finish_absorbs() {
        let efsm = counter();
        let mut i = EfsmInstance::new(&efsm, vec![1]);
        assert_eq!(i.deliver("tick").unwrap().len(), 1);
        assert!(i.is_finished());
        assert!(i.deliver("tick").unwrap().is_empty());
        assert_eq!(i.vars(), &[1]);
    }

    #[test]
    fn unknown_message_is_error() {
        let efsm = counter();
        let mut i = EfsmInstance::new(&efsm, vec![1]);
        assert!(matches!(
            i.deliver("zap"),
            Err(InterpError::UnknownMessage(_))
        ));
    }

    #[test]
    fn reset_restores_start() {
        let efsm = counter();
        let mut i = EfsmInstance::new(&efsm, vec![2]);
        i.deliver("tick").unwrap();
        i.reset();
        assert_eq!(i.vars(), &[0]);
        assert_eq!(i.state_name(), "counting");
    }

    #[test]
    fn determinism_check_passes_for_counter() {
        let efsm = counter();
        assert!(efsm.check_deterministic(&[4], 8).is_ok());
    }

    #[test]
    fn determinism_check_catches_overlap() {
        let mut b = EfsmBuilder::new("bad", ["m"]);
        let s = b.add_state("s");
        b.add_transition(s, "m", Guard::always(), vec![], vec![], s);
        b.add_transition(s, "m", Guard::always(), vec![], vec![], s);
        let efsm = b.build(s, None);
        assert!(efsm.check_deterministic(&[], 0).is_err());
    }

    #[test]
    fn linexpr_arithmetic() {
        let mut b = EfsmBuilder::new("e", ["m"]);
        let p = b.add_param("p");
        let v = b.add_var("v");
        let _s = b.add_state("s");
        let expr = LinExpr::var(v)
            .times(2)
            .plus(LinExpr::param(p))
            .plus_const(5);
        assert_eq!(expr.eval(&[3], &[10]), 21);
        let neg = LinExpr::constant(7).times(-1);
        assert_eq!(neg.eval(&[0], &[0]), -7);
    }

    #[test]
    fn cmp_op_display() {
        assert_eq!(CmpOp::Ge.to_string(), ">=");
        assert_eq!(CmpOp::Ne.to_string(), "!=");
    }
}
