//! `any::<T>()` — full-range generation for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_range_edges_eventually() {
        let mut rng = TestRng::new(11);
        let mut seen = [false; 4];
        for _ in 0..2000 {
            seen[(any::<u8>().generate(&mut rng) % 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
