//! Property suite for `stategen_analysis::minimize`: the quotient
//! machine must be observation-equivalent to the original on **every
//! execution tier** —
//!
//! ```text
//! IrInstance(ir) ≡ IrInstance(minimize(ir))                 (interpreted)
//!                ≡ CompiledInstance(minimize(ir))           (dense tables)
//!                ≡ CompiledEfsmInstance(minimize(ir))       (register machine)
//! HsmInstance(hsm) ≡ minimize(hsm.flatten_ir())             (flattened statechart)
//! ```
//!
//! and minimization must be idempotent: a second pass over the quotient
//! merges nothing and returns the identical IR. The machines are random
//! — adversarial shapes (duplicate targets, absorbing regions, redundant
//! twins, complementary guard pairs) arise from the seeds rather than
//! being hand-picked, so the partition refinement is exercised well away
//! from the tidy corpus machines.
//!
//! The deterministic tests at the bottom pin the `Spec::analyzed()`
//! gate: deny-level findings reject the spec before compilation, clean
//! machines pass through untouched, and configuration overrides move
//! the line.

use proptest::prelude::*;

use stategen_analysis::minimize;
use stategen_core::efsm::{CmpOp, EfsmBuilder, Guard, LinExpr, Update};
use stategen_core::{
    Action, CompiledEfsm, CompiledMachine, FlatIr, FlatState, FlatTransition, Level, Lint,
    ProtocolEngine, StateMachineBuilder, StateRole, StategenError,
};
use stategen_models::redundant_ring;
use stategen_runtime::{AnalysisConfig, Spec};

const ALPHABET: [&str; 3] = ["m0", "m1", "m2"];

/// Materialises a random *unguarded* flat IR: up to 8 states, a
/// sprinkling of finish roles, at most one transition per
/// `(state, message)` cell (the dense tier's well-formedness condition),
/// and deliberately reused names/actions so behavioural twins are
/// common.
fn build_random_ir(states: &[u64], start: u64) -> FlatIr {
    let n = states.len();
    let flat: Vec<FlatState> = states
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            // Roughly one state in eight is a finish state (never the
            // only state, so something is reachable and live).
            let role = if seed % 8 == 0 && n > 1 {
                StateRole::Finish
            } else {
                StateRole::Normal
            };
            let transitions = (0..ALPHABET.len())
                .filter(|m| seed >> (8 + 2 * m) & 3 != 0)
                .map(|m| {
                    let target = (seed >> (16 + 4 * m)) % n as u64;
                    let actions = if seed >> (32 + m) & 1 != 0 {
                        vec![Action::send(format!("a{}", seed >> (40 + m) & 1))]
                    } else {
                        vec![]
                    };
                    FlatTransition::new(m, Guard::always(), vec![], actions, target as u32)
                })
                .collect();
            FlatState::new(format!("s{}", i % 3), role, transitions)
        })
        .collect();
    FlatIr::from_parts(
        "random-flat",
        ALPHABET.iter().map(|m| m.to_string()).collect(),
        vec![],
        vec![],
        flat,
        (start % n as u64) as u32,
    )
}

/// Materialises a random *guarded* EFSM: one `budget` parameter, two
/// variables, and per `(state, message)` cell either nothing, an
/// unguarded transition, or a complementary threshold pair — the shapes
/// the register-machine lowering distinguishes, with no duplicate
/// guards for the compiler to reject.
fn build_random_efsm(states: &[u64], start: u64) -> stategen_core::Efsm {
    let n = states.len();
    let mut b = EfsmBuilder::new("random-efsm", ALPHABET);
    let budget = b.add_param("budget");
    let vars = [b.add_var("x"), b.add_var("y")];
    let ids: Vec<_> = (0..n).map(|i| b.add_state(format!("s{}", i % 3))).collect();
    for (i, &seed) in states.iter().enumerate() {
        for (m, message) in ALPHABET.iter().enumerate() {
            let v = vars[(seed >> (4 + m) & 1) as usize];
            let to_low = ids[((seed >> (8 + 4 * m)) % n as u64) as usize];
            let to_high = ids[((seed >> (20 + 4 * m)) % n as u64) as usize];
            let actions: Vec<Action> = (0..(seed >> (32 + m)) & 1)
                .map(|k| Action::send(format!("a{k}")))
                .collect();
            match seed >> (40 + 2 * m) & 3 {
                0 => {}
                1 => b.add_transition(ids[i], message, Guard::always(), vec![], actions, to_low),
                _ => {
                    b.add_transition(
                        ids[i],
                        message,
                        Guard::when(
                            LinExpr::var(v).plus_const(1),
                            CmpOp::Lt,
                            LinExpr::param(budget),
                        ),
                        vec![Update::Inc(v)],
                        actions.clone(),
                        to_low,
                    );
                    b.add_transition(
                        ids[i],
                        message,
                        Guard::when(
                            LinExpr::var(v).plus_const(1),
                            CmpOp::Ge,
                            LinExpr::param(budget),
                        ),
                        vec![Update::Set(v, LinExpr::constant(0))],
                        actions,
                        to_high,
                    );
                }
            }
        }
    }
    let fin = ids[((start >> 8) % n as u64) as usize];
    let fin = (start & 1 == 0 && fin.index() != (start % n as u64) as usize).then_some(fin);
    b.build(ids[(start % n as u64) as usize], fin)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Interpreted + dense tiers: the quotient of a random unguarded IR
    /// emits the same actions and agrees on completion at every step of
    /// a random trace, both under the direct interpreter and compiled
    /// into the dense tables.
    #[test]
    fn minimize_preserves_unguarded_behaviour(
        states in prop::collection::vec(any::<u64>(), 1..=8),
        start in any::<u64>(),
        trace in prop::collection::vec(0usize..ALPHABET.len(), 0..40),
    ) {
        let ir = build_random_ir(&states, start);
        let (small, stats) = minimize(&ir);
        prop_assert!(stats.states_after <= stats.states_before);
        let compiled = CompiledMachine::compile_ir(&small)
            .expect("the quotient keeps one transition per cell");
        let mut reference = ir.instance(vec![]);
        let mut interp = small.instance(vec![]);
        let mut dense = compiled.instance();
        for (step, &mi) in trace.iter().enumerate() {
            let want = reference.deliver_ref(ALPHABET[mi]).unwrap().to_vec();
            prop_assert_eq!(
                interp.deliver_ref(ALPHABET[mi]).unwrap(), want.as_slice(),
                "interpreted tier diverged at step {}", step
            );
            prop_assert_eq!(
                dense.deliver_ref(ALPHABET[mi]).unwrap(), want.as_slice(),
                "dense tier diverged at step {}", step
            );
            prop_assert_eq!(reference.is_finished(), interp.is_finished(), "step {}", step);
            prop_assert_eq!(reference.is_finished(), dense.is_finished(), "step {}", step);
        }
    }

    /// Register-machine tier: the quotient of a random guarded EFSM,
    /// compiled to threshold bytecode, tracks the original interpreter
    /// under every budget binding.
    #[test]
    fn minimize_preserves_guarded_behaviour(
        states in prop::collection::vec(any::<u64>(), 1..=6),
        start in any::<u64>(),
        budget in 1i64..=3,
        trace in prop::collection::vec(0usize..ALPHABET.len(), 0..40),
    ) {
        let efsm = build_random_efsm(&states, start);
        let ir = FlatIr::from_efsm(&efsm);
        let (small, _) = minimize(&ir);
        let compiled = CompiledEfsm::compile_ir(&small)
            .expect("the quotient keeps the priority-ordered guard lists");
        let params = vec![budget];
        let mut reference = ir.instance(params.clone());
        let mut interp = small.instance(params.clone());
        let mut fast = compiled.instance(params);
        for (step, &mi) in trace.iter().enumerate() {
            let want = reference.deliver_ref(ALPHABET[mi]).unwrap().to_vec();
            prop_assert_eq!(
                interp.deliver_ref(ALPHABET[mi]).unwrap(), want.as_slice(),
                "interpreted tier diverged at step {}", step
            );
            prop_assert_eq!(
                fast.deliver_ref(ALPHABET[mi]).unwrap(), want.as_slice(),
                "register-machine tier diverged at step {}", step
            );
            prop_assert_eq!(reference.is_finished(), interp.is_finished(), "step {}", step);
            prop_assert_eq!(reference.is_finished(), fast.is_finished(), "step {}", step);
        }
    }

    /// Flattened-statechart tier: the *hierarchical* interpreter is the
    /// reference; its flattening, minimized and compiled dense, must
    /// reproduce every trace. On the ring family the quotient is always
    /// exactly three states however wide the ring was.
    #[test]
    fn minimize_preserves_statechart_behaviour(
        k in 1usize..=9,
        trace in prop::collection::vec(0usize..3, 0..40),
    ) {
        let hsm = redundant_ring(k);
        let (small, stats) = minimize(&hsm.flatten_ir());
        prop_assert_eq!(stats.states_before, k + 2);
        prop_assert_eq!(stats.states_after, 3);
        let compiled = CompiledMachine::compile_ir(&small).expect("unguarded quotient");
        let mut reference = hsm.instance();
        let mut dense = compiled.instance();
        for (step, &mi) in trace.iter().enumerate() {
            let m = ["go", "step", "stop"][mi];
            let want = reference.deliver_ref(m).unwrap().to_vec();
            prop_assert_eq!(
                dense.deliver_ref(m).unwrap(), want.as_slice(),
                "flattened tier diverged at step {}", step
            );
            prop_assert_eq!(reference.is_finished(), dense.is_finished(), "step {}", step);
        }
    }

    /// Idempotence: on every random shape, minimizing the quotient
    /// merges nothing and reproduces it exactly.
    #[test]
    fn minimize_is_idempotent(
        states in prop::collection::vec(any::<u64>(), 1..=8),
        start in any::<u64>(),
        guarded in any::<bool>(),
    ) {
        let ir = if guarded {
            FlatIr::from_efsm(&build_random_efsm(&states[..states.len().min(6)], start))
        } else {
            build_random_ir(&states, start)
        };
        let (once, _) = minimize(&ir);
        let (twice, stats) = minimize(&once);
        prop_assert_eq!(stats.merged(), 0);
        prop_assert_eq!(twice, once);
    }
}

/// A machine with a deny-level defect: a final state with outgoing
/// transitions.
fn defective_machine() -> stategen_core::StateMachine {
    let mut b = StateMachineBuilder::new("defective", ["a"]);
    let s0 = b.add_state("s0");
    let fin = b.add_state_full("fin", None, StateRole::Finish, vec![]);
    b.add_transition(s0, "a", fin, vec![]);
    b.add_transition(fin, "a", s0, vec![]);
    b.build(s0)
}

#[test]
fn analyzed_gate_rejects_deny_findings() {
    let err = Spec::machine(defective_machine()).analyzed().unwrap_err();
    match &err {
        StategenError::Analysis { diagnostics } => {
            assert!(diagnostics
                .iter()
                .any(|d| d.lint == Lint::FinalWithOutgoing && d.level == Level::Deny));
        }
        other => panic!("expected an analysis rejection, got {other}"),
    }
    assert!(err.to_string().contains("final-with-outgoing"), "{err}");
}

#[test]
fn analyzed_gate_passes_clean_specs_through() {
    // The statechart lifecycle and the ring family are deny-clean; the
    // gate hands the spec back so compilation chains directly.
    let engine = Spec::hierarchical(stategen_models::session_lifecycle())
        .analyzed()
        .expect("lifecycle is deny-clean")
        .compile()
        .expect("and still compiles");
    assert_eq!(engine.name(), "session-lifecycle");
    Spec::hierarchical(redundant_ring(4))
        .analyzed()
        .expect("redundancy is informational, not a defect");
}

#[test]
fn analyzed_gate_honours_config_overrides() {
    // Downgraded, the same defect passes the gate (and would then be
    // caught by the compile-time validator instead — the gate is an
    // *additional* line of defence, not a replacement).
    let relaxed = AnalysisConfig::new().allow(Lint::FinalWithOutgoing);
    assert!(Spec::machine(defective_machine())
        .analyzed_with(&relaxed)
        .is_ok());
    // And escalation turns an informational finding into a rejection.
    let strict = AnalysisConfig::new().deny(Lint::EquivalentStates);
    let err = Spec::hierarchical(redundant_ring(4))
        .analyzed_with(&strict)
        .unwrap_err();
    assert!(err.to_string().contains("equivalent-states"), "{err}");
}
