//! Hierarchical statecharts and the flattening compiler.
//!
//! The paper's pipeline produces *flat* FSM families, but real protocol
//! specifications — connection lifecycles, failure/recovery overlays on a
//! commit protocol — are naturally hierarchical: composite states with
//! entry/exit actions, transitions inherited from enclosing states,
//! internal (self-absorbing) transitions and shallow history. Devroey et
//! al.'s flattening mapping study names the standard bridge: lower the
//! statechart to an ordinary flat machine, then reuse all flat-FSM
//! tooling unchanged. This module is that bridge:
//!
//! * [`HierarchicalMachine`] / [`HsmBuilder`] — the statechart model: a
//!   forest of states where composites carry an initial child and
//!   optional shallow history, every state carries entry/exit action
//!   lists, and transitions may be internal, cross-level, or target a
//!   composite's history pseudostate;
//! * [`HierarchicalMachine::flatten`] — the compiler: enumerates the
//!   reachable *configurations* (active leaf × shallow-history memory)
//!   breadth-first and lowers each to one flat
//!   [`StateMachine`] state, expanding inherited
//!   transitions, synthesizing the exit/transition/entry action
//!   sequences, and resolving history by splitting states per remembered
//!   child. The result runs on every existing execution tier —
//!   [`FsmInstance`](crate::FsmInstance),
//!   [`CompiledMachine`](crate::CompiledMachine) /
//!   [`SessionPool`](crate::SessionPool) and
//!   [`ShardedPool`](crate::ShardedPool) — with zero engine changes
//!   (the compiled tier's action-arena interning folds the synthesized
//!   sequences back together);
//! * [`HsmInstance`] — a direct interpreter over the statechart, the
//!   reference the flattened machines are property-checked against
//!   (`HsmInstance ≡ FsmInstance(flatten) ≡ CompiledInstance(flatten)`
//!   over random traces). Interpreter and compiler share the
//!   run-to-completion kernel by design — one semantics, two execution
//!   strategies — so the properties pin the *flattening pipeline*
//!   (configuration enumeration, naming, table construction), while
//!   the kernel's semantics are pinned by closed-form unit tests
//!   asserting exact action sequences.
//!
//! # Semantics
//!
//! The run-to-completion step for a configuration `(leaf, memory)` on
//! message `m`:
//!
//! 1. A final leaf absorbs every message (mirroring the flat machines'
//!    absorbing [`StateRole::Finish`] states).
//! 2. The handler is the *innermost* state on the active leaf's ancestor
//!    chain declaring a transition for `m`; inner declarations override
//!    inherited outer ones. No handler ⇒ the message is ignored.
//! 3. An *internal* transition fires its actions and leaves the
//!    configuration untouched (no exit/entry actions run). It flattens
//!    to a self-loop.
//! 4. An external transition exits from the active leaf up to (but not
//!    including) the lowest common proper ancestor of the handler and
//!    the target — so a self- or ancestor-targeting transition exits and
//!    re-enters its source, the conventional external-transition
//!    reading. Exit actions run innermost-first; each exited composite
//!    with shallow history records its active direct child. The machine
//!    then enters the chain from that ancestor down to the target
//!    (entry actions outermost-first) and keeps descending: a history
//!    target restores the remembered (else initial) child, composites
//!    descend through initial children until a leaf is reached. The
//!    emitted action sequence is `exits ++ transition actions ++
//!    entries`.
//!
//! Entry actions of the *initial* configuration are not emitted: no
//! message delivery triggers them, and the flat model has no notion of
//! machine-start actions. Callers wanting them can read
//! [`HierarchicalMachine::start_entry_actions`].
//!
//! # Example
//!
//! ```
//! use stategen_core::{Action, HsmBuilder, HsmInstance, ProtocolEngine};
//!
//! let mut b = HsmBuilder::new("conn", ["open", "work", "drop", "resume"]);
//! let idle = b.add_state("Idle");
//! let up = b.add_state("Up");
//! let a = b.add_child(up, "A"); // initial child of Up
//! let bb = b.add_child(up, "B");
//! b.enable_history(up);
//! b.on_entry(up, vec![Action::send("hello")]);
//! b.add_transition(idle, "open", up, vec![]);          // enters Up.A
//! b.add_transition(a, "work", bb, vec![]);
//! b.add_transition(up, "drop", idle, vec![]);          // inherited by A and B
//! b.add_history_transition(idle, "resume", up, vec![]); // back to last child
//! let hsm = b.build(idle);
//!
//! let flat = hsm.flatten();
//! assert_eq!(flat.state_count(), 6); // {Idle, Up.A, Up.B} × reachable memories
//!
//! let mut reference = HsmInstance::new(&hsm);
//! for m in ["open", "work", "drop", "resume"] {
//!     reference.deliver_ref(m).unwrap();
//! }
//! assert_eq!(reference.state_name(), "Up.B~Up=B"); // history restored B
//! ```

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;

use crate::error::{HsmError, InterpError};
use crate::interp::ProtocolEngine;
use crate::machine::{Action, MessageId, StateMachine, StateMachineBuilder, StateRole};

/// Identifier of a state within a [`HierarchicalMachine`] (index into
/// its state tree, in declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HsmStateId(u32);

impl HsmStateId {
    /// The index into the machine's state table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a hierarchical transition goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsmTarget {
    /// External transition to a state; composites are entered through
    /// their initial children.
    State(HsmStateId),
    /// External transition to the shallow-history pseudostate of a
    /// composite: re-enters the direct child that was active when the
    /// composite was last exited (or its initial child on first entry).
    History(HsmStateId),
    /// Internal transition: actions fire but the configuration is
    /// unchanged and no entry/exit actions run.
    Internal,
}

/// A transition declared on a hierarchical state (and inherited by all
/// of its descendants unless overridden closer to the leaf).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsmTransition {
    target: HsmTarget,
    actions: Vec<Action>,
}

impl HsmTransition {
    /// The transition's target.
    pub fn target(&self) -> HsmTarget {
        self.target
    }

    /// Actions (messages sent) when the transition fires, not counting
    /// the entry/exit actions synthesized around them.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }
}

/// One state of a hierarchical machine: a node in the state forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsmState {
    name: String,
    parent: Option<HsmStateId>,
    children: Vec<HsmStateId>,
    initial: Option<HsmStateId>,
    history: bool,
    entry: Vec<Action>,
    exit: Vec<Action>,
    role: StateRole,
    transitions: BTreeMap<u16, HsmTransition>,
}

impl HsmState {
    fn new(name: String, parent: Option<HsmStateId>) -> Self {
        HsmState {
            name,
            parent,
            children: Vec::new(),
            initial: None,
            history: false,
            entry: Vec::new(),
            exit: Vec::new(),
            role: StateRole::Normal,
            transitions: BTreeMap::new(),
        }
    }

    /// The state's bare name (path-free; see
    /// [`HierarchicalMachine::path_name`] for the dotted full path).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The enclosing composite, or `None` for top-level states.
    pub fn parent(&self) -> Option<HsmStateId> {
        self.parent
    }

    /// Direct children, in declaration order (empty for leaves).
    pub fn children(&self) -> &[HsmStateId] {
        &self.children
    }

    /// The initial child entered when this composite is targeted
    /// directly (`None` for leaves).
    pub fn initial(&self) -> Option<HsmStateId> {
        self.initial
    }

    /// `true` if this composite records shallow history.
    pub fn has_history(&self) -> bool {
        self.history
    }

    /// `true` if this state has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Actions performed when the state is entered.
    pub fn entry_actions(&self) -> &[Action] {
        &self.entry
    }

    /// Actions performed when the state is exited.
    pub fn exit_actions(&self) -> &[Action] {
        &self.exit
    }

    /// The state's role; final leaves lower to absorbing
    /// [`StateRole::Finish`] flat states.
    pub fn role(&self) -> StateRole {
        self.role
    }

    /// Transitions declared directly on this state, keyed by message, in
    /// message-id order (inherited transitions are *not* repeated here).
    pub fn transitions(&self) -> impl Iterator<Item = (MessageId, &HsmTransition)> {
        self.transitions.iter().map(|(&m, t)| (MessageId(m), t))
    }
}

/// A hierarchical statechart: a forest of states with composite nesting,
/// entry/exit actions, inherited/internal/cross-level transitions and
/// shallow history. Built with [`HsmBuilder`]; executed directly by
/// [`HsmInstance`] or lowered to a flat
/// [`StateMachine`] by
/// [`HierarchicalMachine::flatten`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchicalMachine {
    name: String,
    messages: Vec<String>,
    message_lookup: HashMap<String, u16>,
    states: Vec<HsmState>,
    start: HsmStateId,
    start_leaf: HsmStateId,
    /// Composites with shallow history enabled, in id order; the slot
    /// index is each one's position in a configuration's memory vector.
    history_states: Vec<HsmStateId>,
    /// `history_slot[state] = Some(slot)` iff the state records history.
    history_slot: Vec<Option<usize>>,
}

impl HierarchicalMachine {
    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The message alphabet, in declaration order.
    pub fn messages(&self) -> &[String] {
        &self.messages
    }

    /// Looks up a message id by name in O(1).
    pub fn message_id(&self, name: &str) -> Option<MessageId> {
        self.message_lookup.get(name).copied().map(MessageId)
    }

    /// Number of states in the tree (composites and leaves).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of composite (non-leaf) states.
    pub fn composite_count(&self) -> usize {
        self.states.iter().filter(|s| !s.is_leaf()).count()
    }

    /// Number of composites recording shallow history.
    pub fn history_count(&self) -> usize {
        self.history_states.len()
    }

    /// Total transitions declared across all states (before inheritance
    /// expansion).
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(|s| s.transitions.len()).sum()
    }

    /// The state with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this machine.
    pub fn state(&self, id: HsmStateId) -> &HsmState {
        &self.states[id.index()]
    }

    /// Iterates over `(id, state)` pairs in declaration order.
    pub fn states_with_ids(&self) -> impl Iterator<Item = (HsmStateId, &HsmState)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (HsmStateId(i as u32), s))
    }

    /// Top-level states (those without a parent), in declaration order.
    pub fn top_level(&self) -> impl Iterator<Item = HsmStateId> + '_ {
        self.states_with_ids()
            .filter(|(_, s)| s.parent.is_none())
            .map(|(id, _)| id)
    }

    /// The declared start state (possibly a composite).
    pub fn start(&self) -> HsmStateId {
        self.start
    }

    /// The leaf the machine actually starts in, after descending through
    /// initial children from [`HierarchicalMachine::start`].
    pub fn start_leaf(&self) -> HsmStateId {
        self.start_leaf
    }

    /// Entry actions of the initial configuration (outermost-first down
    /// to the start leaf). These are *not* emitted by any delivery — no
    /// message triggers them — so both the direct interpreter and the
    /// flattened machine skip them; callers that need machine-start
    /// actions read them here.
    pub fn start_entry_actions(&self) -> Vec<Action> {
        let mut chain = Vec::new();
        let mut cur = Some(self.start);
        while let Some(s) = cur {
            chain.push(s);
            cur = self.states[s.index()].parent;
        }
        chain.reverse();
        let mut cur = self.start;
        while let Some(init) = self.states[cur.index()].initial {
            chain.push(init);
            cur = init;
        }
        chain
            .iter()
            .flat_map(|s| self.states[s.index()].entry.iter().cloned())
            .collect()
    }

    /// The canonical shallow-history memory of the initial
    /// configuration: every history composite remembers its initial
    /// child.
    pub fn initial_memory(&self) -> Vec<HsmStateId> {
        self.history_states
            .iter()
            .map(|&c| {
                self.states[c.index()]
                    .initial
                    .expect("history composites have children")
            })
            .collect()
    }

    /// The dotted root-to-state path, e.g. `Established.Commit.Voting`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this machine.
    pub fn path_name(&self, id: HsmStateId) -> String {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(s) = cur {
            chain.push(self.states[s.index()].name.as_str());
            cur = self.states[s.index()].parent;
        }
        chain.reverse();
        chain.join(".")
    }

    /// The display name of a configuration: the active leaf's dotted
    /// path, decorated with `~<composite path>=<child>` for every
    /// history composite whose memory differs from its initial child.
    /// The decoration keys on the composite's full path (not its bare
    /// name) so equally named composites in different branches cannot
    /// make distinct configurations collide. Flattened states carry
    /// exactly these names, so the direct interpreter and the flat
    /// engines agree on [`ProtocolEngine::state_name`].
    pub fn config_name(&self, leaf: HsmStateId, memory: &[HsmStateId]) -> String {
        let mut name = self.path_name(leaf);
        for (slot, &comp) in self.history_states.iter().enumerate() {
            let initial = self.states[comp.index()]
                .initial
                .expect("history composite");
            if memory[slot] != initial {
                let _ = write!(
                    name,
                    "~{}={}",
                    self.path_name(comp),
                    self.states[memory[slot].index()].name
                );
            }
        }
        name
    }

    /// The lowest state that is a *proper* ancestor of both `a` and `b`
    /// (`None` at forest top level). For `a == b`, or one an ancestor of
    /// the other, this is the parent of the shallower state — giving
    /// external transitions their exit-and-re-enter reading.
    fn proper_lca(&self, a: HsmStateId, b: HsmStateId) -> Option<HsmStateId> {
        let mut ancestors_of_a = Vec::new();
        let mut cur = self.states[a.index()].parent;
        while let Some(p) = cur {
            ancestors_of_a.push(p);
            cur = self.states[p.index()].parent;
        }
        let mut cur = self.states[b.index()].parent;
        while let Some(p) = cur {
            if ancestors_of_a.contains(&p) {
                return Some(p);
            }
            cur = self.states[p.index()].parent;
        }
        None
    }

    /// The run-to-completion kernel shared by [`HsmInstance`] and
    /// [`HierarchicalMachine::flatten`]: steps the configuration
    /// `(leaf, memory)` on `message`, appending the synthesized
    /// exit/transition/entry action sequence to `actions` and updating
    /// `memory` in place. Returns the new active leaf if a transition
    /// fired (possibly the same leaf, for internal transitions), `None`
    /// if the message was absorbed.
    fn step_config(
        &self,
        leaf: HsmStateId,
        memory: &mut [HsmStateId],
        message: u16,
        actions: &mut Vec<Action>,
    ) -> Option<HsmStateId> {
        if self.states[leaf.index()].role == StateRole::Finish {
            return None;
        }
        // Innermost handler wins: walk the ancestor chain from the leaf.
        let mut handler = leaf;
        let transition = loop {
            if let Some(t) = self.states[handler.index()].transitions.get(&message) {
                break t;
            }
            handler = self.states[handler.index()].parent?;
        };

        let (target, via_history) = match transition.target {
            HsmTarget::Internal => {
                actions.extend(transition.actions.iter().cloned());
                return Some(leaf);
            }
            HsmTarget::State(t) => (t, false),
            HsmTarget::History(t) => (t, true),
        };

        let lca = self.proper_lca(handler, target);

        // Exit from the active leaf up to (but not including) the LCA,
        // innermost-first; exited history composites record their active
        // direct child.
        let mut cur = Some(leaf);
        let mut below: Option<HsmStateId> = None;
        while cur != lca {
            let s = cur.expect("the LCA is a proper ancestor of the active leaf");
            actions.extend(self.states[s.index()].exit.iter().cloned());
            if let (Some(slot), Some(child)) = (self.history_slot[s.index()], below) {
                memory[slot] = child;
            }
            below = Some(s);
            cur = self.states[s.index()].parent;
        }

        actions.extend(transition.actions.iter().cloned());

        // Enter from the LCA down to the target, outermost-first.
        let mut chain = Vec::new();
        let mut cur = Some(target);
        while cur != lca {
            let s = cur.expect("the LCA is a proper ancestor of the target");
            chain.push(s);
            cur = self.states[s.index()].parent;
        }
        for &s in chain.iter().rev() {
            actions.extend(self.states[s.index()].entry.iter().cloned());
        }

        // Descend below the target: history restores the remembered
        // child (already updated if the target itself was just exited),
        // then composites descend through initial children to a leaf.
        let mut cur = target;
        if via_history {
            let slot = self.history_slot[target.index()].expect("validated history target");
            let child = memory[slot];
            actions.extend(self.states[child.index()].entry.iter().cloned());
            cur = child;
        }
        while let Some(init) = self.states[cur.index()].initial {
            actions.extend(self.states[init.index()].entry.iter().cloned());
            cur = init;
        }
        Some(cur)
    }

    /// Lowers the statechart to a flat [`StateMachine`] running on every
    /// existing execution tier unchanged.
    ///
    /// Flat states are the machine's *reachable configurations* (active
    /// leaf × shallow-history memory), discovered breadth-first from the
    /// initial configuration — so unreachable corners of the
    /// configuration product (e.g. a history memory that can never be
    /// recorded) are pruned by construction. Each flat transition
    /// carries the full synthesized action sequence (exit actions
    /// innermost-first, then the transition's own actions, then entry
    /// actions outermost-first); compiling the result interns identical
    /// sequences in the action arena
    /// ([`CompiledMachine::compile`](crate::CompiledMachine::compile)),
    /// so the expansion costs table cells, not arena bytes.
    ///
    /// Final leaves lower to absorbing [`StateRole::Finish`] states with
    /// no outgoing transitions; flat state names are
    /// [`HierarchicalMachine::config_name`]s, shared with
    /// [`HsmInstance::state_name`].
    pub fn flatten(&self) -> StateMachine {
        let mut builder = StateMachineBuilder::new(self.name.clone(), self.messages.clone());
        let init_mem = self.initial_memory();
        let start_config = (self.start_leaf, init_mem);

        let mut index: HashMap<(HsmStateId, Vec<HsmStateId>), crate::machine::StateId> =
            HashMap::new();
        let mut queue = VecDeque::new();
        let add_config = |builder: &mut StateMachineBuilder,
                          queue: &mut VecDeque<(HsmStateId, Vec<HsmStateId>)>,
                          index: &mut HashMap<_, crate::machine::StateId>,
                          config: (HsmStateId, Vec<HsmStateId>)| {
            if let Some(&id) = index.get(&config) {
                return id;
            }
            let name = self.config_name(config.0, &config.1);
            let role = self.states[config.0.index()].role;
            let id = builder.add_state_full(name, None, role, Vec::new());
            index.insert(config.clone(), id);
            queue.push_back(config);
            id
        };

        let start_id = add_config(&mut builder, &mut queue, &mut index, start_config);
        while let Some((leaf, memory)) = queue.pop_front() {
            if self.states[leaf.index()].role == StateRole::Finish {
                continue; // absorbing: no outgoing flat transitions
            }
            let from = index[&(leaf, memory.clone())];
            for m in 0..self.messages.len() as u16 {
                let mut mem = memory.clone();
                let mut actions = Vec::new();
                if let Some(new_leaf) = self.step_config(leaf, &mut mem, m, &mut actions) {
                    let to = add_config(&mut builder, &mut queue, &mut index, (new_leaf, mem));
                    builder.add_transition(from, &self.messages[m as usize], to, actions);
                }
            }
        }
        builder.build(start_id)
    }

    /// Creates a direct-interpretation instance positioned at the
    /// initial configuration.
    pub fn instance(&self) -> HsmInstance<'_> {
        HsmInstance::new(self)
    }
}

/// Incremental builder for hierarchical machines.
///
/// States are declared top-down ([`HsmBuilder::add_state`] for top-level
/// states, [`HsmBuilder::add_child`] to nest); the first child added to
/// a state becomes its initial child (overridable with
/// [`HsmBuilder::set_initial`]). Like
/// [`StateMachineBuilder`], the `add_*`
/// methods panic on invariant violations and have `try_*` twins
/// returning [`HsmError`] for generated or untrusted input;
/// [`HsmBuilder::build`] validates the tree invariants the flattening
/// compiler relies on.
#[derive(Debug)]
pub struct HsmBuilder {
    name: String,
    messages: Vec<String>,
    states: Vec<HsmState>,
}

impl HsmBuilder {
    /// Starts a builder for a machine with the given message alphabet.
    ///
    /// # Panics
    ///
    /// Panics if `messages` is empty or contains duplicates.
    pub fn new<I, S>(name: impl Into<String>, messages: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let messages: Vec<String> = messages.into_iter().map(Into::into).collect();
        assert!(
            !messages.is_empty(),
            "machine must declare at least one message"
        );
        for (i, m) in messages.iter().enumerate() {
            assert!(
                !messages[..i].contains(m),
                "duplicate message `{m}` in machine alphabet"
            );
        }
        HsmBuilder {
            name: name.into(),
            messages,
            states: Vec::new(),
        }
    }

    fn push_state(&mut self, name: String, parent: Option<HsmStateId>) -> HsmStateId {
        let id = HsmStateId(self.states.len() as u32);
        self.states.push(HsmState::new(name, parent));
        if let Some(p) = parent {
            let parent_state = &mut self.states[p.index()];
            parent_state.children.push(id);
            if parent_state.initial.is_none() {
                parent_state.initial = Some(id);
            }
        }
        id
    }

    fn check_id(&self, id: HsmStateId) -> Result<(), HsmError> {
        if id.index() >= self.states.len() {
            return Err(HsmError::StateOutOfRange {
                index: id.index(),
                states: self.states.len(),
            });
        }
        Ok(())
    }

    /// Adds a top-level state; returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> HsmStateId {
        self.push_state(name.into(), None)
    }

    /// Adds a child of `parent` (turning `parent` into a composite);
    /// the first child added becomes the parent's initial child.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    pub fn add_child(&mut self, parent: HsmStateId, name: impl Into<String>) -> HsmStateId {
        self.check_id(parent).unwrap_or_else(|e| panic!("{e}"));
        self.push_state(name.into(), Some(parent))
    }

    /// Overrides the initial child of a composite (validated against its
    /// children at [`HsmBuilder::build`] time).
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn set_initial(&mut self, composite: HsmStateId, child: HsmStateId) {
        self.check_id(composite).unwrap_or_else(|e| panic!("{e}"));
        self.check_id(child).unwrap_or_else(|e| panic!("{e}"));
        self.states[composite.index()].initial = Some(child);
    }

    /// Enables shallow history on a composite: when it is exited, the
    /// active direct child is remembered, and transitions targeting its
    /// history pseudostate re-enter that child.
    ///
    /// # Panics
    ///
    /// Panics if `composite` is out of range.
    pub fn enable_history(&mut self, composite: HsmStateId) {
        self.check_id(composite).unwrap_or_else(|e| panic!("{e}"));
        self.states[composite.index()].history = true;
    }

    /// Appends entry actions to a state (performed whenever the state is
    /// entered, outermost-first along an entry chain).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn on_entry(&mut self, state: HsmStateId, actions: Vec<Action>) {
        self.check_id(state).unwrap_or_else(|e| panic!("{e}"));
        self.states[state.index()].entry.extend(actions);
    }

    /// Appends exit actions to a state (performed whenever the state is
    /// exited, innermost-first along an exit chain).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn on_exit(&mut self, state: HsmStateId, actions: Vec<Action>) {
        self.check_id(state).unwrap_or_else(|e| panic!("{e}"));
        self.states[state.index()].exit.extend(actions);
    }

    /// Marks a leaf as final: its configurations lower to absorbing
    /// [`StateRole::Finish`] flat states.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn mark_final(&mut self, state: HsmStateId) {
        self.check_id(state).unwrap_or_else(|e| panic!("{e}"));
        self.states[state.index()].role = StateRole::Finish;
    }

    fn try_add(
        &mut self,
        from: HsmStateId,
        message: &str,
        target: HsmTarget,
        actions: Vec<Action>,
    ) -> Result<(), HsmError> {
        let mid = self
            .messages
            .iter()
            .position(|m| m == message)
            .ok_or_else(|| HsmError::UnknownMessage(message.to_string()))? as u16;
        self.check_id(from)?;
        match target {
            HsmTarget::State(t) | HsmTarget::History(t) => self.check_id(t)?,
            HsmTarget::Internal => {}
        }
        let state = &mut self.states[from.index()];
        if state.transitions.contains_key(&mid) {
            return Err(HsmError::DuplicateTransition {
                state: state.name.clone(),
                message: message.to_string(),
            });
        }
        state
            .transitions
            .insert(mid, HsmTransition { target, actions });
        Ok(())
    }

    /// Adds an external transition from `from` on `message` to `to`
    /// (inherited by every descendant of `from` unless overridden).
    ///
    /// # Panics
    ///
    /// Panics if the message is unknown, an id is invalid, or `(from,
    /// message)` already has a transition.
    pub fn add_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        to: HsmStateId,
        actions: Vec<Action>,
    ) {
        self.try_add_transition(from, message, to, actions)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`HsmBuilder::add_transition`].
    ///
    /// # Errors
    ///
    /// [`HsmError::UnknownMessage`], [`HsmError::StateOutOfRange`] or
    /// [`HsmError::DuplicateTransition`].
    pub fn try_add_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        to: HsmStateId,
        actions: Vec<Action>,
    ) -> Result<(), HsmError> {
        self.try_add(from, message, HsmTarget::State(to), actions)
    }

    /// Adds an external transition into the shallow-history pseudostate
    /// of `composite` (which must have history enabled by
    /// [`HsmBuilder::build`] time).
    ///
    /// # Panics
    ///
    /// As for [`HsmBuilder::add_transition`].
    pub fn add_history_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        composite: HsmStateId,
        actions: Vec<Action>,
    ) {
        self.try_add_history_transition(from, message, composite, actions)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`HsmBuilder::add_history_transition`].
    ///
    /// # Errors
    ///
    /// As for [`HsmBuilder::try_add_transition`].
    pub fn try_add_history_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        composite: HsmStateId,
        actions: Vec<Action>,
    ) -> Result<(), HsmError> {
        self.try_add(from, message, HsmTarget::History(composite), actions)
    }

    /// Adds an internal transition on `from`: `actions` fire but the
    /// configuration is unchanged and no entry/exit actions run.
    ///
    /// # Panics
    ///
    /// As for [`HsmBuilder::add_transition`].
    pub fn add_internal_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        actions: Vec<Action>,
    ) {
        self.try_add_internal_transition(from, message, actions)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`HsmBuilder::add_internal_transition`].
    ///
    /// # Errors
    ///
    /// As for [`HsmBuilder::try_add_transition`].
    pub fn try_add_internal_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        actions: Vec<Action>,
    ) -> Result<(), HsmError> {
        self.try_add(from, message, HsmTarget::Internal, actions)
    }

    /// Finalises the machine, validating the tree invariants.
    ///
    /// # Panics
    ///
    /// Panics on any [`HsmError`] reported by [`HsmBuilder::try_build`].
    pub fn build(self, start: HsmStateId) -> HierarchicalMachine {
        self.try_build(start).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Finalises the machine, reporting invariant violations as a
    /// [`HsmError`] — for callers constructing machines from generated
    /// or untrusted input.
    ///
    /// # Errors
    ///
    /// [`HsmError::StateOutOfRange`] if `start` is invalid;
    /// [`HsmError::InvalidStateName`] /
    /// [`HsmError::DuplicateSiblingName`] if a name is empty, contains a
    /// reserved separator, or collides with a sibling;
    /// [`HsmError::InitialNotChild`] if a composite's initial is not its
    /// own child; [`HsmError::HistoryOnLeaf`] /
    /// [`HsmError::FinalNotLeaf`] /
    /// [`HsmError::InvalidHistoryTarget`] for misplaced history or
    /// final markers.
    pub fn try_build(self, start: HsmStateId) -> Result<HierarchicalMachine, HsmError> {
        self.check_id(start)?;

        // Names: non-empty, free of reserved separators, unique among
        // siblings (so configuration names are unambiguous).
        let mut sibling_names: HashMap<(Option<HsmStateId>, &str), ()> = HashMap::new();
        for s in &self.states {
            if s.name.is_empty() || s.name.contains(['.', '~', '=']) {
                return Err(HsmError::InvalidStateName(s.name.clone()));
            }
            if sibling_names
                .insert((s.parent, s.name.as_str()), ())
                .is_some()
            {
                return Err(HsmError::DuplicateSiblingName(s.name.clone()));
            }
        }

        for (i, s) in self.states.iter().enumerate() {
            let id = HsmStateId(i as u32);
            if let Some(init) = s.initial {
                if self.states[init.index()].parent != Some(id) {
                    return Err(HsmError::InitialNotChild {
                        composite: s.name.clone(),
                        initial: self.states[init.index()].name.clone(),
                    });
                }
            }
            if s.history && s.is_leaf() {
                return Err(HsmError::HistoryOnLeaf(s.name.clone()));
            }
            if s.role == StateRole::Finish && !s.is_leaf() {
                return Err(HsmError::FinalNotLeaf(s.name.clone()));
            }
            for t in s.transitions.values() {
                if let HsmTarget::History(c) = t.target {
                    let target = &self.states[c.index()];
                    if !target.history || target.is_leaf() {
                        return Err(HsmError::InvalidHistoryTarget(target.name.clone()));
                    }
                }
            }
        }

        let message_lookup = self
            .messages
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), i as u16))
            .collect();
        let history_states: Vec<HsmStateId> = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.history)
            .map(|(i, _)| HsmStateId(i as u32))
            .collect();
        let mut history_slot = vec![None; self.states.len()];
        for (slot, &c) in history_states.iter().enumerate() {
            history_slot[c.index()] = Some(slot);
        }
        let mut start_leaf = start;
        while let Some(init) = self.states[start_leaf.index()].initial {
            start_leaf = init;
        }
        Ok(HierarchicalMachine {
            name: self.name,
            messages: self.messages,
            message_lookup,
            states: self.states,
            start,
            start_leaf,
            history_states,
            history_slot,
        })
    }
}

/// One executing instance of a [`HierarchicalMachine`]: the direct
/// interpreter over the statechart, and the semantic reference the
/// flattened machines are property-checked against.
///
/// Each delivery resolves the innermost handler by walking the active
/// leaf's ancestor chain and synthesizes the exit/transition/entry
/// action sequence into an internal scratch buffer (reused across
/// deliveries; [`ProtocolEngine::deliver_ref`] borrows from it). Use it
/// for freshly authored statecharts and debugging; flatten and compile
/// for serving traffic.
#[derive(Debug, Clone)]
pub struct HsmInstance<'h> {
    machine: &'h HierarchicalMachine,
    leaf: HsmStateId,
    memory: Vec<HsmStateId>,
    steps: u64,
    scratch: Vec<Action>,
}

impl<'h> HsmInstance<'h> {
    /// Creates an instance positioned at the initial configuration.
    pub fn new(machine: &'h HierarchicalMachine) -> Self {
        HsmInstance {
            machine,
            leaf: machine.start_leaf(),
            memory: machine.initial_memory(),
            steps: 0,
            scratch: Vec::new(),
        }
    }

    /// The machine this instance executes.
    pub fn machine(&self) -> &'h HierarchicalMachine {
        self.machine
    }

    /// The active leaf state.
    pub fn leaf(&self) -> HsmStateId {
        self.leaf
    }

    /// The shallow-history memory, one remembered direct child per
    /// history composite (in [`HierarchicalMachine`] id order).
    pub fn memory(&self) -> &[HsmStateId] {
        &self.memory
    }

    /// Number of transitions taken so far (internal transitions count).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// `true` if `state` is the active leaf or one of its ancestors —
    /// the statechart notion of "being in" a composite state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn is_in(&self, state: HsmStateId) -> bool {
        let mut cur = Some(self.leaf);
        while let Some(s) = cur {
            if s == state {
                return true;
            }
            cur = self.machine.state(s).parent();
        }
        false
    }

    /// Delivers a message by id; returns the synthesized action sequence
    /// (borrowed from an internal scratch buffer valid until the next
    /// delivery).
    pub fn deliver_id(&mut self, message: MessageId) -> &[Action] {
        self.scratch.clear();
        if let Some(new_leaf) =
            self.machine
                .step_config(self.leaf, &mut self.memory, message.0, &mut self.scratch)
        {
            self.leaf = new_leaf;
            self.steps += 1;
        }
        &self.scratch
    }
}

impl ProtocolEngine for HsmInstance<'_> {
    fn deliver_ref(&mut self, message: &str) -> Result<&[Action], InterpError> {
        let id = self
            .machine
            .message_id(message)
            .ok_or_else(|| InterpError::UnknownMessage(message.to_string()))?;
        Ok(self.deliver_id(id))
    }

    fn is_finished(&self) -> bool {
        self.machine.state(self.leaf).role() == StateRole::Finish
    }

    fn state_name(&self) -> Cow<'_, str> {
        Cow::Owned(self.machine.config_name(self.leaf, &self.memory))
    }

    fn reset(&mut self) {
        self.leaf = self.machine.start_leaf();
        self.memory = self.machine.initial_memory();
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledMachine;
    use crate::interp::FsmInstance;

    /// Connection lifecycle: Idle, Up{A, B} with history, Down.
    fn connection() -> HierarchicalMachine {
        let mut b = HsmBuilder::new("conn", ["open", "work", "drop", "resume", "kill"]);
        let idle = b.add_state("Idle");
        let up = b.add_state("Up");
        let a = b.add_child(up, "A");
        let bb = b.add_child(up, "B");
        let down = b.add_state("Down");
        b.mark_final(down);
        b.enable_history(up);
        b.on_entry(up, vec![Action::send("up_in")]);
        b.on_exit(up, vec![Action::send("up_out")]);
        b.on_entry(a, vec![Action::send("a_in")]);
        b.on_exit(a, vec![Action::send("a_out")]);
        b.on_entry(bb, vec![Action::send("b_in")]);
        b.add_transition(idle, "open", up, vec![Action::send("syn")]);
        b.add_transition(a, "work", bb, vec![]);
        b.add_transition(up, "drop", idle, vec![Action::send("fin")]);
        b.add_history_transition(idle, "resume", up, vec![]);
        b.add_transition(up, "kill", down, vec![]);
        b.build(idle)
    }

    #[test]
    fn entry_exit_and_inheritance() {
        let m = connection();
        let mut i = m.instance();
        assert_eq!(i.state_name(), "Idle");
        // open: enter Up then A, transition action first after exits.
        assert_eq!(
            i.deliver_ref("open").unwrap(),
            [
                Action::send("syn"),
                Action::send("up_in"),
                Action::send("a_in")
            ]
        );
        assert_eq!(i.state_name(), "Up.A");
        let up = m
            .states_with_ids()
            .find(|(_, s)| s.name() == "Up")
            .unwrap()
            .0;
        assert!(i.is_in(up));
        assert!(i.is_in(i.leaf()));
        let down = m
            .states_with_ids()
            .find(|(_, s)| s.name() == "Down")
            .unwrap()
            .0;
        assert!(!i.is_in(down));
        // drop is declared on Up, inherited by A: exits A then Up.
        assert_eq!(
            i.deliver_ref("drop").unwrap(),
            [
                Action::send("a_out"),
                Action::send("up_out"),
                Action::send("fin")
            ]
        );
        assert_eq!(i.state_name(), "Idle");
        assert_eq!(i.steps(), 2);
    }

    #[test]
    fn shallow_history_restores_last_child() {
        let m = connection();
        let mut i = m.instance();
        i.deliver_ref("open").unwrap();
        i.deliver_ref("work").unwrap(); // now Up.B
        assert_eq!(i.state_name(), "Up.B");
        i.deliver_ref("drop").unwrap(); // memory: Up -> B
        assert_eq!(i.state_name(), "Idle~Up=B");
        assert_eq!(
            i.deliver_ref("resume").unwrap(),
            [Action::send("up_in"), Action::send("b_in")]
        );
        assert_eq!(i.state_name(), "Up.B~Up=B");
    }

    #[test]
    fn cold_history_enters_initial_child() {
        let m = connection();
        let mut i = m.instance();
        assert_eq!(
            i.deliver_ref("resume").unwrap(),
            [Action::send("up_in"), Action::send("a_in")]
        );
        assert_eq!(i.state_name(), "Up.A");
    }

    #[test]
    fn final_leaf_absorbs() {
        let m = connection();
        let mut i = m.instance();
        i.deliver_ref("open").unwrap();
        i.deliver_ref("kill").unwrap();
        assert!(i.is_finished());
        assert_eq!(i.state_name(), "Down");
        assert!(i.deliver_ref("open").unwrap().is_empty());
        assert_eq!(i.steps(), 2);
    }

    #[test]
    fn inapplicable_and_unknown_messages() {
        let m = connection();
        let mut i = m.instance();
        assert!(i.deliver_ref("work").unwrap().is_empty()); // not applicable in Idle
        assert_eq!(i.steps(), 0);
        assert_eq!(
            i.deliver_ref("zap").map(<[Action]>::to_vec),
            Err(InterpError::UnknownMessage("zap".into()))
        );
    }

    #[test]
    fn internal_transition_keeps_configuration() {
        let mut b = HsmBuilder::new("m", ["ping", "poke"]);
        let top = b.add_state("Top");
        let inner = b.add_child(top, "Inner");
        b.on_entry(inner, vec![Action::send("in")]);
        b.on_exit(inner, vec![Action::send("out")]);
        b.add_internal_transition(top, "ping", vec![Action::send("pong")]);
        let m = b.build(top);
        let mut i = m.instance();
        assert_eq!(i.deliver_ref("ping").unwrap(), [Action::send("pong")]);
        assert_eq!(i.state_name(), "Top.Inner"); // no exit/entry ran
        assert_eq!(i.steps(), 1);
        // Flat form is a self-loop with just the transition actions.
        let flat = m.flatten();
        let mut f = FsmInstance::new(&flat);
        assert_eq!(f.deliver_ref("ping").unwrap(), [Action::send("pong")]);
        assert_eq!(f.state_name(), "Top.Inner");
        assert_eq!(f.steps(), 1);
    }

    #[test]
    fn external_self_transition_exits_and_reenters() {
        let mut b = HsmBuilder::new("m", ["again"]);
        let s = b.add_state("S");
        b.on_entry(s, vec![Action::send("in")]);
        b.on_exit(s, vec![Action::send("out")]);
        b.add_transition(s, "again", s, vec![Action::send("mid")]);
        let m = b.build(s);
        let mut i = m.instance();
        assert_eq!(
            i.deliver_ref("again").unwrap(),
            [Action::send("out"), Action::send("mid"), Action::send("in")]
        );
    }

    #[test]
    fn flatten_matches_reference_on_the_connection_machine() {
        let m = connection();
        let flat = m.flatten();
        let compiled = CompiledMachine::compile(&flat);
        let mut reference = m.instance();
        let mut interp = FsmInstance::new(&flat);
        let mut fast = compiled.instance();
        let trace = [
            "resume", "work", "drop", "open", "work", "drop", "resume", "work", "kill", "open",
        ];
        for msg in trace {
            let want = reference.deliver_ref(msg).unwrap().to_vec();
            assert_eq!(
                interp.deliver_ref(msg).unwrap(),
                want.as_slice(),
                "at {msg}"
            );
            assert_eq!(fast.deliver_ref(msg).unwrap(), want.as_slice(), "at {msg}");
            assert_eq!(reference.state_name(), interp.state_name(), "at {msg}");
            assert_eq!(interp.state_name(), fast.state_name(), "at {msg}");
            assert_eq!(reference.is_finished(), fast.is_finished(), "at {msg}");
        }
        assert_eq!(reference.steps(), interp.steps());
    }

    #[test]
    fn flatten_prunes_unreachable_memories() {
        let m = connection();
        let flat = m.flatten();
        // Configurations: Idle×{A,B}, Up.A×{A,B}, Up.B×{A,B}, Down×{A,B};
        // (Up.A, mem=B) is reachable via resume-then-work from mem=B, and
        // Down merges per-memory. All 8 are reachable here.
        assert_eq!(flat.state_count(), 8);
        assert!(flat.state_by_name("Idle").is_some());
        assert!(flat.state_by_name("Idle~Up=B").is_some());
        assert!(flat.state_by_name("Up.B~Up=B").is_some());
    }

    #[test]
    fn start_entry_actions_are_reported_not_emitted() {
        let m = connection();
        assert!(m.start_entry_actions().is_empty()); // Idle has no entry actions
        let mut b = HsmBuilder::new("m", ["x"]);
        let top = b.add_state("Top");
        let inner = b.add_child(top, "Inner");
        b.on_entry(top, vec![Action::send("t")]);
        b.on_entry(inner, vec![Action::send("i")]);
        let m = b.build(top);
        assert_eq!(
            m.start_entry_actions(),
            [Action::send("t"), Action::send("i")]
        );
        assert_eq!(m.start_leaf(), inner);
    }

    #[test]
    fn builder_validation() {
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        assert_eq!(
            b.try_add_transition(s, "zap", s, vec![]),
            Err(HsmError::UnknownMessage("zap".into()))
        );
        assert_eq!(
            b.try_add_transition(s, "x", HsmStateId(9), vec![]),
            Err(HsmError::StateOutOfRange {
                index: 9,
                states: 1
            })
        );
        b.add_transition(s, "x", s, vec![]);
        assert_eq!(
            b.try_add_transition(s, "x", s, vec![]),
            Err(HsmError::DuplicateTransition {
                state: "S".into(),
                message: "x".into()
            })
        );
        // History transition to a plain leaf is rejected at build time.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        let t = b.add_state("T");
        b.add_history_transition(s, "x", t, vec![]);
        assert_eq!(
            b.try_build(s),
            Err(HsmError::InvalidHistoryTarget("T".into()))
        );
        // History on a leaf.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        b.enable_history(s);
        assert_eq!(b.try_build(s), Err(HsmError::HistoryOnLeaf("S".into())));
        // Final composite.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        b.add_child(s, "C");
        b.mark_final(s);
        assert_eq!(b.try_build(s), Err(HsmError::FinalNotLeaf("S".into())));
        // Initial not a child.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        b.add_child(s, "C");
        let other = b.add_state("Other");
        b.set_initial(s, other);
        assert_eq!(
            b.try_build(s),
            Err(HsmError::InitialNotChild {
                composite: "S".into(),
                initial: "Other".into()
            })
        );
        // Reserved separator in a name.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("A.B");
        assert_eq!(
            b.try_build(s),
            Err(HsmError::InvalidStateName("A.B".into()))
        );
        // Duplicate sibling name.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        b.add_child(s, "C");
        b.add_child(s, "C");
        assert_eq!(
            b.try_build(s),
            Err(HsmError::DuplicateSiblingName("C".into()))
        );
    }

    #[test]
    fn accessors_expose_the_tree() {
        let m = connection();
        assert_eq!(m.name(), "conn");
        assert_eq!(m.state_count(), 5);
        assert_eq!(m.composite_count(), 1);
        assert_eq!(m.history_count(), 1);
        assert_eq!(m.transition_count(), 5);
        let up = m
            .states_with_ids()
            .find(|(_, s)| s.name() == "Up")
            .unwrap()
            .0;
        let state = m.state(up);
        assert!(!state.is_leaf());
        assert!(state.has_history());
        assert_eq!(state.children().len(), 2);
        assert_eq!(state.initial(), Some(state.children()[0]));
        assert_eq!(m.path_name(state.children()[1]), "Up.B");
        assert_eq!(state.entry_actions(), [Action::send("up_in")]);
        assert_eq!(state.exit_actions(), [Action::send("up_out")]);
        assert_eq!(m.top_level().count(), 3);
        let (mid, t) = state.transitions().next().unwrap();
        assert_eq!(m.messages()[mid.index()], "drop");
        assert!(matches!(t.target(), HsmTarget::State(_)));
        assert_eq!(t.actions(), [Action::send("fin")]);
        assert_eq!(m.message_id("open").map(MessageId::index), Some(0));
    }

    #[test]
    fn cousin_history_composites_with_equal_names_stay_distinct() {
        // Two composites both named `W` (legal: not siblings), both with
        // history. Decorations key on the full path, so configurations
        // differing only in which `W`'s memory moved get distinct names
        // — and the flat machine has no duplicate state names.
        let mut b = HsmBuilder::new("cousins", ["go", "swap", "park", "back"]);
        let a = b.add_state("A");
        let aw = b.add_child(a, "W");
        let ap = b.add_child(aw, "p");
        let aq = b.add_child(aw, "q");
        let bb = b.add_state("B");
        let bw = b.add_child(bb, "W");
        let bp = b.add_child(bw, "p");
        let bq = b.add_child(bw, "q");
        b.enable_history(aw);
        b.enable_history(bw);
        let park = b.add_state("Park");
        b.add_transition(ap, "swap", aq, vec![]);
        b.add_transition(bp, "swap", bq, vec![]);
        b.add_transition(a, "go", bp, vec![]);
        b.add_transition(bb, "go", ap, vec![]);
        b.add_transition(a, "park", park, vec![]);
        b.add_transition(bb, "park", park, vec![]);
        b.add_history_transition(park, "back", aw, vec![]);
        let m = b.build(a);

        let mut i = m.instance();
        i.deliver_ref("swap").unwrap(); // A.W.q
        i.deliver_ref("park").unwrap(); // memory: A.W -> q
        assert_eq!(i.state_name(), "Park~A.W=q");
        i.reset();
        i.deliver_ref("go").unwrap(); // B.W.p (A.W memory stays p)
        i.deliver_ref("swap").unwrap(); // B.W.q
        i.deliver_ref("park").unwrap(); // memory: B.W -> q
        assert_eq!(i.state_name(), "Park~B.W=q");

        let flat = m.flatten();
        let mut names: Vec<&str> = flat.states().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "flattened state names must be unique");
        assert!(flat.state_by_name("Park~A.W=q").is_some());
        assert!(flat.state_by_name("Park~B.W=q").is_some());
    }

    #[test]
    fn reset_restores_initial_configuration() {
        let m = connection();
        let mut i = m.instance();
        i.deliver_ref("open").unwrap();
        i.deliver_ref("work").unwrap();
        i.deliver_ref("drop").unwrap();
        assert_eq!(i.state_name(), "Idle~Up=B");
        i.reset();
        assert_eq!(i.state_name(), "Idle");
        assert_eq!(i.steps(), 0);
        assert_eq!(i.memory(), m.initial_memory());
    }
}
