//! Property-based tests: routing always agrees with ground-truth
//! ownership, under arbitrary membership and bounded failures.

use proptest::prelude::*;

use asa_chord::{Key, Overlay};

fn node_ids() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::btree_set(any::<u64>(), 1..80).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn routing_matches_ownership(ids in node_ids(), keys in prop::collection::vec(any::<u64>(), 1..40)) {
        let overlay = Overlay::with_nodes(ids.iter().copied().map(Key), 4);
        let origin = overlay.live_nodes()[0];
        for k in keys {
            let key = Key(k);
            let route = overlay.route(origin, key).expect("routes");
            prop_assert_eq!(route.owner, overlay.owner_of(key).expect("owner"));
        }
    }

    #[test]
    fn ownership_is_clockwise_successor(ids in node_ids(), k in any::<u64>()) {
        let overlay = Overlay::with_nodes(ids.iter().copied().map(Key), 4);
        let owner = overlay.owner_of(Key(k)).expect("owner");
        // The owner is a member, and no live node lies strictly between
        // the key and its owner (i.e. the owner is the closest clockwise
        // successor of the key).
        prop_assert!(ids.contains(&owner.0));
        for &id in &ids {
            let node = Key(id);
            prop_assert!(!node.in_open_open(Key(k), owner), "node {node} between key and owner");
        }
    }

    #[test]
    fn survives_bounded_failures(ids in node_ids(), kill in prop::collection::vec(any::<prop::sample::Index>(), 0..3), k in any::<u64>()) {
        prop_assume!(ids.len() > 4);
        let mut overlay = Overlay::with_nodes(ids.iter().copied().map(Key), 4);
        let nodes = overlay.live_nodes();
        // Fail up to 3 distinct non-origin nodes (successor lists hold 4).
        let mut killed = Vec::new();
        for idx in kill {
            let victim = nodes[1 + idx.index(nodes.len() - 1)];
            if !killed.contains(&victim) && victim != nodes[0] {
                let _ = overlay.fail(victim);
                killed.push(victim);
            }
        }
        let route = overlay.route(nodes[0], Key(k)).expect("routes despite failures");
        prop_assert_eq!(route.owner, overlay.owner_of(Key(k)).expect("owner"));
    }

    #[test]
    fn hops_bounded_by_ring_size(ids in node_ids(), k in any::<u64>()) {
        let overlay = Overlay::with_nodes(ids.iter().copied().map(Key), 4);
        let origin = overlay.live_nodes()[0];
        let route = overlay.route(origin, Key(k)).expect("routes");
        prop_assert!(route.hops <= overlay.len());
    }
}
