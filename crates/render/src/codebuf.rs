//! Code-generation buffer utilities (paper Fig 18).
//!
//! Generative code is hard to read when it controls the generated code's
//! indentation through explicit whitespace in string literals (paper
//! Fig 17). This module provides the paper's small set of utility methods
//! — `add`, `addLn`, `enterBlock`, `exitBlock` and indent control — which
//! "make a significant difference to legibility" (§4.1) of both the
//! generative and the generated code.

use std::fmt::Write as _;

/// An indentation-aware output buffer for generated source code.
///
/// # Examples
///
/// ```
/// use stategen_render::CodeBuffer;
///
/// let mut buf = CodeBuffer::new();
/// buf.add(["fn answer() -> u32"]);
/// buf.enter_block();
/// buf.add_ln(["42"]);
/// buf.exit_block();
/// assert_eq!(buf.into_string(), "fn answer() -> u32 {\n    42\n}\n");
/// ```
#[derive(Debug, Clone, Default)]
pub struct CodeBuffer {
    out: String,
    indent: usize,
    /// Width of one indent level in spaces.
    indent_width: usize,
    at_line_start: bool,
    /// Block delimiters; `{`/`}` for Rust and Java.
    open: &'static str,
    close: &'static str,
}

impl CodeBuffer {
    /// Creates a buffer with 4-space indentation and `{`/`}` blocks.
    pub fn new() -> Self {
        CodeBuffer {
            out: String::new(),
            indent: 0,
            indent_width: 4,
            at_line_start: true,
            open: "{",
            close: "}",
        }
    }

    /// Creates a buffer with a custom indent width.
    pub fn with_indent_width(width: usize) -> Self {
        CodeBuffer {
            indent_width: width,
            ..CodeBuffer::new()
        }
    }

    /// Adds the items to the output buffer (paper: `add`).
    pub fn add<I, S>(&mut self, items: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for item in items {
            self.write_indent_if_needed();
            self.out.push_str(item.as_ref());
        }
    }

    /// Adds the items and a newline (paper: `addLn`).
    pub fn add_ln<I, S>(&mut self, items: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.add(items);
        self.newline();
    }

    /// Ends the current line.
    pub fn newline(&mut self) {
        self.out.push('\n');
        self.at_line_start = true;
    }

    /// Adds a blank line.
    pub fn blank(&mut self) {
        // Avoid trailing indentation on blank lines.
        self.out.push('\n');
        self.at_line_start = true;
    }

    /// Opens a new block and increases the indent level (paper:
    /// `enterBlock`). The opening delimiter is appended to the current
    /// line (`... {`) if one is in progress, else on its own line.
    pub fn enter_block(&mut self) {
        if self.at_line_start {
            self.write_indent_if_needed();
            self.out.push_str(self.open);
        } else {
            let _ = write!(self.out, " {}", self.open);
        }
        self.newline();
        self.increase_indent();
    }

    /// Exits the current block and decreases the indent level (paper:
    /// `exitBlock`).
    pub fn exit_block(&mut self) {
        self.decrease_indent();
        self.write_indent_if_needed();
        self.out.push_str(self.close);
        self.newline();
    }

    /// Exits the current block, appending `suffix` after the closing
    /// delimiter (e.g. `,` inside match arms).
    pub fn exit_block_with(&mut self, suffix: &str) {
        self.decrease_indent();
        self.write_indent_if_needed();
        self.out.push_str(self.close);
        self.out.push_str(suffix);
        self.newline();
    }

    /// Increases the indent level (paper: `increaseIndent`).
    pub fn increase_indent(&mut self) {
        self.indent += 1;
    }

    /// Decreases the indent level (paper: `decreaseIndent`).
    ///
    /// # Panics
    ///
    /// Panics if the indent level is already zero (an unbalanced
    /// `exit_block` in the generative code).
    pub fn decrease_indent(&mut self) {
        assert!(self.indent > 0, "unbalanced exit_block / decrease_indent");
        self.indent -= 1;
    }

    /// Resets indentation to the top level (paper: `resetIndent`).
    pub fn reset_indent(&mut self) {
        self.indent = 0;
    }

    /// Current indent level (in levels, not spaces).
    pub fn indent_level(&self) -> usize {
        self.indent
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Extracts the generated text.
    pub fn into_string(self) -> String {
        self.out
    }

    /// Borrows the generated text so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    fn write_indent_if_needed(&mut self) {
        if self.at_line_start {
            for _ in 0..self.indent * self.indent_width {
                self.out.push(' ');
            }
            self.at_line_start = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_blocks_indent() {
        let mut b = CodeBuffer::new();
        b.add(["fn f()"]);
        b.enter_block();
        b.add(["if x"]);
        b.enter_block();
        b.add_ln(["y();"]);
        b.exit_block();
        b.exit_block();
        assert_eq!(
            b.into_string(),
            "fn f() {\n    if x {\n        y();\n    }\n}\n"
        );
    }

    #[test]
    fn add_concatenates_items() {
        let mut b = CodeBuffer::new();
        b.add(["a", "b", "c"]);
        b.newline();
        assert_eq!(b.into_string(), "abc\n");
    }

    #[test]
    fn blank_lines_carry_no_indent() {
        let mut b = CodeBuffer::new();
        b.enter_block();
        b.blank();
        b.add_ln(["x"]);
        b.exit_block();
        assert_eq!(b.into_string(), "{\n\n    x\n}\n");
    }

    #[test]
    fn custom_indent_width() {
        let mut b = CodeBuffer::with_indent_width(2);
        b.enter_block();
        b.add_ln(["x"]);
        b.exit_block();
        assert_eq!(b.into_string(), "{\n  x\n}\n");
    }

    #[test]
    fn exit_block_with_suffix() {
        let mut b = CodeBuffer::new();
        b.add(["match x"]);
        b.enter_block();
        b.add(["A =>"]);
        b.enter_block();
        b.add_ln(["1"]);
        b.exit_block_with(",");
        b.exit_block();
        assert_eq!(
            b.into_string(),
            "match x {\n    A => {\n        1\n    },\n}\n"
        );
    }

    #[test]
    fn reset_indent() {
        let mut b = CodeBuffer::new();
        b.enter_block();
        b.enter_block();
        b.reset_indent();
        b.add_ln(["flush left"]);
        assert_eq!(b.as_str(), "{\n    {\nflush left\n");
        assert_eq!(b.indent_level(), 0);
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_exit_panics() {
        let mut b = CodeBuffer::new();
        b.exit_block();
    }

    #[test]
    fn enter_block_on_fresh_line() {
        let mut b = CodeBuffer::new();
        b.enter_block();
        b.add_ln(["x"]);
        b.exit_block();
        assert_eq!(b.into_string(), "{\n    x\n}\n");
    }
}
