//! Per-run analyzer configuration: lint level overrides and the knobs
//! of the abstract-interpretation and witness-search passes.

use stategen_core::{Level, Lint};

/// Configuration for one [`analyze`](crate::analyze) run.
///
/// Levels follow the compiler-lint convention: every [`Lint`] has a
/// [default level](Lint::default_level), and the configuration can
/// override it per lint — [`deny`](AnalysisConfig::deny) to make a
/// finding reject the machine, [`warn`](AnalysisConfig::warn) to report
/// without gating, [`allow`](AnalysisConfig::allow) to record it for
/// the report only.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    overrides: Vec<(Lint, Level)>,
    /// Upper bound (inclusive, from 0) of the per-variable range the
    /// overlap witness search enumerates when parameters are bound.
    pub var_bound: i64,
    /// Number of joins a state absorbs before the fixpoint switches to
    /// widening (higher = more precision on short chains, slower
    /// convergence on loops).
    pub widen_after: usize,
}

/// Hard cap on assignments the overlap witness search will try per
/// transition pair, whatever `var_bound` and the variable count say.
pub(crate) const MAX_WITNESS_ENUM: u64 = 20_000;

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            overrides: Vec::new(),
            var_bound: 8,
            widen_after: 3,
        }
    }
}

impl AnalysisConfig {
    /// The default configuration (no overrides, `var_bound = 8`,
    /// `widen_after = 3`).
    pub fn new() -> Self {
        AnalysisConfig::default()
    }

    /// Overrides one lint's level (the last override for a lint wins).
    #[must_use]
    pub fn set(mut self, lint: Lint, level: Level) -> Self {
        self.overrides.push((lint, level));
        self
    }

    /// Shorthand for [`set`](AnalysisConfig::set)`(lint, Level::Allow)`.
    #[must_use]
    pub fn allow(self, lint: Lint) -> Self {
        self.set(lint, Level::Allow)
    }

    /// Shorthand for [`set`](AnalysisConfig::set)`(lint, Level::Warn)`.
    #[must_use]
    pub fn warn(self, lint: Lint) -> Self {
        self.set(lint, Level::Warn)
    }

    /// Shorthand for [`set`](AnalysisConfig::set)`(lint, Level::Deny)`.
    #[must_use]
    pub fn deny(self, lint: Lint) -> Self {
        self.set(lint, Level::Deny)
    }

    /// The effective level of a lint under this configuration.
    pub fn level(&self, lint: Lint) -> Level {
        self.overrides
            .iter()
            .rev()
            .find(|(l, _)| *l == lint)
            .map(|&(_, level)| level)
            .unwrap_or_else(|| lint.default_level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_overrides() {
        let c = AnalysisConfig::new();
        assert_eq!(c.level(Lint::UnreachableState), Level::Warn);
        assert_eq!(c.level(Lint::OverlappingGuards), Level::Deny);
        assert_eq!(c.level(Lint::EquivalentStates), Level::Allow);
        let c = c
            .deny(Lint::UnreachableState)
            .allow(Lint::OverlappingGuards)
            .warn(Lint::OverlappingGuards);
        assert_eq!(c.level(Lint::UnreachableState), Level::Deny);
        // Last override wins.
        assert_eq!(c.level(Lint::OverlappingGuards), Level::Warn);
        assert_eq!(c.var_bound, 8);
        assert_eq!(c.widen_after, 3);
    }
}
