//! Property suite: the broadcast EFSM's compiled guard/update bytecode
//! is observationally equivalent to the enum-tree interpreter — on
//! random message traces, for a range of participant counts, as a single
//! instance, as a batched session pool, and behind the
//! `stategen-runtime` facade (`Spec::efsm → Engine → Runtime`).

use std::sync::OnceLock;

use proptest::prelude::*;

use stategen_core::{CompiledEfsm, Efsm, EfsmSessionPool, ProtocolEngine};
use stategen_models::{
    broadcast_efsm, broadcast_efsm_instance, broadcast_efsm_params, BroadcastModel,
};
use stategen_runtime::{Engine, Spec};

const MESSAGES: [&str; 3] = ["initial", "echo", "ready"];

fn efsm() -> &'static Efsm {
    static EFSM: OnceLock<Efsm> = OnceLock::new();
    EFSM.get_or_init(broadcast_efsm)
}

fn compiled() -> &'static CompiledEfsm {
    static COMPILED: OnceLock<CompiledEfsm> = OnceLock::new();
    COMPILED.get_or_init(|| CompiledEfsm::compile(efsm()).expect("broadcast EFSM compiles"))
}

fn check(n: u32, messages: &[usize]) {
    let model = BroadcastModel::new(n);
    let mut interp = broadcast_efsm_instance(efsm(), &model);
    let mut single = compiled().instance(broadcast_efsm_params(&model));
    let mut pool = EfsmSessionPool::new(compiled(), broadcast_efsm_params(&model), 2);
    let engine =
        Engine::compile(Spec::efsm(broadcast_efsm(), broadcast_efsm_params(&model))).unwrap();
    let mut facade = engine.runtime();
    let session = facade.spawn();
    for (step, &mi) in messages.iter().enumerate() {
        let name = MESSAGES[mi % MESSAGES.len()];
        let a_interp = interp.deliver(name).unwrap();
        let a_single = single.deliver(name).unwrap();
        let mid = compiled().message_id(name).unwrap();
        let a_pool = pool.deliver(0, mid);
        assert_eq!(
            a_interp,
            facade.deliver(session, facade.message_id(name).unwrap()),
            "n={n} step {step} ({name}): facade session diverged"
        );
        assert_eq!(
            single.vars(),
            facade.vars(session),
            "n={n} step {step} ({name})"
        );
        assert_eq!(
            single.is_finished(),
            facade.is_finished(session),
            "n={n} step {step}"
        );
        assert_eq!(
            a_interp,
            a_single,
            "n={n} step {step} ({name}): interpreted {a_interp:?} vs compiled {a_single:?} \
             (interp state {}, compiled state {})",
            interp.state_name(),
            single.state_name_str()
        );
        assert_eq!(
            a_interp, a_pool,
            "n={n} step {step} ({name}): pool session diverged"
        );
        pool.deliver(1, mid);
        assert_eq!(interp.vars(), single.vars(), "n={n} step {step} ({name})");
        assert_eq!(single.vars(), pool.vars(0), "n={n} step {step} ({name})");
        assert_eq!(
            interp.state_name(),
            single.state_name(),
            "n={n} step {step} ({name})"
        );
        assert_eq!(
            single.current_state(),
            pool.state(0),
            "n={n} step {step} ({name})"
        );
        assert_eq!(
            interp.is_finished(),
            single.is_finished(),
            "n={n} step {step} ({name})"
        );
        assert_eq!(
            single.is_finished(),
            pool.is_finished(0),
            "n={n} step {step} ({name})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Seeded random traces for a spread of participant counts: one
    /// compiled EFSM serves the whole family.
    #[test]
    fn compiled_matches_interpreter(n in 4u32..=13, messages in prop::collection::vec(0usize..3, 0..120)) {
        check(n, &messages);
    }
}

/// Exhaustive equivalence over every message sequence of length ≤ 6 for
/// n = 4 (3^6 = 729 sequences), mirroring the interpreter-vs-FSM suite
/// in the crate's unit tests.
#[test]
fn exhaustive_short_traces_n4() {
    let mut sequence = Vec::new();
    fn recurse(sequence: &mut Vec<usize>, depth: usize) {
        check(4, sequence);
        if depth == 0 {
            return;
        }
        for m in 0..3 {
            sequence.push(m);
            recurse(sequence, depth - 1);
            sequence.pop();
        }
    }
    recurse(&mut sequence, 6);
}
