//! Endpoint timeout/retry schemes (paper §2.2).
//!
//! "Various schemes such as random or exponential back-off, or fixed or
//! random server ordering, could be used to attempt to reduce the
//! probability of repeated deadlocks."

use asa_simnet::{SimRng, SimTime};

/// How long an endpoint waits before retrying an update that has not
/// committed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryScheme {
    /// Retry after a fixed delay.
    Fixed {
        /// The delay in ticks.
        delay: SimTime,
    },
    /// Retry after a uniformly random delay in `[min, max]`.
    Random {
        /// Minimum delay.
        min: SimTime,
        /// Maximum delay (inclusive).
        max: SimTime,
    },
    /// Exponential back-off: `base * 2^attempt`, capped at `max`, with
    /// ±25% jitter. The jittered delay is always within `[base, max]`,
    /// and the worst-case delay of attempt `n` never exceeds the
    /// best-case delay of attempt `n + 1` while the raw (un-jittered)
    /// delay is still below the cap.
    Exponential {
        /// First retry delay.
        base: SimTime,
        /// Cap on the delay.
        max: SimTime,
    },
}

impl RetryScheme {
    /// Delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> SimTime {
        match *self {
            RetryScheme::Fixed { delay } => delay,
            RetryScheme::Random { min, max } => rng.range_inclusive(min, max.max(min)),
            RetryScheme::Exponential { base, max } => {
                let base = base.max(1);
                let cap = max.max(base);
                let raw = base
                    .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
                    .min(cap);
                // ±25% jitter around `raw`, clamped into [base, cap]. The
                // window is raw/4 wide on each side, so attempt n's worst
                // case (1.25 * raw) stays below attempt n+1's best case
                // (0.75 * 2 * raw = 1.5 * raw) until the cap flattens the
                // curve.
                let span = raw / 4;
                let jittered = (raw - span).saturating_add(rng.below(2 * span + 1));
                jittered.clamp(base, cap)
            }
        }
    }
}

/// In which order the endpoint contacts the peer set (paper §2.2:
/// "fixed or random server ordering").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerOrdering {
    /// All endpoints use the same (ring) order — requests race less
    /// because every peer tends to see the same update first.
    Fixed,
    /// Each request shuffles the peer set independently.
    Random,
}

impl ServerOrdering {
    /// Produces the contact order over `n` peers.
    pub fn order(&self, n: usize, rng: &mut SimRng) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        if *self == ServerOrdering::Random {
            rng.shuffle(&mut order);
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let mut rng = SimRng::new(1);
        let s = RetryScheme::Fixed { delay: 50 };
        assert_eq!(s.delay(0, &mut rng), 50);
        assert_eq!(s.delay(9, &mut rng), 50);
    }

    #[test]
    fn random_within_bounds() {
        let mut rng = SimRng::new(2);
        let s = RetryScheme::Random { min: 10, max: 20 };
        for attempt in 0..50 {
            let d = s.delay(attempt, &mut rng);
            assert!((10..=20).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn exponential_grows_then_caps() {
        let mut rng = SimRng::new(3);
        let s = RetryScheme::Exponential {
            base: 10,
            max: 1000,
        };
        let d0 = s.delay(0, &mut rng);
        assert!((10..=13).contains(&d0), "d0 = {d0}");
        let d6 = s.delay(6, &mut rng);
        assert!((480..=800).contains(&d6), "d6 = {d6}");
        let d20 = s.delay(20, &mut rng);
        assert!((750..=1000).contains(&d20), "capped: {d20}");
    }

    #[test]
    fn exponential_handles_huge_attempts() {
        let mut rng = SimRng::new(4);
        let s = RetryScheme::Exponential { base: 10, max: 500 };
        let d = s.delay(63, &mut rng);
        assert!(d <= 500);
        let d = s.delay(64, &mut rng); // shift overflow guarded
        assert!(d <= 500);
    }

    #[test]
    fn orderings() {
        let mut rng = SimRng::new(5);
        assert_eq!(ServerOrdering::Fixed.order(4, &mut rng), vec![0, 1, 2, 3]);
        let mut saw_shuffled = false;
        for _ in 0..10 {
            let o = ServerOrdering::Random.order(4, &mut rng);
            let mut sorted = o.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            if o != vec![0, 1, 2, 3] {
                saw_shuffled = true;
            }
        }
        assert!(saw_shuffled);
    }
}
