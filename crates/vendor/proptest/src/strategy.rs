//! The [`Strategy`] trait and the basic combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, a strategy here is just a generator: there
/// is no value tree and no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between several boxed strategies (see `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Creates a choice over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! requires at least one option"
        );
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                let offset = (rng.next_u64() as u128) % span;
                (*self.start() as u128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let offset = ((rng.next_u64() as u128) % (span as u128)) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let offset = ((rng.next_u64() as u128) % (span as u128)) as i128;
                (*self.start() as i128 + offset) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (1usize..=6).generate(&mut rng);
            assert!((1..=6).contains(&w));
        }
    }

    #[test]
    fn map_and_oneof() {
        let mut rng = TestRng::new(2);
        let s = crate::prop_oneof![Just(1u32), (5u32..8).prop_map(|v| v * 10)];
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (50..80).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(3);
        let (a, b, c) = (1u32..6, 1u32..6, 1u32..8).generate(&mut rng);
        assert!((1..6).contains(&a) && (1..6).contains(&b) && (1..8).contains(&c));
    }
}
