//! Paper §2: Chord routing "scales logarithmically with the size of the
//! network" — lookup cost as the overlay grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use asa_chord::{Key, Overlay};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_routing");
    for n in [16usize, 64, 256, 1024] {
        let overlay = Overlay::with_nodes((0..n as u64).map(|i| Key::hash(&i.to_be_bytes())), 8);
        let origin = overlay.live_nodes()[0];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let key = Key::hash(&i.to_be_bytes());
                black_box(overlay.route(origin, key).expect("routes").hops)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
