//! Engine-tier comparison: ns/delivery and allocation counts for the
//! interpreted, compiled, batched, kernel-batched, sharded, EFSM and
//! build-time-generated execution tiers, all running the same canonical
//! commit trace at r = 4.
//!
//! The batch-kernel gate: `batched_pool` / `efsm_pool` measure the
//! *scalar* per-session batch walk (`deliver_all_scalar` on the core
//! pools — the pre-kernel reference semantics), while `batched_kernel`
//! / `efsm_kernel` measure the bucketed branchless kernels behind
//! `deliver_all`. The paired alternating measurement at the bottom
//! hard-fails unless the kernels win by ≥ 1.25× (dense) and ≥ 1.4×
//! (EFSM) on a single core — branch elimination alone, no
//! multi-threading involved — at zero allocations per delivery.
//!
//! The sharded and facade tiers are measured **through the
//! `stategen-runtime` facade** (`Spec → Engine → Runtime`) — the owned
//! pipeline every deployment site now consumes — and the dedicated
//! `runtime_facade` row hard-gates the facade's overhead: 64k-session
//! batch dispatch must stay within 1.10× of raw dense-table stepping
//! (a paired alternating measurement against the bare
//! `CompiledMachine::step` loop; `compiled_raw_64k` is the same
//! baseline as a reported row) at zero allocations per delivery, both
//! hard assertions — the facade is only allowed to exist if it is
//! free. `runtime_facade_sharded_4` tracks the same work with 4-way
//! sharding as configuration; like the scoped `sharded_pool_*` rows it
//! spawns scoped worker threads per batch, so it is exempt from the
//! zero-alloc assertion and reported rather than gated.
//!
//! Emits a machine-readable `BENCH_engine_tiers.json` at the workspace
//! root (ns/delivery per tier, speedup ratios vs the interpreted
//! baseline, allocations per delivery) so future PRs can track the
//! performance trajectory, plus a human-readable table on stdout.
//!
//! A counting global allocator verifies the headline claims directly:
//! every steady-state *compiled* hot path — and the interpreted paths,
//! including the FSM name path and the interpreted EFSM, which both
//! borrow the action slice through `deliver_ref` instead of copying it
//! — performs **zero** heap allocations per delivered message; that
//! includes `hsm_flattened`, a flattened hierarchical statechart
//! dispatching through the same dense tables, `hsm_guarded_flattened`,
//! a *guarded* statechart (retry-budget session lifecycle) flattened
//! through the unified IR onto the compiled-EFSM tier and batch-served
//! at 64k sessions, and the persistent-worker rows
//! (`sharded_persistent_4`, `work_stealing_4`), whose workers are
//! spawned once *outside* the measurement and whose shard scratch is
//! worker-resident. Exempt from the assertion: only the scoped sharded
//! rows (`sharded_pool_*`, `runtime_facade_sharded_4`), which spawn
//! worker threads per batch by design, amortised over tens of
//! thousands of sessions per batch.
//!
//! The deployment path gets its own rows: `artifact_cold_load` times
//! the full ship-and-boot cycle (encode to the versioned artifact
//! image, load through the paranoid loader, build the engine, first
//! delivery — ns per cold boot, allocations included by nature), and
//! `artifact_booted_pool` hard-asserts that an artifact-booted engine's
//! steady state is allocation-free like every other compiled row.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use stategen_analysis::minimize;
use stategen_commit::{
    commit_efsm, commit_efsm_instance, commit_efsm_params, CommitConfig, CommitModel,
};
use stategen_core::{
    generate, CompiledEfsm, CompiledMachine, EfsmSessionPool, FsmInstance, ProtocolEngine,
    SessionPool,
};
use stategen_generated::GeneratedCommitR4;
use stategen_models::{redundant_ring, session_lifecycle, session_lifecycle_guarded};
use stategen_runtime::{Artifact, Engine, Spec};

/// System allocator wrapped with an allocation counter, so the harness
/// can assert which tiers allocate on the delivery path.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed
// atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The canonical commit trace driven by every tier (same as the
/// `runtime_comparison` bench).
const TRACE: [&str; 9] = [
    "update", "vote", "vote", "commit", "not_free", "vote", "free", "commit", "vote",
];

/// Deliveries per measurement run for the single-instance tiers.
const SINGLE_DELIVERIES: u64 = 1_800_000;

/// Sessions in the batched tier (deliveries = sessions × trace rounds).
const POOL_SESSIONS: usize = 4096;

/// Sessions in the sharded tiers (the multi-core scaling measurement;
/// the acceptance bar is ≥ 64k concurrent sessions).
const SHARDED_SESSIONS: usize = 65_536;

struct TierResult {
    name: String,
    ns_per_delivery: f64,
    allocs_per_delivery: f64,
    /// Whether the steady-state path must be allocation-free.
    assert_zero_alloc: bool,
}

/// Runs `work` (which performs `deliveries` message deliveries) once as
/// a warm-up pass and then three measured passes, returning best-of ns
/// (this box is shared and single-pass timings jitter) and worst-of
/// allocations per delivery.
fn measure(
    name: impl Into<String>,
    deliveries: u64,
    assert_zero_alloc: bool,
    mut work: impl FnMut() -> u64,
) -> TierResult {
    let mut checksum = work(); // warm-up: page in tables, size scratch buffers
    let mut best_ns = f64::INFINITY;
    let mut worst_allocs = 0u64;
    for _ in 0..3 {
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let start = Instant::now();
        checksum ^= work();
        let elapsed = start.elapsed();
        let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
        best_ns = best_ns.min(elapsed.as_nanos() as f64);
        worst_allocs = worst_allocs.max(allocs);
    }
    std::hint::black_box(checksum);
    TierResult {
        name: name.into(),
        ns_per_delivery: best_ns / deliveries as f64,
        allocs_per_delivery: worst_allocs as f64 / deliveries as f64,
        assert_zero_alloc,
    }
}

fn main() {
    let config = CommitConfig::new(4).expect("valid replication factor");
    let machine = generate(&CommitModel::new(config))
        .expect("generates")
        .machine;
    let compiled = CompiledMachine::compile(&machine);
    let efsm = commit_efsm();
    let compiled_efsm = CompiledEfsm::compile(&efsm).expect("commit EFSM compiles");
    let efsm_params = commit_efsm_params(&config);
    // The owned pipeline engine every sharded/facade row serves from.
    let facade_engine =
        Engine::compile(Spec::machine(machine.clone())).expect("commit machine compiles");
    let ids: Vec<_> = TRACE
        .iter()
        .map(|m| machine.message_id(m).expect("valid message"))
        .collect();
    let efsm_ids: Vec<_> = TRACE
        .iter()
        .map(|m| compiled_efsm.message_id(m).expect("valid message"))
        .collect();

    let rounds = SINGLE_DELIVERIES / TRACE.len() as u64;
    let mut results = Vec::new();

    // Tier 1: interpreted, name-based borrowing path. Message names are
    // resolved through the machine's interned name→id map (built once at
    // generation time) and the action slice is borrowed, so even the
    // string-keyed path is allocation-free.
    results.push(measure(
        "interpreted_name",
        rounds * TRACE.len() as u64,
        true,
        || {
            let mut engine = FsmInstance::new(&machine);
            let mut actions = 0;
            for _ in 0..rounds {
                for m in TRACE {
                    actions += engine.deliver_ref(m).expect("valid message").len() as u64;
                }
                engine.reset();
            }
            actions
        },
    ));

    // Tier 2: interpreted, id-based borrowing path (BTreeMap walk, no
    // name resolution).
    results.push(measure(
        "interpreted_id",
        rounds * TRACE.len() as u64,
        true,
        || {
            let mut engine = FsmInstance::new(&machine);
            let mut actions = 0;
            for _ in 0..rounds {
                for &id in &ids {
                    actions += engine.deliver_id(id).len() as u64;
                }
                engine.reset();
            }
            actions
        },
    ));

    // Tier 3: compiled dense-table dispatch.
    results.push(measure(
        "compiled",
        rounds * TRACE.len() as u64,
        true,
        || {
            let mut engine = compiled.instance();
            let mut actions = 0;
            for _ in 0..rounds {
                for &id in &ids {
                    actions += engine.deliver_id(id).len() as u64;
                }
                engine.reset();
            }
            actions
        },
    ));

    // Tier 3b: a flattened hierarchical statechart on the same compiled
    // dispatch. The session-lifecycle machine (composites, entry/exit
    // actions, shallow history) lowers to an ordinary dense table, so
    // flattened dispatch must stay within ~2x of the plain compiled
    // tier and keep the zero-allocation guarantee.
    let lifecycle = session_lifecycle();
    let lifecycle_flat = lifecycle.flatten();
    let compiled_lifecycle = CompiledMachine::compile(&lifecycle_flat);
    const HSM_TRACE: [&str; 9] = [
        "connect", "update", "vote", "commit", "ping", "update", "abort", "suspend", "resume",
    ];
    let hsm_ids: Vec<_> = HSM_TRACE
        .iter()
        .map(|m| compiled_lifecycle.message_id(m).expect("valid message"))
        .collect();
    results.push(measure(
        "hsm_flattened",
        rounds * HSM_TRACE.len() as u64,
        true,
        || {
            let mut engine = compiled_lifecycle.instance();
            let mut actions = 0;
            for _ in 0..rounds {
                for &id in &hsm_ids {
                    actions += engine.deliver_id(id).len() as u64;
                }
                engine.reset();
            }
            actions
        },
    ));

    // Tier 3c: a *guarded* statechart — the retry-budget session
    // lifecycle — flattened through the unified IR onto the
    // compiled-EFSM tier and served through the runtime facade at the
    // 64k-session acceptance scale. Guards evaluate as flat fused
    // threshold checks against per-session variable registers, so the
    // row must stay in the compiled-EFSM cost class (tracked against
    // `efsm_pool` below) and keep the zero-allocation guarantee —
    // hard-asserted like every single-shard compiled row.
    let guarded_engine =
        Engine::compile(Spec::hsm_with_params(session_lifecycle_guarded(), vec![3]))
            .expect("guarded lifecycle compiles");
    const HSM_GUARDED_TRACE: [&str; 9] = [
        "connect", "update", "abort", "update", "vote", "commit", "update", "abort", "suspend",
    ];
    let guarded_ids: Vec<_> = HSM_GUARDED_TRACE
        .iter()
        .map(|m| guarded_engine.message_id(m).expect("valid message"))
        .collect();
    let guarded_rounds = 4u64;
    let guarded_deliveries =
        guarded_rounds * SHARDED_SESSIONS as u64 * HSM_GUARDED_TRACE.len() as u64;
    let guarded_flat_states = guarded_engine.state_count();
    {
        let mut rt = guarded_engine.runtime_with(SHARDED_SESSIONS);
        results.push(measure(
            "hsm_guarded_flattened",
            guarded_deliveries,
            true,
            || {
                let mut transitions = 0;
                for _ in 0..guarded_rounds {
                    for &id in &guarded_ids {
                        transitions += rt.deliver_all(id);
                    }
                    rt.reset_all();
                }
                transitions
            },
        ));
    }

    // Tier 3d: provably-safe state minimization. The redundant-ring
    // statechart flattens to RING_K + 2 states whose work leaves are
    // all behaviourally equivalent; `stategen_analysis::minimize`
    // collapses them by partition refinement, and both the original
    // and the quotient compile onto the dense tier and drive the same
    // trace. The hard gates: the quotient must actually be smaller,
    // must stay allocation-free, and (measured as paired alternating
    // passes below, so drift on this shared box hits both sides
    // equally) must serve deliveries no slower than the redundant
    // original.
    const RING_K: usize = 8;
    let ring_ir = redundant_ring(RING_K).flatten_ir();
    let (ring_min_ir, ring_stats) = minimize(&ring_ir);
    assert!(
        ring_stats.states_after < ring_stats.states_before,
        "minimization must shrink the ring: {} -> {}",
        ring_stats.states_before,
        ring_stats.states_after
    );
    let ring_full = CompiledMachine::compile_ir(&ring_ir).expect("redundant ring compiles");
    let ring_small = CompiledMachine::compile_ir(&ring_min_ir).expect("ring quotient compiles");
    const RING_TRACE: [&str; 9] = [
        "go", "step", "step", "step", "step", "step", "step", "step", "stop",
    ];
    let ring_rounds = SINGLE_DELIVERIES / RING_TRACE.len() as u64;
    let ring_deliveries = ring_rounds * RING_TRACE.len() as u64;
    let full_ids: Vec<_> = RING_TRACE
        .iter()
        .map(|m| ring_full.message_id(m).expect("valid message"))
        .collect();
    let small_ids: Vec<_> = RING_TRACE
        .iter()
        .map(|m| ring_small.message_id(m).expect("valid message"))
        .collect();
    results.push(measure("hsm_unminimized", ring_deliveries, true, || {
        let mut engine = ring_full.instance();
        let mut actions = 0;
        for _ in 0..ring_rounds {
            for &id in &full_ids {
                actions += engine.deliver_id(id).len() as u64;
            }
            engine.reset();
        }
        actions
    }));
    results.push(measure("hsm_minimized", ring_deliveries, true, || {
        let mut engine = ring_small.instance();
        let mut actions = 0;
        for _ in 0..ring_rounds {
            for &id in &small_ids {
                actions += engine.deliver_id(id).len() as u64;
            }
            engine.reset();
        }
        actions
    }));
    // The minimization gate, as paired alternating passes (the reported
    // rows above are measured minutes apart in a long process; the gate
    // re-runs both loops back to back so scheduler drift cancels).
    let minimized_ratio = {
        let mut full = ring_full.instance();
        let mut small = ring_small.instance();
        let mut full_pass = || {
            let mut actions = 0u64;
            for _ in 0..ring_rounds {
                for &id in &full_ids {
                    actions += full.deliver_id(id).len() as u64;
                }
                full.reset();
            }
            actions
        };
        let mut small_pass = || {
            let mut actions = 0u64;
            for _ in 0..ring_rounds {
                for &id in &small_ids {
                    actions += small.deliver_id(id).len() as u64;
                }
                small.reset();
            }
            actions
        };
        let full_actions = std::hint::black_box(full_pass());
        let small_actions = std::hint::black_box(small_pass());
        // The quotient is observation-equivalent, so the two loops do
        // identical visible work — checked here so the timing below is
        // guaranteed to compare like with like.
        assert_eq!(
            full_actions, small_actions,
            "the ring quotient must emit the same actions as the original"
        );
        let mut full_best = f64::INFINITY;
        let mut small_best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            std::hint::black_box(full_pass());
            full_best = full_best.min(start.elapsed().as_nanos() as f64);
            let start = Instant::now();
            std::hint::black_box(small_pass());
            small_best = small_best.min(start.elapsed().as_nanos() as f64);
        }
        small_best / full_best
    };

    // Tier 4: batched sessions over the core struct-of-arrays pool —
    // two rows for the same work. `batched_pool` is the *scalar*
    // reference walk (`deliver_all_scalar`: the per-session stepping
    // loop every batch caller ran before the kernels landed, preserved
    // as the semantic oracle and the observer visit-order path);
    // `batched_kernel` is `deliver_all`, which counting-sorts the
    // pending sessions into (state, message) buckets and steps each
    // bucket with one branchless loop (table cell hoisted out, finished
    // bits by mask arithmetic). The paired alternating gate below
    // hard-asserts the kernel's ≥ 1.25× win at 0 allocs/delivery.
    let pool_rounds = (SINGLE_DELIVERIES / (POOL_SESSIONS as u64 * TRACE.len() as u64)).max(1);
    let pool_deliveries = pool_rounds * POOL_SESSIONS as u64 * TRACE.len() as u64;
    let mut pool = SessionPool::new(&compiled, POOL_SESSIONS);
    results.push(measure("batched_pool", pool_deliveries, true, || {
        let mut transitions = 0;
        for _ in 0..pool_rounds {
            for &id in &ids {
                transitions += pool.deliver_all_scalar(id);
            }
            pool.reset_all();
        }
        transitions
    }));
    results.push(measure("batched_kernel", pool_deliveries, true, || {
        let mut transitions = 0;
        for _ in 0..pool_rounds {
            for &id in &ids {
                transitions += pool.deliver_all(id);
            }
            pool.reset_all();
        }
        transitions
    }));
    // The dense-kernel gate, as paired alternating passes (same
    // discipline as the minimization gate below: scheduler drift on
    // this shared box hits both sides equally, so the best-of ratio
    // isolates the real effect of branch elimination + bucketing).
    let batched_kernel_ratio = {
        let scalar_pass = |pool: &mut SessionPool| {
            let mut transitions = 0u64;
            for _ in 0..pool_rounds {
                for &id in &ids {
                    transitions += pool.deliver_all_scalar(id);
                }
                pool.reset_all();
            }
            transitions
        };
        let kernel_pass = |pool: &mut SessionPool| {
            let mut transitions = 0u64;
            for _ in 0..pool_rounds {
                for &id in &ids {
                    transitions += pool.deliver_all(id);
                }
                pool.reset_all();
            }
            transitions
        };
        let scalar_transitions = std::hint::black_box(scalar_pass(&mut pool));
        let kernel_transitions = std::hint::black_box(kernel_pass(&mut pool));
        assert_eq!(
            scalar_transitions, kernel_transitions,
            "the dense kernel must transition exactly like the scalar walk"
        );
        let mut scalar_best = f64::INFINITY;
        let mut kernel_best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            std::hint::black_box(scalar_pass(&mut pool));
            scalar_best = scalar_best.min(start.elapsed().as_nanos() as f64);
            let start = Instant::now();
            std::hint::black_box(kernel_pass(&mut pool));
            kernel_best = kernel_best.min(start.elapsed().as_nanos() as f64);
        }
        scalar_best / kernel_best
    };

    // Tier 5: the EFSM interpreter — the machine generic over r, walking
    // `Guard`/`Update` enum trees per message with a linear name scan,
    // driven through the borrow-returning `deliver_ref` path (the
    // transition's action slice is lent out, never copied), so even the
    // slow interpreted baseline is allocation-free and joins the hard
    // zero-alloc gate.
    let efsm_rounds = rounds / 4; // the enum-tree walk is slow; keep runs short
    let mut efsm_interp = commit_efsm_instance(&efsm, &config);
    results.push(measure(
        "efsm_interpreted",
        efsm_rounds * TRACE.len() as u64,
        true,
        || {
            let mut actions = 0;
            for _ in 0..efsm_rounds {
                for m in TRACE {
                    actions += efsm_interp.deliver_ref(m).expect("valid message").len() as u64;
                }
                efsm_interp.reset();
            }
            actions
        },
    ));

    // Tier 6: the compiled EFSM — the same machine lowered to flat
    // guard/update bytecode with a constant pool; id-based dispatch.
    // (The instance's register buffers are allocated once, out here.)
    let mut efsm_engine = compiled_efsm.instance(efsm_params.clone());
    results.push(measure(
        "efsm_compiled",
        rounds * TRACE.len() as u64,
        true,
        || {
            let mut actions = 0;
            for _ in 0..rounds {
                for &id in &efsm_ids {
                    actions += efsm_engine.deliver_id(id).len() as u64;
                }
                efsm_engine.reset();
            }
            actions
        },
    ));

    // Tier 7: batched EFSM sessions over the core pool (variable
    // registers struct-of-arrays) — the same scalar/kernel split as
    // tier 4. `efsm_pool` steps sessions one at a time through the
    // fused bytecode; `efsm_kernel` buckets by state and evaluates the
    // fused threshold checks `sign·vars[v] + bound ≤ 0` as masked
    // compares across each bucket's register lanes (the per-session
    // `(v ^ m) − m + t` form lifted to a column sweep), spilling to
    // scalar bytecode only for non-fused cells. Gate below: ≥ 1.4×.
    assert_eq!(
        compiled_efsm.bind(&efsm_params).spill_cell_count(),
        0,
        "the commit EFSM must stay entirely on the fused kernel fast path"
    );
    let mut efsm_pool = EfsmSessionPool::new(&compiled_efsm, efsm_params.clone(), POOL_SESSIONS);
    results.push(measure("efsm_pool", pool_deliveries, true, || {
        let mut transitions = 0;
        for _ in 0..pool_rounds {
            for &id in &efsm_ids {
                transitions += efsm_pool.deliver_all_scalar(id);
            }
            efsm_pool.reset_all();
        }
        transitions
    }));
    results.push(measure("efsm_kernel", pool_deliveries, true, || {
        let mut transitions = 0;
        for _ in 0..pool_rounds {
            for &id in &efsm_ids {
                transitions += efsm_pool.deliver_all(id);
            }
            efsm_pool.reset_all();
        }
        transitions
    }));
    // The EFSM-kernel gate, paired like the dense one.
    let efsm_kernel_ratio = {
        let scalar_pass = |pool: &mut EfsmSessionPool| {
            let mut transitions = 0u64;
            for _ in 0..pool_rounds {
                for &id in &efsm_ids {
                    transitions += pool.deliver_all_scalar(id);
                }
                pool.reset_all();
            }
            transitions
        };
        let kernel_pass = |pool: &mut EfsmSessionPool| {
            let mut transitions = 0u64;
            for _ in 0..pool_rounds {
                for &id in &efsm_ids {
                    transitions += pool.deliver_all(id);
                }
                pool.reset_all();
            }
            transitions
        };
        let scalar_transitions = std::hint::black_box(scalar_pass(&mut efsm_pool));
        let kernel_transitions = std::hint::black_box(kernel_pass(&mut efsm_pool));
        assert_eq!(
            scalar_transitions, kernel_transitions,
            "the EFSM kernel must transition exactly like the scalar walk"
        );
        let mut scalar_best = f64::INFINITY;
        let mut kernel_best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            std::hint::black_box(scalar_pass(&mut efsm_pool));
            scalar_best = scalar_best.min(start.elapsed().as_nanos() as f64);
            let start = Instant::now();
            std::hint::black_box(kernel_pass(&mut efsm_pool));
            kernel_best = kernel_best.min(start.elapsed().as_nanos() as f64);
        }
        scalar_best / kernel_best
    };

    // Tier 7b: the deployment path. `artifact_cold_load` measures the
    // full ship-and-boot cycle — encode the bound commit EFSM to its
    // versioned artifact image (`save`), run the image back through the
    // paranoid loader (section checksums, structural validation,
    // content fingerprint, canonical re-encoding), build the engine
    // from the loaded bytes alone, and deliver a first message — the
    // work between an image arriving on a serving host and its first
    // served event, reported as ns per cold boot. `artifact_booted_pool`
    // then serves the canonical trace from an artifact-booted engine
    // and hard-asserts the deployment guarantee: once loaded, the
    // steady state is exactly the compiled tier — zero allocations per
    // delivery.
    let artifact = Artifact::from_efsm(&efsm, efsm_params.clone()).expect("binding arity");
    let cold_boots = 512u64;
    results.push(measure("artifact_cold_load", cold_boots, false, || {
        let mut actions = 0;
        for _ in 0..cold_boots {
            let image = artifact.save();
            let loaded = Artifact::load(&image).expect("canonical image");
            let engine = Engine::from_artifact(&loaded).expect("artifact boots");
            let mut rt = engine.runtime();
            let session = rt.spawn();
            let first = engine.message_id(TRACE[0]).expect("valid message");
            actions += rt.deliver(session, first).len() as u64;
        }
        actions
    }));
    {
        let image = artifact.save();
        let booted = Engine::from_artifact(&Artifact::load(&image).expect("canonical image"))
            .expect("artifact boots");
        let mut booted_pool = booted.runtime_with(POOL_SESSIONS);
        results.push(measure(
            "artifact_booted_pool",
            pool_deliveries,
            true,
            || {
                let mut transitions = 0;
                for _ in 0..pool_rounds {
                    for &id in &efsm_ids {
                        transitions += booted_pool.deliver_all(id);
                    }
                    booted_pool.reset_all();
                }
                transitions
            },
        ));
    }

    // Tiers 8–10: sharded multi-core batch stepping over 64k sessions,
    // one worker thread per shard. Shard results are bit-identical to a
    // single pool; the rows track how batch throughput scales with
    // worker count on this machine's cores.
    let sharded_rounds = 4u64;
    let sharded_deliveries = sharded_rounds * SHARDED_SESSIONS as u64 * TRACE.len() as u64;
    for shards in [1usize, 2, 4] {
        let mut sharded = facade_engine.runtime().sharded(shards);
        sharded.spawn_many(SHARDED_SESSIONS);
        results.push(measure(
            format!("sharded_pool_{shards}"),
            sharded_deliveries,
            false,
            || {
                let mut transitions = 0;
                for _ in 0..sharded_rounds {
                    for &id in &ids {
                        transitions += sharded.deliver_all(id);
                    }
                    sharded.reset_all();
                }
                transitions
            },
        ));
    }

    // Tier 10b: the same 4-shard batch work on persistent parked
    // workers. The workers are spawned once, *outside* the measured
    // passes, and every shard's kernel scratch lives in the shard
    // itself — so unlike the scoped rows above, the steady state is
    // pure condvar handshakes over pre-sized buffers and the row joins
    // the hard zero-alloc gate.
    {
        let mut sharded = facade_engine.runtime().sharded(4);
        sharded.spawn_many(SHARDED_SESSIONS);
        let row = sharded.with_workers(|workers| {
            measure("sharded_persistent_4", sharded_deliveries, true, || {
                let mut transitions = 0;
                for _ in 0..sharded_rounds {
                    for &id in &ids {
                        transitions += workers.deliver_all(id);
                    }
                    workers.reset_all();
                }
                transitions
            })
        });
        results.push(row);
    }

    // Tier 10c: work stealing. Eight shards over four persistent
    // workers: each worker drains its own deque front-first and steals
    // from its neighbours' tails when empty, so an unlucky shard split
    // can't idle three cores. Every shard is still processed exactly
    // once per batch by exactly one worker, so the results are
    // bit-identical to the flat pool — asserted per batch against a
    // flat runtime before measuring, and the row joins the hard
    // zero-alloc gate (deques are refilled in place within retained
    // capacity).
    {
        let mut flat = facade_engine.runtime_with(SHARDED_SESSIONS);
        let mut sharded = facade_engine.runtime().sharded(8);
        sharded.spawn_many(SHARDED_SESSIONS);
        let row = sharded.with_stealing_workers(4, |workers| {
            for &id in &ids {
                assert_eq!(
                    workers.deliver_all(id),
                    flat.deliver_all(id),
                    "stealing workers must transition exactly like the flat pool"
                );
                assert_eq!(workers.finished_count(), flat.finished_count());
                assert_eq!(workers.steps(), flat.steps());
            }
            workers.reset_all();
            measure("work_stealing_4", sharded_deliveries, true, || {
                let mut transitions = 0;
                for _ in 0..sharded_rounds {
                    for &id in &ids {
                        transitions += workers.deliver_all(id);
                    }
                    workers.reset_all();
                }
                transitions
            })
        });
        results.push(row);
    }

    // The facade-overhead gate. `compiled_raw_64k` is plain compiled
    // dispatch at the serving scale — 64k dense `u32` states stepped
    // straight through `CompiledMachine::step`, the loop any deployment
    // would hand-roll without the runtime. `runtime_facade` is the same
    // work through `Runtime::deliver_all` (slot skip-check, finished
    // bitset and step accounting included); `runtime_facade_sharded_4`
    // adds 4-way sharding as configuration. The facade must cost ≤ 10%
    // over raw stepping at 0 allocs/delivery — hard-asserted below.
    let start_state = compiled.start();
    let mut raw_states = vec![start_state; SHARDED_SESSIONS];
    results.push(measure(
        "compiled_raw_64k",
        sharded_deliveries,
        true,
        || {
            let mut transitions = 0;
            for _ in 0..sharded_rounds {
                for &id in &ids {
                    for state in &mut raw_states {
                        if let Some((target, _)) = compiled.step(*state, id) {
                            *state = target;
                            transitions += 1;
                        }
                    }
                }
                raw_states.fill(start_state);
            }
            transitions
        },
    ));
    {
        let mut facade = facade_engine.runtime_with(SHARDED_SESSIONS);
        results.push(measure("runtime_facade", sharded_deliveries, true, || {
            let mut transitions = 0;
            for _ in 0..sharded_rounds {
                for &id in &ids {
                    transitions += facade.deliver_all(id);
                }
                facade.reset_all();
            }
            transitions
        }));
        let mut facade_sharded = facade_engine.runtime().sharded(4);
        facade_sharded.spawn_many(SHARDED_SESSIONS);
        results.push(measure(
            "runtime_facade_sharded_4",
            sharded_deliveries,
            false,
            || {
                let mut transitions = 0;
                for _ in 0..sharded_rounds {
                    for &id in &ids {
                        transitions += facade_sharded.deliver_all(id);
                    }
                    facade_sharded.reset_all();
                }
                transitions
            },
        ));
    }

    // Tier 10c: the observability row. The same 64k-session batch work
    // with the full telemetry stack live: per-shard counters (always
    // compiled in), the batch-latency histogram, and a 256-event
    // flight-recorder ring receiving every transition. 256 events is
    // the deployment-shaped size: an 8 KiB ring rides in L1 next to
    // the streaming state array, where a 1024-event (32 KiB) ring
    // would evict it and bill pure cache misses to the recorder. The
    // ring and histogram are sized once at attach, so steady state
    // must stay allocation-free — hard-asserted like every
    // single-shard compiled row; the paired gate below bounds the
    // recording overhead.
    {
        let mut observed = facade_engine.runtime_with(SHARDED_SESSIONS);
        observed.attach_recorder(256);
        results.push(measure(
            "runtime_observed",
            sharded_deliveries,
            true,
            || {
                let mut transitions = 0;
                for _ in 0..sharded_rounds {
                    for &id in &ids {
                        transitions += observed.deliver_all(id);
                    }
                    observed.reset_all();
                }
                transitions
            },
        ));
    }

    // Tier 11: build-time generated source (match over enum states,
    // static send lists).
    results.push(measure(
        "generated",
        rounds * TRACE.len() as u64,
        false,
        || {
            let mut engine = GeneratedCommitR4::new();
            let mut actions = 0;
            for _ in 0..rounds {
                for m in TRACE {
                    if let Some(sends) = engine.deliver_raw(m) {
                        actions += sends.len() as u64;
                    }
                }
                engine.reset();
            }
            actions
        },
    ));

    let baseline = results[0].ns_per_delivery;
    println!(
        "engine tiers — {} ({} states) / {} ({} states), canonical trace",
        machine.name(),
        machine.state_count(),
        compiled_efsm.name(),
        compiled_efsm.state_count()
    );
    println!(
        "{:<18} {:>14} {:>10} {:>18}",
        "tier", "ns/delivery", "speedup", "allocs/delivery"
    );
    for r in &results {
        println!(
            "{:<18} {:>14.2} {:>9.1}x {:>18.4}",
            r.name,
            r.ns_per_delivery,
            baseline / r.ns_per_delivery,
            r.allocs_per_delivery
        );
    }

    for r in &results {
        if r.assert_zero_alloc {
            assert_eq!(
                r.allocs_per_delivery, 0.0,
                "{} tier must not allocate per delivery",
                r.name
            );
        }
    }
    let by_name = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .expect("measured")
            .ns_per_delivery
    };
    println!(
        "\ncompiled vs interpreted (name path): {:.1}x",
        baseline / by_name("compiled")
    );
    let efsm_speedup = by_name("efsm_interpreted") / by_name("efsm_compiled");
    println!("efsm_compiled vs efsm_interpreted:   {efsm_speedup:.1}x");
    // The ~8x-on-idle-hardware claim is tracked through the committed
    // BENCH_engine_tiers.json (reviewers diff it per PR); it is a
    // comparison of two wall-clock measurements, so unlike the exact
    // zero-alloc asserts above it must not hard-fail the verify gate —
    // a loaded shared container can deschedule one tier arbitrarily.
    if efsm_speedup < 5.0 {
        eprintln!(
            "warning: efsm_compiled speedup {efsm_speedup:.1}x is below the 5x target \
             (~8x expected on idle hardware) — rerun on an idle machine before treating \
             this as a regression"
        );
    }
    let sharded_scaling = by_name("sharded_pool_1") / by_name("sharded_pool_4");
    println!(
        "sharded 4-thread vs 1-thread:        {:.2}x ({} sessions, {} hardware threads)",
        sharded_scaling,
        SHARDED_SESSIONS,
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    // Flattened-statechart dispatch runs the identical dense-table hot
    // path, so it must stay in the same ballpark as the plain compiled
    // machine. Like the EFSM speedup this compares two wall-clock
    // measurements, so it warns rather than hard-failing the gate.
    let hsm_ratio = by_name("hsm_flattened") / by_name("compiled");
    println!("hsm_flattened vs compiled:           {hsm_ratio:.2}x");
    if hsm_ratio > 2.0 {
        eprintln!(
            "warning: flattened-statechart dispatch is {hsm_ratio:.2}x the plain compiled \
             tier (target: within ~2x) — rerun on an idle machine before treating this as \
             a regression"
        );
    }
    // Guarded statecharts ride the compiled-EFSM tier; their batch
    // dispatch must stay in its cost class — tracked against the
    // kernel-batched EFSM row (`efsm_kernel`, the same bucketed sweep
    // the facade routes `deliver_all` through), the closest
    // like-for-like loop. A wall-clock ratio between rows, so it warns
    // rather than hard-failing the gate (the zero-alloc assert above
    // *is* hard).
    let hsm_guarded_ratio = by_name("hsm_guarded_flattened") / by_name("efsm_kernel");
    println!("hsm_guarded_flattened vs efsm_kernel: {hsm_guarded_ratio:.2}x");
    if hsm_guarded_ratio > 1.5 {
        eprintln!(
            "warning: guarded-statechart dispatch is {hsm_guarded_ratio:.2}x the batched \
             compiled-EFSM tier (target: within ~1.5x) — rerun on an idle machine before \
             treating this as a regression"
        );
    }
    // The state-minimization gate: a provably-equivalent quotient must
    // never make dispatch slower — both machines walk the same dense
    // tables, the quotient's are just smaller. Hard-failed on the
    // paired best-of ratio with a small noise allowance (the loops are
    // identical code on tables that both fit in L1, so anything beyond
    // a few percent is a real regression, not drift).
    println!(
        "hsm_minimized vs unminimized:        {minimized_ratio:.3}x ({} -> {} states)",
        ring_stats.states_before, ring_stats.states_after
    );
    assert!(
        minimized_ratio <= 1.05,
        "minimized ring dispatch is {minimized_ratio:.3}x the unminimized original \
         (gate: <= 1.05x, paired passes; the quotient must not cost anything)"
    );
    let persistent_vs_scoped = by_name("sharded_pool_4") / by_name("sharded_persistent_4");
    println!("persistent vs scoped workers (4):    {persistent_vs_scoped:.2}x");
    let stealing_vs_persistent = by_name("sharded_persistent_4") / by_name("work_stealing_4");
    println!("stealing vs persistent workers (4):  {stealing_vs_persistent:.2}x");
    // The batch-kernel gates: bucketed branchless stepping must beat
    // the scalar per-session walk on a single core — ≥ 1.25× for the
    // dense tier, ≥ 1.4× for the EFSM tier, where the kernel also
    // replaces per-session guard dispatch with masked column compares.
    // Hard-failed on the paired best-of ratios computed above: the
    // kernels' only reason to exist is this win, and the paired
    // alternating passes make the measurement drift-proof enough to
    // gate on.
    println!("batched_kernel vs scalar (paired):   {batched_kernel_ratio:.3}x");
    assert!(
        batched_kernel_ratio >= 1.25,
        "dense batch kernel is only {batched_kernel_ratio:.3}x the scalar walk \
         (gate: >= 1.25x, paired passes at {POOL_SESSIONS} sessions)"
    );
    println!("efsm_kernel vs scalar (paired):      {efsm_kernel_ratio:.3}x");
    assert!(
        efsm_kernel_ratio >= 1.4,
        "EFSM batch kernel is only {efsm_kernel_ratio:.3}x the scalar walk \
         (gate: >= 1.4x, paired passes at {POOL_SESSIONS} sessions)"
    );
    // The facade-overhead gate: serving 64k sessions through the
    // `Spec → Engine → Runtime` facade must stay within 10% of raw
    // dense-table stepping. Wall-clock ratios between rows measured
    // minutes apart flake on this shared box (row timings drift by tens
    // of percent between runs), so the gate re-measures the two loops
    // as *paired alternating passes* — drift hits both sides equally —
    // and hard-fails on the best-of ratio: if the facade ever grows a
    // hidden per-delivery cost, this is where it surfaces.
    let facade_overhead = {
        let mut raw_states = vec![start_state; SHARDED_SESSIONS];
        let mut raw_pass = || {
            let mut transitions = 0u64;
            for _ in 0..sharded_rounds {
                for &id in &ids {
                    for state in &mut raw_states {
                        if let Some((target, _)) = compiled.step(*state, id) {
                            *state = target;
                            transitions += 1;
                        }
                    }
                }
                raw_states.fill(start_state);
            }
            transitions
        };
        let mut facade = facade_engine.runtime_with(SHARDED_SESSIONS);
        let facade_pass = |facade: &mut stategen_runtime::Runtime| {
            let mut transitions = 0u64;
            for _ in 0..sharded_rounds {
                for &id in &ids {
                    transitions += facade.deliver_all(id);
                }
                facade.reset_all();
            }
            transitions
        };
        std::hint::black_box(raw_pass());
        std::hint::black_box(facade_pass(&mut facade));
        let mut raw_best = f64::INFINITY;
        let mut facade_best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            std::hint::black_box(raw_pass());
            raw_best = raw_best.min(start.elapsed().as_nanos() as f64);
            let start = Instant::now();
            std::hint::black_box(facade_pass(&mut facade));
            facade_best = facade_best.min(start.elapsed().as_nanos() as f64);
        }
        facade_best / raw_best
    };
    println!("runtime_facade vs raw (paired):      {facade_overhead:.3}x");
    assert!(
        facade_overhead <= 1.10,
        "runtime facade dispatch is {facade_overhead:.3}x raw compiled dispatch \
         (gate: <= 1.10x, paired passes at 64k sessions)"
    );
    // The observability gate: with a flight recorder attached — every
    // transition written into the per-shard ring, every batch timed
    // into the latency histogram — the same 64k-session work must stay
    // within 25% of the unobserved facade, at zero steady-state
    // allocations (asserted on the `runtime_observed` row above). Same
    // paired-alternating-pass discipline as the facade gate: drift on
    // this shared box hits both sides equally, and the best-of ratio
    // isolates the real per-transition recording cost.
    let observed_overhead = {
        let batch_pass = |rt: &mut stategen_runtime::Runtime| {
            let mut transitions = 0u64;
            for _ in 0..sharded_rounds {
                for &id in &ids {
                    transitions += rt.deliver_all(id);
                }
                rt.reset_all();
            }
            transitions
        };
        let mut plain = facade_engine.runtime_with(SHARDED_SESSIONS);
        let mut observed = facade_engine.runtime_with(SHARDED_SESSIONS);
        observed.attach_recorder(256);
        std::hint::black_box(batch_pass(&mut plain));
        std::hint::black_box(batch_pass(&mut observed));
        let mut plain_best = f64::INFINITY;
        let mut observed_best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            std::hint::black_box(batch_pass(&mut plain));
            plain_best = plain_best.min(start.elapsed().as_nanos() as f64);
            let start = Instant::now();
            std::hint::black_box(batch_pass(&mut observed));
            observed_best = observed_best.min(start.elapsed().as_nanos() as f64);
        }
        observed_best / plain_best
    };
    println!("runtime_observed vs facade (paired): {observed_overhead:.3}x");
    assert!(
        observed_overhead <= 1.25,
        "observed runtime dispatch is {observed_overhead:.3}x the unobserved facade \
         (gate: <= 1.25x, paired passes at 64k sessions with a live flight recorder)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"machine\": \"{}\",", machine.name());
    let _ = writeln!(json, "  \"states\": {},", machine.state_count());
    let _ = writeln!(json, "  \"efsm_states\": {},", compiled_efsm.state_count());
    let _ = writeln!(json, "  \"trace_len\": {},", TRACE.len());
    let _ = writeln!(json, "  \"pool_sessions\": {POOL_SESSIONS},");
    let _ = writeln!(json, "  \"sharded_sessions\": {SHARDED_SESSIONS},");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    let _ = writeln!(json, "  \"efsm_compiled_speedup\": {efsm_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"sharded_4_thread_scaling\": {sharded_scaling:.3},"
    );
    let _ = writeln!(json, "  \"hsm_flattened_vs_compiled\": {hsm_ratio:.3},");
    let _ = writeln!(
        json,
        "  \"hsm_guarded_vs_efsm_kernel\": {hsm_guarded_ratio:.3},"
    );
    let _ = writeln!(
        json,
        "  \"batched_kernel_vs_scalar\": {batched_kernel_ratio:.3},"
    );
    let _ = writeln!(json, "  \"efsm_kernel_vs_scalar\": {efsm_kernel_ratio:.3},");
    let _ = writeln!(
        json,
        "  \"work_stealing_vs_persistent_4\": {stealing_vs_persistent:.3},"
    );
    let _ = writeln!(
        json,
        "  \"hsm_guarded_flat_states\": {guarded_flat_states},"
    );
    let _ = writeln!(
        json,
        "  \"persistent_vs_scoped_sharded_4\": {persistent_vs_scoped:.3},"
    );
    let _ = writeln!(
        json,
        "  \"runtime_facade_vs_raw_compiled\": {facade_overhead:.3},"
    );
    let _ = writeln!(
        json,
        "  \"runtime_observed_vs_facade\": {observed_overhead:.3},"
    );
    let _ = writeln!(
        json,
        "  \"hsm_flat_states\": {},",
        compiled_lifecycle.state_count()
    );
    let _ = writeln!(
        json,
        "  \"hsm_minimized_states_before\": {},",
        ring_stats.states_before
    );
    let _ = writeln!(
        json,
        "  \"hsm_minimized_states_after\": {},",
        ring_stats.states_after
    );
    let _ = writeln!(
        json,
        "  \"hsm_minimized_vs_unminimized\": {minimized_ratio:.3},"
    );
    json.push_str("  \"tiers\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_delivery\": {:.3}, \"speedup_vs_interpreted_name\": {:.3}, \"allocs_per_delivery\": {:.6}}}{}",
            r.name,
            r.ns_per_delivery,
            baseline / r.ns_per_delivery,
            r.allocs_per_delivery,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine_tiers.json");
    std::fs::write(&path, &json).expect("write BENCH_engine_tiers.json");
    println!("wrote {}", path.display());
}
