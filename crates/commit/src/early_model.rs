//! Reconstruction of the paper's *early* four-variable FSM design (Fig 3).
//!
//! The original state diagram was "constructed at an early stage in the
//! design process, at which point it appeared that only four variables
//! were necessary" (paper footnote 2): votes received, votes sent, commits
//! received and commits sent, with state names like `1/0/1/0`. Fig 3 shows
//! the transition `1/0/1/0 --<-vote--> 2/1/1/1`, firing "since the
//! threshold for committing has been reached (in this case 2 votes and 1
//! commit received)": the early design counted votes and commits
//! *together* against the `2f+1` agreement threshold.
//!
//! The model is kept (a) as a faithful reproduction of Fig 3 and (b) as a
//! second, structurally different instantiation of the generic
//! [`stategen_core::AbstractModel`] framework.

use stategen_core::{
    AbstractModel, Action, Outcome, StateComponent, StateSpace, StateVector, TransitionSpec,
};

use crate::config::CommitConfig;
use crate::messages::{COMMIT, VOTE};

const VOTES_RECEIVED: usize = 0;
const VOTES_SENT: usize = 1;
const COMMITS_RECEIVED: usize = 2;
const COMMITS_SENT: usize = 3;

/// The early four-variable commit model (paper Fig 3).
#[derive(Debug, Clone, Copy)]
pub struct EarlyCommitModel {
    config: CommitConfig,
}

impl EarlyCommitModel {
    /// Creates the early model for the given configuration.
    pub fn new(config: CommitConfig) -> Self {
        EarlyCommitModel { config }
    }

    /// Combined-evidence agreement threshold (`2f + 1`).
    pub fn agreement_threshold(&self) -> u32 {
        2 * self.config.max_faulty() + 1
    }

    /// Elaborates the shared phase logic: once combined votes+commits
    /// evidence reaches the agreement threshold, send this node's vote and
    /// commit (each at most once).
    fn apply_phase(&self, state: &mut StateVector, actions: &mut Vec<Action>) {
        let evidence = state.get(VOTES_RECEIVED) + state.get(COMMITS_RECEIVED);
        if evidence >= self.agreement_threshold() {
            if state.get(VOTES_SENT) == 0 {
                state.set(VOTES_SENT, 1);
                actions.push(Action::send(VOTE));
            }
            if state.get(COMMITS_SENT) == 0 {
                state.set(COMMITS_SENT, 1);
                actions.push(Action::send(COMMIT));
            }
        }
    }
}

impl AbstractModel for EarlyCommitModel {
    fn machine_name(&self) -> String {
        format!("early-commit@r={}", self.config.replication_factor())
    }

    fn state_space(&self) -> Result<StateSpace, stategen_core::SchemaError> {
        let max = self.config.replication_factor() - 1;
        StateSpace::new(vec![
            StateComponent::int("votes_received", max),
            StateComponent::int("votes_sent", 1),
            StateComponent::int("commits_received", max),
            StateComponent::int("commits_sent", 1),
        ])
    }

    fn messages(&self) -> Vec<String> {
        vec![VOTE.to_string(), COMMIT.to_string()]
    }

    fn start_state(&self) -> StateVector {
        self.state_space().expect("schema is valid").zero_vector()
    }

    fn transition(&self, state: &StateVector, message: &str) -> Outcome {
        let (count_idx, max) = match message {
            VOTE => (VOTES_RECEIVED, self.config.replication_factor() - 1),
            COMMIT => (COMMITS_RECEIVED, self.config.replication_factor() - 1),
            _ => return Outcome::Ignored,
        };
        if state.get(count_idx) == max {
            return Outcome::Ignored;
        }
        let mut target = state.clone();
        target.set(count_idx, state.get(count_idx) + 1);
        let mut actions = Vec::new();
        self.apply_phase(&mut target, &mut actions);
        Outcome::Transition(TransitionSpec {
            target,
            actions,
            annotations: Vec::new(),
        })
    }

    fn is_final_state(&self, state: &StateVector) -> bool {
        state.get(COMMITS_RECEIVED) >= self.config.commit_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stategen_core::generate;

    fn model() -> EarlyCommitModel {
        EarlyCommitModel::new(CommitConfig::new(4).expect("valid"))
    }

    /// The labelled transition of paper Fig 3: a vote received in state
    /// 1/0/1/0 crosses the combined threshold (2 votes + 1 commit), so the
    /// node sends a commit and moves to 2/1/1/1.
    #[test]
    fn fig3_transition() {
        let m = model();
        let space = m.state_space().unwrap();
        let s = space.parse_name("1/0/1/0").unwrap();
        match m.transition(&s, VOTE) {
            Outcome::Transition(spec) => {
                assert_eq!(space.name_of(&spec.target), "2/1/1/1");
                assert_eq!(spec.actions, vec![Action::send(VOTE), Action::send(COMMIT)]);
            }
            Outcome::Ignored => panic!("transition expected"),
        }
    }

    #[test]
    fn generates_a_small_family_member() {
        let m = model();
        let g = generate(&m).expect("generation succeeds");
        assert_eq!(g.report.initial_states, 64); // 4 * 2 * 4 * 2
        assert!(g.report.final_states < 64);
        assert!(g.machine.unique_final().is_some());
    }

    #[test]
    fn counts_bounded() {
        let m = model();
        let space = m.state_space().unwrap();
        let s = space.parse_name("3/1/0/1").unwrap();
        assert_eq!(m.transition(&s, VOTE), Outcome::Ignored);
    }

    #[test]
    fn commit_threshold_is_final() {
        let m = model();
        let space = m.state_space().unwrap();
        assert!(m.is_final_state(&space.parse_name("0/0/2/0").unwrap()));
        assert!(!m.is_final_state(&space.parse_name("3/1/1/1").unwrap()));
    }
}
