//! # stategen-generated
//!
//! The paper's "incorporation of generated code" deployment (§4.2/§4.3):
//! the commit-protocol FSMs for the default replication factors are
//! generated *at build time* by executing the abstract model in
//! `build.rs`, rendered to Rust source, and compiled into this crate.
//! The result is the Fig 16 artefact as running code: one `match`-based
//! handler per message, no interpretation overhead.
//!
//! [`GeneratedCommitR4`] and [`GeneratedCommitR7`] wrap the generated
//! modules in the common [`ProtocolEngine`] interface so the test-suites
//! can cross-check them against the interpreted machine, the hand-written
//! algorithm and the EFSM.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};

use stategen_core::{
    Action, InterpError, ProtocolEngine, StateId, StateMachine, StateMachineBuilder, StateRole,
};

/// The generated module for replication factor 4 (33 states).
#[allow(missing_docs)]
pub mod commit_r4 {
    include!(concat!(env!("OUT_DIR"), "/commit_r4.rs"));
}

/// The generated module for replication factor 7 (85 states).
#[allow(missing_docs)]
pub mod commit_r7 {
    include!(concat!(env!("OUT_DIR"), "/commit_r7.rs"));
}

macro_rules! engine_wrapper {
    ($(#[$doc:meta])* $name:ident, $module:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            state: $module::State,
            /// Action buffer reused across deliveries for the borrowing
            /// [`ProtocolEngine::deliver_ref`] path.
            scratch: Vec<Action>,
        }

        impl $name {
            /// Creates an instance positioned at the generated start state.
            pub fn new() -> Self {
                $name { state: $module::START, scratch: Vec::new() }
            }

            /// The current generated state.
            pub fn state(&self) -> $module::State {
                self.state
            }

            /// Display name of the current state (borrowed from the
            /// generated module's static tables).
            pub fn state_name_str(&self) -> &'static str {
                $module::state_name(self.state)
            }

            /// The raw generated sends for `message`, without wrapping
            /// them in [`Action`] values: `None` when the message is not
            /// applicable in the current state.
            ///
            /// `message` must belong to the protocol alphabet (debug
            /// builds assert); use [`ProtocolEngine::deliver_ref`] for
            /// the checked, erroring path.
            pub fn deliver_raw(&mut self, message: &str) -> Option<&'static [&'static str]> {
                debug_assert!(
                    $module::MESSAGES.contains(&message),
                    "message `{message}` is not in the protocol alphabet"
                );
                let (next, sends) = $module::receive(self.state, message)?;
                self.state = next;
                Some(sends)
            }

            /// Reconstructs the [`StateMachine`] value this module was
            /// rendered from, by breadth-first exploration of the
            /// generated `receive` function from the start state.
            ///
            /// This is the bridge back from build-time code to runtime
            /// data: the reconstructed machine can be fed through
            /// `stategen-runtime`'s `Spec`/`Engine` facade, so the
            /// generated tier participates in the conformance corpus
            /// and kernel-equivalence property suites like every other
            /// tier. States keep their generated display names and
            /// finish roles; unreachable states (which the generator
            /// prunes anyway) cannot appear by construction.
            pub fn to_machine() -> StateMachine {
                fn intern(
                    builder: &mut StateMachineBuilder,
                    ids: &mut HashMap<$module::State, StateId>,
                    queue: &mut VecDeque<$module::State>,
                    state: $module::State,
                ) -> StateId {
                    *ids.entry(state).or_insert_with(|| {
                        queue.push_back(state);
                        let role = if $module::is_final(state) {
                            StateRole::Finish
                        } else {
                            StateRole::Normal
                        };
                        builder.add_state_full($module::state_name(state), None, role, vec![])
                    })
                }
                let mut builder = StateMachineBuilder::new(
                    $module::MACHINE_NAME,
                    $module::MESSAGES.iter().copied(),
                );
                let mut ids = HashMap::new();
                let mut queue = VecDeque::new();
                let start = intern(&mut builder, &mut ids, &mut queue, $module::START);
                while let Some(state) = queue.pop_front() {
                    for message in $module::MESSAGES {
                        if let Some((next, sends)) = $module::receive(state, message) {
                            let to = intern(&mut builder, &mut ids, &mut queue, next);
                            builder.add_transition(
                                ids[&state],
                                message,
                                to,
                                sends.iter().map(|s| Action::send(*s)).collect(),
                            );
                        }
                    }
                }
                builder.build(start)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl ProtocolEngine for $name {
            fn deliver_ref(&mut self, message: &str) -> Result<&[Action], InterpError> {
                if !$module::MESSAGES.contains(&message) {
                    return Err(InterpError::UnknownMessage(message.to_string()));
                }
                self.scratch.clear();
                if let Some(sends) = self.deliver_raw(message) {
                    self.scratch.extend(sends.iter().map(|s| Action::send(*s)));
                }
                Ok(&self.scratch)
            }

            fn is_finished(&self) -> bool {
                $module::is_final(self.state)
            }

            fn state_name(&self) -> ::std::borrow::Cow<'_, str> {
                ::std::borrow::Cow::Borrowed(self.state_name_str())
            }

            fn reset(&mut self) {
                self.state = $module::START;
                self.scratch.clear();
            }
        }
    };
}

engine_wrapper!(
    /// The build-time generated commit protocol for replication factor 4,
    /// wrapped as a [`ProtocolEngine`].
    GeneratedCommitR4,
    commit_r4
);

engine_wrapper!(
    /// The build-time generated commit protocol for replication factor 7,
    /// wrapped as a [`ProtocolEngine`].
    GeneratedCommitR7,
    commit_r7
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_state_matches_model() {
        let e = GeneratedCommitR4::new();
        assert_eq!(e.state_name(), "F/0/F/0/F/T/F");
        assert!(!e.is_finished());
    }

    #[test]
    fn generated_constants() {
        assert_eq!(commit_r4::MACHINE_NAME, "commit@r=4");
        assert_eq!(commit_r7::MACHINE_NAME, "commit@r=7");
        assert_eq!(
            commit_r4::MESSAGES,
            &["update", "vote", "commit", "free", "not_free"]
        );
    }

    #[test]
    fn canonical_trace_runs() {
        let mut e = GeneratedCommitR4::new();
        assert_eq!(
            e.deliver("update").unwrap(),
            vec![Action::send("vote"), Action::send("not_free")]
        );
        assert!(e.deliver("vote").unwrap().is_empty());
        assert_eq!(e.deliver("vote").unwrap(), vec![Action::send("commit")]);
        assert!(e.deliver("commit").unwrap().is_empty());
        assert_eq!(e.deliver("commit").unwrap(), vec![Action::send("free")]);
        assert!(e.is_finished());
    }

    #[test]
    fn unknown_message_is_error() {
        let mut e = GeneratedCommitR4::new();
        assert!(matches!(
            e.deliver("zap"),
            Err(InterpError::UnknownMessage(_))
        ));
    }

    #[test]
    fn reset_restores_start() {
        let mut e = GeneratedCommitR7::new();
        e.deliver("update").unwrap();
        e.reset();
        assert_eq!(e.state_name(), "F/0/F/0/F/T/F");
    }

    #[test]
    fn to_machine_round_trips_through_the_interpreter() {
        let machine = GeneratedCommitR4::to_machine();
        assert_eq!(machine.name(), commit_r4::MACHINE_NAME);
        let mut interp = stategen_core::FsmInstance::new(&machine);
        let mut generated = GeneratedCommitR4::new();
        for m in [
            "update", "vote", "vote", "commit", "not_free", "vote", "free",
        ] {
            assert_eq!(
                interp.deliver(m).unwrap(),
                generated.deliver(m).unwrap(),
                "actions diverge on `{m}`"
            );
            assert_eq!(interp.state_name(), generated.state_name());
            assert_eq!(interp.is_finished(), generated.is_finished());
        }
    }

    #[test]
    fn messages_after_finish_ignored() {
        let mut e = GeneratedCommitR4::new();
        for m in ["commit", "commit"] {
            e.deliver(m).unwrap();
        }
        assert!(e.is_finished());
        assert!(e.deliver("vote").unwrap().is_empty());
        assert!(e.is_finished());
    }
}
