//! The compiled-EFSM execution tier behind the runtime facade: one
//! guarded machine, compiled once, serves the whole protocol family —
//! parameters are bound at `Spec` ingest, and a 40k-session sharded
//! runtime batch-steps the result on worker threads.
//!
//! The commit EFSM (paper §5.3) has 9 states *whatever the replication
//! factor*: thresholds live in guards over parameters bound at
//! instantiation time. Here the same machine runs r = 4 and r = 13
//! side by side, then drives a 40k-session sharded runtime.
//!
//! ```text
//! cargo run --release --example efsm_compiled
//! ```

use stategen::commit::{commit_efsm, commit_efsm_params, CommitConfig};
use stategen::runtime::{Engine, Spec, Tier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the 9-state guarded machine once; compile one engine per
    // family member by binding different parameters at ingest.
    // Compilation validates as it lowers: duplicate (state, message)
    // transitions with identical guards are rejected.
    let efsm = commit_efsm();

    // One machine, every family member.
    for r in [4u32, 13] {
        let config = CommitConfig::new(r)?;
        let engine = Engine::compile(Spec::efsm(efsm.clone(), commit_efsm_params(&config)))?;
        assert_eq!(engine.tier(), Tier::CompiledEfsm);
        let mut rt = engine.runtime();
        let session = rt.spawn();
        let vote = rt.message_id("vote").expect("commit alphabet");
        let commit = rt.message_id("commit").expect("commit alphabet");
        let mut rounds = 0;
        while !rt.is_finished(session) {
            rounds += 1;
            rt.deliver(session, vote);
            rt.deliver(session, commit);
        }
        println!(
            "  r={r:>2}: finished after {rounds} vote/commit rounds (votes={}, commits={})",
            rt.vars(session)[0],
            rt.vars(session)[1],
        );
    }

    // Batch tier: 40k concurrent guarded sessions, partitioned over
    // four shards as *configuration*. Each shard owns its registers and
    // scratch buffers, so `deliver_all` steps them on independent
    // worker threads — results bit-identical to a single flat runtime.
    let config = CommitConfig::new(4)?;
    let engine = Engine::compile(Spec::efsm(efsm, commit_efsm_params(&config)))?;
    println!(
        "compiled {}: {} states x {} messages, params {:?}",
        engine.name(),
        engine.state_count(),
        engine.messages().len(),
        engine.params(),
    );
    let mut pool = engine.runtime().sharded(4);
    pool.spawn_many(40_000);
    println!(
        "sharded runtime: {} sessions over {} shards",
        pool.len(),
        pool.shard_count()
    );
    let update = engine.message_id("update").expect("commit alphabet");
    let vote = engine.message_id("vote").expect("commit alphabet");
    let commit = engine.message_id("commit").expect("commit alphabet");
    // Drive every session through the canonical happy path:
    // update, two peer votes, two peer commits.
    for mid in [update, vote, vote, commit, commit] {
        let transitions = pool.deliver_all(mid);
        println!(
            "  delivered message {:>2}: {transitions} transitions, {} finished",
            mid.index(),
            pool.finished_count()
        );
    }
    assert!(pool.all_finished());
    println!(
        "all {} sessions agreed in {} transitions total",
        pool.len(),
        pool.steps()
    );
    Ok(())
}
