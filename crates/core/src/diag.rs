//! The unified diagnostic vocabulary shared by structural validation
//! ([`validate_machine`](crate::validate_machine)) and the semantic
//! analyzer (the `stategen-analysis` crate).
//!
//! Every finding — structural or semantic — is a [`Diagnostic`]: a
//! [`Lint`] identifying *what kind* of fact was found, a [`Level`]
//! saying how the reporting configuration treats it, a human-readable
//! message, and (when meaningful) the dense id of the state the finding
//! anchors to. One vocabulary means one rendering path and one gating
//! rule: a `Deny`-level diagnostic rejects the machine (see
//! `stategen_analysis::Analysis::deny` and the `Spec::analyzed` gate in
//! `stategen-runtime`), `Warn` is reported but does not gate, and
//! `Allow` findings are recorded for the report only.

use std::fmt;

/// How a reported finding is treated, mirroring the compiler-lint
/// convention. Ordered: `Allow < Warn < Deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Recorded in the report, never rendered as a problem or gated on.
    Allow,
    /// Reported as suspicious; does not reject the machine.
    Warn,
    /// Rejects the machine when a gate (such as `Spec::analyzed`) is in
    /// force.
    Deny,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        })
    }
}

/// Identity of a lint: one variant per distinct kind of finding, each
/// with a stable kebab-case id (used in reports and per-lint
/// configuration) and a default [`Level`].
///
/// The first four are the *structural* lints historically reported by
/// [`validate_machine`](crate::validate_machine); the rest are the
/// *semantic* lints of the `stategen-analysis` passes (reachability and
/// dead code, interval-based guard analysis, behavioural equivalence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// A [`StateRole::Finish`](crate::StateRole::Finish) state has
    /// outgoing transitions; finish states absorb every message, so the
    /// transitions can never fire and the machine's shape lies about
    /// its behaviour.
    FinalWithOutgoing,
    /// A state is unreachable from the start state.
    UnreachableState,
    /// A reachable non-final state has no outgoing transitions at all:
    /// it absorbs every message forever without being marked final.
    DeadEndState,
    /// Two states share a display name, making reports and rendered
    /// diagrams ambiguous.
    DuplicateStateName,
    /// A transition can never fire: its source state is unreachable, it
    /// leaves a finish state, or it is shadowed by an earlier
    /// unconditional transition on the same message.
    DeadTransition,
    /// A message is handled in *no* reachable state — it is declared in
    /// the alphabet but every delivery of it is silently absorbed.
    UnhandledMessage,
    /// A reachable non-final state whose live transitions all loop back
    /// to itself: once entered, the session can never make progress
    /// again, yet the state is not marked final.
    AbsorbingSink,
    /// A transition's guard is unsatisfiable (it contradicts itself or
    /// the value ranges the analysis proved for the variables), so the
    /// transition can never fire.
    UnsatisfiableGuard,
    /// A non-empty guard that is *always* true under every value the
    /// analysis proved reachable — the guard is noise, and if every
    /// guard in the machine is vacuous the machine could drop to the
    /// dense-table tier.
    VacuousGuard,
    /// Two sibling transitions on the same `(state, message)` can be
    /// enabled simultaneously. Execution stays deterministic (earlier
    /// declaration wins), but the spec relies on declaration order
    /// where it probably intended disjoint guards.
    OverlappingGuards,
    /// A variable's value range widens without bound (an `Inc` in a
    /// cycle with no limiting guard, or a `Set` that grows past any
    /// bound), so long executions can overflow the `i64` register.
    PossibleOverflow,
    /// Two or more reachable states are behaviourally equivalent; the
    /// machine can be minimized (`stategen_analysis::minimize`) without
    /// changing any observable behaviour.
    EquivalentStates,
}

impl Lint {
    /// Every lint, in a stable order (the order of the catalog in
    /// `docs/ANALYSIS.md`).
    pub const ALL: [Lint; 12] = [
        Lint::FinalWithOutgoing,
        Lint::UnreachableState,
        Lint::DeadEndState,
        Lint::DuplicateStateName,
        Lint::DeadTransition,
        Lint::UnhandledMessage,
        Lint::AbsorbingSink,
        Lint::UnsatisfiableGuard,
        Lint::VacuousGuard,
        Lint::OverlappingGuards,
        Lint::PossibleOverflow,
        Lint::EquivalentStates,
    ];

    /// The lint's stable kebab-case id.
    pub fn id(self) -> &'static str {
        match self {
            Lint::FinalWithOutgoing => "final-with-outgoing",
            Lint::UnreachableState => "unreachable-state",
            Lint::DeadEndState => "dead-end-state",
            Lint::DuplicateStateName => "duplicate-state-name",
            Lint::DeadTransition => "dead-transition",
            Lint::UnhandledMessage => "unhandled-message",
            Lint::AbsorbingSink => "absorbing-sink",
            Lint::UnsatisfiableGuard => "unsatisfiable-guard",
            Lint::VacuousGuard => "vacuous-guard",
            Lint::OverlappingGuards => "overlapping-guards",
            Lint::PossibleOverflow => "possible-overflow",
            Lint::EquivalentStates => "equivalent-states",
        }
    }

    /// Looks a lint up by its stable id.
    pub fn from_id(id: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.id() == id)
    }

    /// The level a lint reports at when the configuration does not
    /// override it.
    ///
    /// `final-with-outgoing` (a structural contradiction) and
    /// `overlapping-guards` (witnessed nondeterminism in the spec)
    /// default to [`Level::Deny`]; `equivalent-states` is informational
    /// (redundancy is *expected* on flattened statecharts and handled
    /// by minimization) and defaults to [`Level::Allow`]; everything
    /// else defaults to [`Level::Warn`].
    pub fn default_level(self) -> Level {
        match self {
            Lint::FinalWithOutgoing | Lint::OverlappingGuards => Level::Deny,
            Lint::EquivalentStates => Level::Allow,
            _ => Level::Warn,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A single finding: lint identity, effective level, message, and the
/// dense id of the state it anchors to (when the finding is about one
/// state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// The effective level the finding reports at (the lint's default,
    /// unless the analysis configuration overrode it).
    pub level: Level,
    /// Human-readable description of the finding.
    pub message: String,
    /// Dense id of the state the finding anchors to, if any.
    pub state: Option<u32>,
}

impl Diagnostic {
    /// Builds a diagnostic at the lint's default level.
    pub fn new(lint: Lint, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            lint,
            level: lint.default_level(),
            message: message.into(),
            state: None,
        }
    }

    /// Sets the anchoring state id.
    #[must_use]
    pub fn at_state(mut self, state: u32) -> Diagnostic {
        self.state = Some(state);
        self
    }

    /// Sets the effective level.
    #[must_use]
    pub fn with_level(mut self, level: Level) -> Diagnostic {
        self.level = level;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.level, self.lint.id(), self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order() {
        assert!(Level::Allow < Level::Warn);
        assert!(Level::Warn < Level::Deny);
        assert_eq!(Level::Deny.to_string(), "deny");
    }

    #[test]
    fn lint_ids_roundtrip_and_are_unique() {
        for lint in Lint::ALL {
            assert_eq!(Lint::from_id(lint.id()), Some(lint));
        }
        let mut ids: Vec<_> = Lint::ALL.iter().map(|l| l.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Lint::ALL.len());
        assert_eq!(Lint::from_id("no-such-lint"), None);
    }

    #[test]
    fn diagnostic_display_and_builders() {
        let d = Diagnostic::new(Lint::UnreachableState, "state `x` is unreachable")
            .at_state(3)
            .with_level(Level::Deny);
        assert_eq!(d.state, Some(3));
        assert_eq!(
            d.to_string(),
            "deny[unreachable-state]: state `x` is unreachable"
        );
        assert_eq!(
            Diagnostic::new(Lint::EquivalentStates, "x").level,
            Level::Allow
        );
    }
}
