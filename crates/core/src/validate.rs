//! Structural validation of generated machines.
//!
//! The generation engine produces machines that are well-formed by
//! construction; this module provides an independent checker used by the
//! test-suites, and by callers that build machines by hand.
//!
//! Findings are reported in the unified diagnostic vocabulary of
//! [`crate::diag`] — the same [`Diagnostic`] type and [`Level`] enum the
//! semantic analyzer (the `stategen-analysis` crate) uses — so
//! structural and semantic findings render and gate uniformly.
//! [`validate_machine`] is the historical entry point, kept as a thin
//! shim over [`structural_diagnostics`].

use std::collections::VecDeque;

use crate::diag::{Diagnostic, Level, Lint};
use crate::machine::{MessageId, StateId, StateMachine, StateRole};

/// The outcome of validating a machine: the structural findings, in the
/// unified diagnostic vocabulary.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl ValidationReport {
    /// `true` if no deny-level diagnostics were found.
    pub fn is_valid(&self) -> bool {
        self.diagnostics.iter().all(|d| d.level != Level::Deny)
    }

    /// Deny-level diagnostics (structural invariant violations).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.level == Level::Deny)
    }

    /// Warn-level diagnostics (suspicious but not structurally invalid).
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.level == Level::Warn)
    }
}

/// Computes the structural findings of a machine, each at its lint's
/// default level:
///
/// * [`Lint::FinalWithOutgoing`] (deny) — final states (role `Finish`)
///   must have no outgoing transitions;
/// * [`Lint::UnreachableState`] (warn) — every state should be
///   reachable from the start state;
/// * [`Lint::DeadEndState`] (warn) — non-final states should have at
///   least one outgoing transition;
/// * [`Lint::DuplicateStateName`] (warn) — state names should be
///   unique.
///
/// Transition-target and message-id range validity are enforced by
/// construction ([`StateMachineBuilder`](crate::StateMachineBuilder)
/// panics on violations), so they cannot be observed here.
pub fn structural_diagnostics(machine: &StateMachine) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();

    // Final states process no messages.
    for (id, state) in machine.states_with_ids() {
        if state.role() == StateRole::Finish && state.transition_count() != 0 {
            diagnostics.push(
                Diagnostic::new(
                    Lint::FinalWithOutgoing,
                    format!(
                        "final state `{}` has {} outgoing transitions",
                        state.name(),
                        state.transition_count()
                    ),
                )
                .at_state(id.index() as u32),
            );
        }
    }

    // Reachability.
    let mut seen = vec![false; machine.state_count()];
    let mut queue = VecDeque::new();
    seen[machine.start().index()] = true;
    queue.push_back(machine.start());
    while let Some(id) = queue.pop_front() {
        for (_m, t) in machine.state(id).transitions() {
            if !seen[t.target().index()] {
                seen[t.target().index()] = true;
                queue.push_back(t.target());
            }
        }
    }
    for (id, state) in machine.states_with_ids() {
        if !seen[id.index()] {
            diagnostics.push(
                Diagnostic::new(
                    Lint::UnreachableState,
                    format!(
                        "state `{}` is unreachable from the start state",
                        state.name()
                    ),
                )
                .at_state(id.index() as u32),
            );
        }
    }

    // Dead ends that are not final states.
    for (id, state) in machine.states_with_ids() {
        if state.transition_count() == 0 && state.role() != StateRole::Finish {
            diagnostics.push(
                Diagnostic::new(
                    Lint::DeadEndState,
                    format!(
                        "state `{}` has no outgoing transitions but is not a final state",
                        state.name()
                    ),
                )
                .at_state(id.index() as u32),
            );
        }
    }

    // Duplicate names.
    let mut names: Vec<&str> = machine.states().iter().map(|s| s.name()).collect();
    names.sort_unstable();
    for pair in names.windows(2) {
        if pair[0] == pair[1] {
            diagnostics.push(Diagnostic::new(
                Lint::DuplicateStateName,
                format!("duplicate state name `{}`", pair[0]),
            ));
        }
    }

    diagnostics
}

/// Validates the structural invariants of a machine — the historical
/// entry point, now a thin shim over [`structural_diagnostics`].
pub fn validate_machine(machine: &StateMachine) -> ValidationReport {
    ValidationReport {
        diagnostics: structural_diagnostics(machine),
    }
}

/// Lists the `(state, message)` pairs with no transition — the messages
/// the paper's generator found "not applicable" in each state. Useful as
/// a coverage diagnostic when developing an abstract model: an
/// unexpectedly inapplicable message usually means a missed handler
/// branch. Final states are skipped (they ignore everything by design).
pub fn missing_transitions(machine: &StateMachine) -> Vec<(StateId, MessageId)> {
    let mut missing = Vec::new();
    for (id, state) in machine.states_with_ids() {
        if state.role() == StateRole::Finish {
            continue;
        }
        for mi in 0..machine.messages().len() {
            let mid = machine
                .message_id(&machine.messages()[mi])
                .expect("message from the machine's own table");
            if state.transition(mid).is_none() {
                missing.push((id, mid));
            }
        }
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Action, StateMachineBuilder, StateRole};

    #[test]
    fn clean_machine_validates() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state("s0");
        let fin = b.add_state_full("FINISHED", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", fin, vec![Action::send("x")]);
        let m = b.build(s0);
        let report = validate_machine(&m);
        assert!(
            report.is_valid(),
            "unexpected issues: {:?}",
            report.diagnostics
        );
        assert_eq!(report.diagnostics.len(), 0);
    }

    #[test]
    fn unreachable_state_warns() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state("s0");
        let _orphan = b.add_state("orphan");
        b.add_transition(s0, "a", s0, vec![Action::send("x")]);
        let m = b.build(s0);
        let report = validate_machine(&m);
        assert!(report.is_valid());
        assert_eq!(report.warnings().count(), 2); // unreachable + dead end
        assert!(report
            .warnings()
            .any(|d| d.lint == Lint::UnreachableState && d.state == Some(1)));
        assert!(report.warnings().any(|d| d.lint == Lint::DeadEndState));
    }

    #[test]
    fn final_with_outgoing_is_error() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state_full("s0", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", s0, vec![]);
        let m = b.build(s0);
        let report = validate_machine(&m);
        assert!(!report.is_valid());
        assert_eq!(report.errors().count(), 1);
        assert_eq!(
            report.errors().next().unwrap().lint,
            Lint::FinalWithOutgoing
        );
    }

    #[test]
    fn duplicate_names_warn() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state("dup");
        let s1 = b.add_state("dup");
        b.add_transition(s0, "a", s1, vec![]);
        b.add_transition(s1, "a", s0, vec![]);
        let m = b.build(s0);
        let report = validate_machine(&m);
        assert!(report
            .warnings()
            .any(|w| w.lint == Lint::DuplicateStateName && w.message.contains("dup")));
    }

    #[test]
    fn missing_transitions_reported() {
        let mut b = StateMachineBuilder::new("m", ["a", "b"]);
        let s0 = b.add_state("s0");
        let fin = b.add_state_full("end", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", fin, vec![]);
        let m = b.build(s0);
        let missing = missing_transitions(&m);
        // s0 lacks `b`; the final state is skipped.
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].0, s0);
        assert_eq!(m.message_name(missing[0].1), "b");
    }

    #[test]
    fn diagnostics_render_uniformly() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state_full("s0", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", s0, vec![]);
        let m = b.build(s0);
        let report = validate_machine(&m);
        let rendered = report.errors().next().unwrap().to_string();
        assert!(
            rendered.starts_with("deny[final-with-outgoing]:"),
            "{rendered}"
        );
    }
}
