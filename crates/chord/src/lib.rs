//! # asa-chord
//!
//! A simulated Chord (paper references 5 and 6) peer-to-peer key-based routing
//! overlay: the P2P layer of the ASA storage architecture (paper §2,
//! Fig 1). "All participating nodes are organised into a logical circle
//! ... additional 'short-cut' links maintained by each node yield routing
//! performance that scales logarithmically with the size of the network."
//!
//! The overlay "dynamically maps a given key to a unique live node, even
//! though nodes may join and leave the network at arbitrary times" — the
//! property the storage layer builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod overlay;
pub mod ring;

pub use overlay::{NodeState, Overlay, OverlayError, Route, FINGER_BITS};
pub use ring::Key;
