//! The EFSM end of the spectrum (paper §5.3): one 9-state machine,
//! generic in the replication factor, trace-equivalent to every FSM
//! family member.
//!
//! Run with: `cargo run --example efsm_generic`

use stategen::commit::{commit_efsm, commit_efsm_instance, CommitConfig, CommitModel};
use stategen::fsm::{generate, FsmInstance, ProtocolEngine};
use stategen::render::render_efsm_text;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let efsm = commit_efsm();
    println!("{}", render_efsm_text(&efsm));
    assert_eq!(efsm.state_count(), 9, "paper §5.3");

    // One EFSM vs three generated FSMs: identical behaviour.
    for r in [4u32, 7, 13] {
        let config = CommitConfig::new(r)?;
        let machine = generate(&CommitModel::new(config))?.machine;
        let mut fsm = FsmInstance::new(&machine);
        let mut efsm_i = commit_efsm_instance(&efsm, &config);
        let trace = ["update", "vote", "vote", "vote", "commit", "commit", "vote"];
        for message in trace {
            let a = fsm.deliver(message)?;
            let b = efsm_i.deliver(message)?;
            assert_eq!(a, b, "r={r}: EFSM must match the FSM");
        }
        println!(
            "r={r}: EFSM (9 states) trace-equivalent to generated FSM ({} states)",
            machine.state_count()
        );
    }
    Ok(())
}
