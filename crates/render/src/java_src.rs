//! Java source renderer (paper Figs 16, 17 and 19).
//!
//! Two presentations are provided:
//!
//! * [`render_handlers_raw`] / [`render_handlers`] reproduce the paper's
//!   Fig 16 fragment style — one `receive<Message>()` method per message,
//!   each a `switch` over all states with dash-encoded state tokens
//!   (`F-0-F-0-F-F-F`). The `_raw` variant is written in the unabstracted
//!   Fig 17 style (explicit whitespace in string literals); the other uses
//!   the [`CodeBuffer`] utilities of Fig 18/19. The two are tested to emit
//!   byte-identical output — the paper's point that the abstractions cost
//!   nothing but legibility.
//! * [`JavaRenderer::render`] emits a complete, legal Java class (state
//!   constants instead of dash tokens), ready to paste into a code base
//!   (paper §4.3 "one-off generation").

use stategen_core::{StateMachine, StateRole};

use crate::codebuf::CodeBuffer;

/// Converts `not_free` to `NotFree` (Java method-name fragments).
pub fn camel(name: &str) -> String {
    name.split(['_', ' ', '-'])
        .filter(|w| !w.is_empty())
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// The paper's dash-encoded state token: `T/2/F/0/F/F/F` → `T-2-F-0-F-F-F`.
fn dash_token(name: &str) -> String {
    name.replace('/', "-")
}

/// A legal Java identifier for a state: `T/2/F/0/F/F/F` → `T_2_F_0_F_F_F`.
fn java_ident(name: &str) -> String {
    let mut ident: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        ident.insert(0, 'S');
        ident.insert(1, '_');
    }
    ident
}

/// Renders the Fig 16-style handler methods in the raw string style of
/// paper Fig 17: indentation is controlled by whitespace embedded in the
/// emitted strings.
pub fn render_handlers_raw(machine: &StateMachine) -> String {
    let mut buffer = String::new();
    for m in machine.messages() {
        let mid = machine.message_id(m).expect("message belongs to machine");
        buffer.push_str(&("void receive".to_string() + &camel(m) + "() {\n"));
        buffer.push_str("    switch (getState()) {\n");
        for state in machine.states() {
            let Some(t) = state.transition(mid) else {
                continue;
            };
            buffer
                .push_str(&("        case (".to_string() + &dash_token(state.name()) + ") : {\n"));
            for action in t.actions() {
                buffer.push_str(
                    &("            send".to_string() + &camel(action.message()) + "();\n"),
                );
            }
            buffer.push_str(
                &("            setState(".to_string()
                    + &dash_token(machine.state(t.target()).name())
                    + ");\n"),
            );
            buffer.push_str("            break;\n");
            buffer.push_str("        }\n");
        }
        buffer.push_str("    }\n");
        buffer.push_str("}\n");
    }
    buffer
}

/// Renders the same handler methods using the [`CodeBuffer`] abstractions
/// of paper Figs 18/19. Byte-identical to [`render_handlers_raw`].
pub fn render_handlers(machine: &StateMachine) -> String {
    let mut buffer = CodeBuffer::new();
    for m in machine.messages() {
        let mid = machine.message_id(m).expect("message belongs to machine");
        buffer.add(["void receive", &camel(m), "()"]);
        buffer.enter_block();
        buffer.add(["switch (getState())"]);
        buffer.enter_block();
        for state in machine.states() {
            let Some(t) = state.transition(mid) else {
                continue;
            };
            buffer.add(["case (", &dash_token(state.name()), ") :"]);
            buffer.enter_block();
            for action in t.actions() {
                buffer.add_ln(["send", &camel(action.message()), "();"]);
            }
            buffer.add_ln([
                "setState(",
                &dash_token(machine.state(t.target()).name()),
                ");",
            ]);
            buffer.add_ln(["break;"]);
            buffer.exit_block();
        }
        buffer.exit_block();
        buffer.exit_block();
    }
    buffer.into_string()
}

/// Renders complete Java classes from generated machines.
#[derive(Debug, Clone)]
pub struct JavaRenderer {
    class_name: String,
    /// Class providing the `send<Message>()` action methods; the generated
    /// class extends it (paper §5.1: "the generated class inherits from
    /// this specified class, allowing it to access the action methods").
    actions_class: String,
}

impl JavaRenderer {
    /// Creates a renderer emitting `class_name extends actions_class`.
    pub fn new(class_name: impl Into<String>, actions_class: impl Into<String>) -> Self {
        JavaRenderer {
            class_name: class_name.into(),
            actions_class: actions_class.into(),
        }
    }

    /// Renders the machine as a complete Java class.
    pub fn render(&self, machine: &StateMachine) -> String {
        let mut b = CodeBuffer::new();
        b.add_ln(["/**"]);
        b.add_ln([
            " * Generated from machine `",
            machine.name(),
            "`. Do not edit.",
        ]);
        b.add_ln([" */"]);
        b.add([
            "public class ",
            &self.class_name,
            " extends ",
            &self.actions_class,
        ]);
        b.enter_block();

        b.add_ln(["// States, named by their encoded variable values."]);
        for (i, state) in machine.states().iter().enumerate() {
            b.add_ln([
                "public static final int ",
                &java_ident(state.name()),
                " = ",
                &i.to_string(),
                ";",
            ]);
        }
        b.blank();
        let start_ident = java_ident(machine.state(machine.start()).name());
        b.add_ln(["private int state = ", &start_ident, ";"]);
        b.blank();
        b.add(["public int getState()"]);
        b.enter_block();
        b.add_ln(["return state;"]);
        b.exit_block();
        b.blank();
        b.add(["private void setState(int newState)"]);
        b.enter_block();
        b.add_ln(["state = newState;"]);
        b.exit_block();
        b.blank();
        b.add(["public boolean isFinished()"]);
        b.enter_block();
        let finals: Vec<String> = machine
            .states()
            .iter()
            .filter(|s| s.role() == StateRole::Finish)
            .map(|s| format!("state == {}", java_ident(s.name())))
            .collect();
        if finals.is_empty() {
            b.add_ln(["return false;"]);
        } else {
            b.add_ln(["return ", &finals.join(" || "), ";"]);
        }
        b.exit_block();

        for m in machine.messages() {
            let mid = machine.message_id(m).expect("message belongs to machine");
            b.blank();
            b.add(["public void receive", &camel(m), "()"]);
            b.enter_block();
            b.add(["switch (getState())"]);
            b.enter_block();
            for state in machine.states() {
                let Some(t) = state.transition(mid) else {
                    continue;
                };
                b.add(["case ", &java_ident(state.name()), " :"]);
                b.enter_block();
                for action in t.actions() {
                    b.add_ln(["send", &camel(action.message()), "();"]);
                }
                b.add_ln([
                    "setState(",
                    &java_ident(machine.state(t.target()).name()),
                    ");",
                ]);
                b.add_ln(["break;"]);
                b.exit_block();
            }
            b.exit_block();
            b.exit_block();
        }
        b.exit_block();
        b.into_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stategen_core::{Action, StateMachineBuilder};

    fn toy_machine() -> StateMachine {
        let mut b = StateMachineBuilder::new("toy", ["vote", "not_free"]);
        let s0 = b.add_state("F/0");
        let s1 = b.add_state("T/1");
        b.add_transition(s0, "vote", s1, vec![Action::send("commit")]);
        b.add_transition(s1, "not_free", s0, vec![]);
        b.build(s0)
    }

    #[test]
    fn camel_case_conversion() {
        assert_eq!(camel("vote"), "Vote");
        assert_eq!(camel("not_free"), "NotFree");
        assert_eq!(camel("not free"), "NotFree");
    }

    #[test]
    fn raw_and_buffered_identical() {
        // The point of paper Figs 17/19: the abstracted generator emits
        // exactly the same generated code.
        let m = toy_machine();
        assert_eq!(render_handlers_raw(&m), render_handlers(&m));
    }

    #[test]
    fn fig16_fragment_shape() {
        let m = toy_machine();
        let out = render_handlers(&m);
        assert!(out.contains("void receiveVote() {\n"));
        assert!(out.contains("    switch (getState()) {\n"));
        assert!(out.contains("        case (F-0) : {\n"));
        assert!(out.contains("            sendCommit();\n"));
        assert!(out.contains("            setState(T-1);\n"));
        assert!(out.contains("            break;\n"));
        assert!(out.contains("void receiveNotFree() {\n"));
    }

    #[test]
    fn full_class_is_self_consistent() {
        let m = toy_machine();
        let out = JavaRenderer::new("ToyFsm", "ToyActions").render(&m);
        assert!(out.contains("public class ToyFsm extends ToyActions {"));
        assert!(out.contains("public static final int F_0 = 0;"));
        assert!(out.contains("public static final int T_1 = 1;"));
        assert!(out.contains("private int state = F_0;"));
        assert!(out.contains("case F_0 :"));
        // Balanced braces.
        let opens = out.matches('{').count();
        let closes = out.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn ident_for_leading_digit() {
        assert_eq!(java_ident("1/0/1/0"), "S_1_0_1_0");
        assert_eq!(java_ident("T/2/F"), "T_2_F");
    }
}
