//! # asa-storage
//!
//! The ASA generic storage layer (paper §2): a Byzantine-fault-tolerant,
//! append-only storage infrastructure built on a P2P key-based routing
//! overlay, providing
//!
//! * the **data storage service** ([`DataService`]) mapping PIDs to
//!   immutable replicated blocks, with `r − f` store quorums and
//!   hash-verified retrieval (§2.1);
//! * the **version-history service** ([`version_service`]) mapping a GUID
//!   to a growing sequence of PIDs, serialised by the paper's BFT commit
//!   protocol — executed here by the *generated* state machines over a
//!   deterministic network simulation, with endpoint timeout/retry and
//!   back-off (§2.2);
//! * replica placement via the globally known key-generation function
//!   ([`placement`]);
//! * fault injection: fail-stop and Byzantine behaviour at both layers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asa_store;
pub mod backoff;
pub mod data_service;
pub mod entities;
pub mod placement;
pub mod version_service;

pub use asa_store::{AsaStore, StoreConfig, StoreError};
pub use backoff::{RetryScheme, ServerOrdering};
pub use data_service::{DataService, DataServiceError, DataServiceStats, NodeBehaviour};
pub use entities::{DataBlock, Guid, Pid};
pub use placement::{guid_key, peer_set, pid_key, replica_keys};
pub use stategen_telemetry::{LogHistogram, MetricsSnapshot};
pub use version_service::{
    run_harness, AttemptId, ClientEndpoint, CommitPeer, HarnessConfig, HarnessReport,
    PeerBehaviour, PeerEngine, PeerGcStats, UpdateOutcome, VhMsg, VhNode,
};
