//! Branchless batch kernels: `(state, message)`-bucketed dispatch for
//! the dense and compiled-EFSM tiers.
//!
//! The scalar batch loops in [`session`](crate::session) step each
//! session through [`CompiledMachine::step`] /
//! [`CompiledEfsm::step`] — a per-session table walk whose
//! applicability test, finish check and candidate cascade are all
//! data-dependent branches. This module restructures the batch into the
//! write-mask idiom: sessions are bucketed by current state with a
//! counting sort into a reusable scratch index (no allocation), and
//! each `(state, message)` bucket is then stepped by a single loop whose
//! table cell — target, finish flag, fused check constants — is hoisted
//! out of the loop, leaving only straight-line loads, masked compares
//! and stores in the body.
//!
//! * **Dense tier** — every session in a bucket shares one table cell,
//!   so the bucket body degenerates to a constant scatter over the SoA
//!   state array plus a mask-OR into the finished bitset.
//! * **EFSM tier** — a bucket shares one bound dispatch cell, so the
//!   canonical fused check `sign·vars[v] + bound ≤ 0` (already lowered
//!   to the branch-free `(v ^ m) − m + threshold` form by
//!   [`CompiledEfsm::bind`]) is evaluated as a masked compare swept
//!   down the bucket's register column; candidate selection, the inline
//!   increment and the state write are all mask arithmetic. Only cells
//!   outside the flat two-candidate shape (general bytecode, deep
//!   candidate lists) fall back to the scalar
//!   [`CompiledEfsm::step`] path, per bucket, not per batch.
//!
//! Both kernels short-circuit the *lockstep* batch shape — every
//! session in the same state, the dominant pattern for a pool spawned
//! together and fed one message feed, and the counting sort's worst
//! case (one bucket turns both counting passes into a serial dependency
//! chain on a single counter). A vectorized uniformity scan detects it
//! and the batch is served as a single pre-bucketed contiguous run: the
//! dense tier collapses to one cell read plus a constant fill of the
//! state column, the EFSM tier to one masked sweep with affine
//! addressing and no `order` indirection.
//!
//! Results are bit-identical to the scalar loops: sessions are
//! independent, every session is visited exactly once per batch, and
//! each bucket body computes exactly the scalar step's outcome — the
//! property suites pin states, finished bits, step counts and snapshots
//! across both paths.

use crate::compiled::CompiledMachine;
use crate::efsm_compiled::{BoundCand, BoundCell, CompiledEfsm, EfsmBinding, NO_INC16, SPILL};
use crate::machine::MessageId;
use crate::session::FinishedSet;

/// Reusable bucketing scratch for the batch kernels: a counting-sort
/// index of sessions grouped by current state.
///
/// Create once per pool (or shard) and reuse across batches — the
/// buffers grow to the pool's session count and the machine's state
/// count on first use and never shrink, so steady-state batches do not
/// allocate.
#[derive(Debug, Clone, Default)]
pub struct KernelScratch {
    /// Per-bucket offsets: during the scatter, `counts[b]` is the next
    /// write position of bucket `b`; after it, the bucket's *end*
    /// offset (bucket `b` spans `counts[b-1]..counts[b]` of `order`).
    counts: Vec<u32>,
    /// Session indices grouped by state bucket, stable within a bucket
    /// (ascending session order).
    order: Vec<u32>,
}

impl KernelScratch {
    /// An empty scratch; buffers are sized lazily by the first batch.
    pub fn new() -> Self {
        KernelScratch::default()
    }

    /// Counting-sorts `states` into `n_states + 1` buckets: one per
    /// dense state id plus a trailing *skip* bucket collecting every
    /// out-of-range id (retired-slot sentinels). Stable: within a
    /// bucket, `order` keeps ascending session order.
    fn bucket(&mut self, states: &[u32], n_states: usize) {
        debug_assert!(u32::try_from(states.len()).is_ok());
        let buckets = n_states + 1;
        if self.counts.len() < buckets {
            self.counts.resize(buckets, 0);
        }
        if self.order.len() < states.len() {
            self.order.resize(states.len(), 0);
        }
        let counts = &mut self.counts[..buckets];
        counts.fill(0);
        for &s in states {
            counts[(s as usize).min(n_states)] += 1;
        }
        // Exclusive prefix sums: counts[b] becomes bucket b's start.
        let mut sum = 0u32;
        for c in counts.iter_mut() {
            let n = *c;
            *c = sum;
            sum += n;
        }
        // Stable scatter, bumping each bucket's cursor to its end.
        let order = &mut self.order[..states.len()];
        for (i, &s) in states.iter().enumerate() {
            let b = (s as usize).min(n_states);
            order[counts[b] as usize] = i as u32;
            counts[b] += 1;
        }
    }
}

/// True when every id in `states` equals the first — the *lockstep*
/// batch shape (a pool spawned together and fed the same feed), which
/// is the dominant serving pattern and the counting sort's worst case:
/// with every session landing in one bucket, both counting passes
/// degenerate into a serial dependency chain on a single counter.
/// Computed as a branch-free OR-fold so the scan vectorizes.
fn uniform(states: &[u32]) -> bool {
    let s0 = states[0];
    states.iter().fold(0, |acc, &s| acc | (s ^ s0)) == 0
}

/// Dense-tier batch kernel: buckets `states` by current state and steps
/// each bucket with its hoisted table cell. `finished` (when present)
/// is updated by mask arithmetic; the caller owns the `steps` counter.
pub(crate) fn dense_batch(
    machine: &CompiledMachine,
    message: MessageId,
    states: &mut [u32],
    mut finished: Option<&mut FinishedSet>,
    scratch: &mut KernelScratch,
) -> u64 {
    if states.is_empty() {
        return 0;
    }
    let n_states = machine.state_count();
    let column = machine.column(message);
    let stride = machine.message_column_classes();
    let targets = machine.targets();
    let finish = machine.finish_flags();
    // Lockstep fast path: one shared state means one bucket, and one
    // bucket needs no sort — the cell is read once and the whole SoA
    // column becomes a constant fill.
    if uniform(states) {
        let state = states[0] as usize;
        if state >= n_states {
            return 0; // every slot retired
        }
        let target = targets[state * stride + column];
        if target == crate::compiled::NO_TRANSITION {
            return 0;
        }
        states.fill(target);
        if let Some(set) = finished {
            if finish[target as usize] {
                let n = states.len();
                for w in 0..n / 64 {
                    set.or_word(w, !0);
                }
                if !n.is_multiple_of(64) {
                    set.or_word(n / 64, (1u64 << (n % 64)) - 1);
                }
            }
        }
        return states.len() as u64;
    }
    scratch.bucket(states, n_states);
    let mut transitions = 0u64;
    let mut start = 0usize;
    for state in 0..n_states {
        let end = scratch.counts[state] as usize;
        if end == start {
            continue;
        }
        let bucket = &scratch.order[start..end];
        start = end;
        // The whole bucket shares one table cell: hoist the load.
        let target = targets[state * stride + column];
        if target == crate::compiled::NO_TRANSITION {
            continue;
        }
        transitions += bucket.len() as u64;
        // `or_bit(i, 0)` is the identity, so a non-final target skips
        // the finished pass outright — a bucket-constant branch, not a
        // data-dependent one.
        match finished.as_deref_mut() {
            Some(set) if finish[target as usize] => {
                for &i in bucket {
                    states[i as usize] = target;
                    set.or_bit(i as usize, 1);
                }
            }
            _ => {
                for &i in bucket {
                    states[i as usize] = target;
                }
            }
        }
    }
    transitions
}

/// One [`BoundCand`] with its per-bucket constants pre-resolved for the
/// masked sweep: absent checks are padded to *always pass* (they read
/// the always-zero dummy register with threshold 0), an absent inline
/// increment becomes a masked `+= 0` to the dummy register, and the
/// target's finish flag is pre-looked-up.
struct HoistedCand {
    v0: usize,
    m0: i64,
    t0: i64,
    v1: usize,
    m1: i64,
    t1: i64,
    inc: usize,
    inc_amt: i64,
    target: u32,
    fin: u64,
}

impl HoistedCand {
    fn from_cand(cand: &BoundCand, dummy: usize, finish: &[bool]) -> Self {
        let n = cand.check_count;
        let c0 = cand.checks[0];
        let c1 = cand.checks[1];
        let (v0, m0, t0) = if n >= 1 {
            (c0.var as usize, i64::from(c0.neg), c0.threshold)
        } else {
            (dummy, 0, 0)
        };
        let (v1, m1, t1) = if n >= 2 {
            (c1.var as usize, i64::from(c1.neg), c1.threshold)
        } else {
            (dummy, 0, 0)
        };
        let (inc, inc_amt) = if cand.inc_var == NO_INC16 {
            (dummy, 0)
        } else {
            (cand.inc_var as usize, 1)
        };
        HoistedCand {
            v0,
            m0,
            t0,
            v1,
            m1,
            t1,
            inc,
            inc_amt,
            target: cand.target,
            fin: u64::from(finish[cand.target as usize]),
        }
    }

    /// The padding candidate for one-candidate cells: its first check
    /// reads the always-zero dummy register against threshold 1, so
    /// `0 + 1 > 0` fails it for every session and its masks are all
    /// zero.
    fn never(dummy: usize) -> Self {
        HoistedCand {
            v0: dummy,
            m0: 0,
            t0: 1,
            v1: dummy,
            m1: 0,
            t1: 0,
            inc: dummy,
            inc_amt: 0,
            target: 0,
            fin: 0,
        }
    }
}

/// Const-generic check-count sentinel: a `C1` of `NO_CAND` means the
/// cell has no second candidate at all, so its checks, increment and
/// target drop out of the monomorphized sweep body entirely.
const NO_CAND: usize = 3;

/// Expands the reachable `(check_count₀, check_count₁)` shape space —
/// each candidate carries at most two fused checks, and a cell at most
/// two candidates (anything deeper spills) — into a 12-arm match that
/// invokes `$sweep!(C0, C1)` with the matching const parameters, so
/// the contiguous-range and bucketed sweeps dispatch to the same
/// monomorphizations without duplicating the match.
macro_rules! dispatch_shape {
    ($c0:expr, $c1:expr, $sweep:ident) => {
        match ($c0, $c1) {
            (0, NO_CAND) => $sweep!(0, NO_CAND),
            (1, NO_CAND) => $sweep!(1, NO_CAND),
            (2, NO_CAND) => $sweep!(2, NO_CAND),
            (0, 0) => $sweep!(0, 0),
            (0, 1) => $sweep!(0, 1),
            (0, 2) => $sweep!(0, 2),
            (1, 0) => $sweep!(1, 0),
            (1, 1) => $sweep!(1, 1),
            (1, 2) => $sweep!(1, 2),
            (2, 0) => $sweep!(2, 0),
            (2, 1) => $sweep!(2, 1),
            (2, 2) => $sweep!(2, 2),
            shape => unreachable!("impossible fused-cell check shape {:?}", shape),
        }
    };
}

/// One masked EFSM step over a borrowed register row, monomorphized per
/// cell shape: `C0`/`C1` are the candidates' fused-check counts (with
/// `C1 == NO_CAND` for one-candidate cells), so absent checks cost
/// nothing instead of a padded dummy-register load. Evaluates the live
/// checks as 0/1 masks, applies the masked inline increments and the
/// masked state select, and returns the `(p0, p1)` take masks. The
/// caller asserts every lane index `< row.len()` once per bucket, so
/// the row accesses below fold their bounds checks away.
#[inline(always)]
fn masked_step_row<const C0: usize, const C1: usize>(
    st: &mut u32,
    row: &mut [i64],
    state: u32,
    h0: &HoistedCand,
    h1: &HoistedCand,
) -> (i64, i64) {
    // Fused checks, `(v ^ m) − m + threshold > 0` = *fail*: the loads
    // and compares are independent and branch-free (the `C`-bounds are
    // compile-time constants, not branches).
    let f00 = if C0 >= 1 {
        i64::from((row[h0.v0] ^ h0.m0) - h0.m0 + h0.t0 > 0)
    } else {
        0
    };
    let f01 = if C0 >= 2 {
        i64::from((row[h0.v1] ^ h0.m1) - h0.m1 + h0.t1 > 0)
    } else {
        0
    };
    let p0 = (f00 | f01) ^ 1;
    let p1 = if C1 == NO_CAND {
        0
    } else {
        let f10 = if C1 >= 1 {
            i64::from((row[h1.v0] ^ h1.m0) - h1.m0 + h1.t0 > 0)
        } else {
            0
        };
        let f11 = if C1 >= 2 {
            i64::from((row[h1.v1] ^ h1.m1) - h1.m1 + h1.t1 > 0)
        } else {
            0
        };
        ((f10 | f11) ^ 1) & (p0 ^ 1)
    };
    // Masked inline increments, gated per bucket (the `inc_amt` tests
    // are loop-invariant — perfectly predicted, and they drop the
    // read-modify-write for increment-free candidates).
    if h0.inc_amt != 0 {
        row[h0.inc] += p0;
    }
    if C1 != NO_CAND && h1.inc_amt != 0 {
        row[h1.inc] += p1;
    }
    // Masked select over {cand0 target, cand1 target, stay}.
    *st = (p0 as u32) * h0.target + (p1 as u32) * h1.target + (((p0 | p1) ^ 1) as u32) * state;
    (p0, p1)
}

/// [`masked_step_row`] addressed by session index — the bucketed
/// sweep's form, where sessions arrive as a scattered index list and
/// each row is re-sliced from the session-major register file.
#[inline(always)]
fn masked_step<const C0: usize, const C1: usize>(
    i: usize,
    states: &mut [u32],
    vars: &mut [i64],
    n_regs: usize,
    state: u32,
    h0: &HoistedCand,
    h1: &HoistedCand,
) -> (i64, i64) {
    masked_step_row::<C0, C1>(
        &mut states[i],
        &mut vars[i * n_regs..][..n_regs],
        state,
        h0,
        h1,
    )
}

/// Asserts once per bucket that every hoisted lane index addresses the
/// per-session register row, letting the row accesses inside the sweep
/// fold their bounds checks into the loop induction.
#[inline(always)]
fn assert_lanes(h0: &HoistedCand, h1: &HoistedCand, n_regs: usize) {
    assert!(
        h0.v0 < n_regs
            && h0.v1 < n_regs
            && h0.inc < n_regs
            && h1.v0 < n_regs
            && h1.v1 < n_regs
            && h1.inc < n_regs,
        "hoisted lane indices must address the register row"
    );
}

/// The masked column sweep over a *contiguous* run of sessions — the
/// lockstep fast path, where the whole pool shares one state. Walking
/// `states` zipped with `chunks_exact_mut` rows gives affine addressing
/// with no `order` indirection and no per-session re-slice, and the
/// finished bits are accumulated into a local word and flushed with one
/// [`FinishedSet::or_word`] per 64 sessions: neighbouring sessions
/// share a bitset word, so per-session read-modify-writes would
/// serialize on it while the local accumulator stays in a register.
#[allow(clippy::too_many_arguments)]
fn sweep_range<const C0: usize, const C1: usize>(
    states: &mut [u32],
    vars: &mut [i64],
    n_regs: usize,
    state: u32,
    h0: &HoistedCand,
    h1: &HoistedCand,
    finished: Option<&mut FinishedSet>,
) -> u64 {
    assert_lanes(h0, h1, n_regs);
    let n = states.len();
    let mut transitions = 0u64;
    match finished {
        Some(set) if h0.fin | h1.fin != 0 => {
            let mut acc = 0u64;
            for (i, (st, row)) in states
                .iter_mut()
                .zip(vars.chunks_exact_mut(n_regs))
                .enumerate()
            {
                let (p0, p1) = masked_step_row::<C0, C1>(st, row, state, h0, h1);
                transitions += (p0 | p1) as u64;
                acc |= ((p0 as u64) * h0.fin + (p1 as u64) * h1.fin) << (i & 63);
                if i & 63 == 63 {
                    set.or_word(i >> 6, acc);
                    acc = 0;
                }
            }
            if !n.is_multiple_of(64) {
                set.or_word(n / 64, acc);
            }
        }
        // Neither candidate targets a final state: the finished set is
        // untouched, so the whole accumulate-and-flush layer drops out.
        _ => {
            for (st, row) in states.iter_mut().zip(vars.chunks_exact_mut(n_regs)) {
                let (p0, p1) = masked_step_row::<C0, C1>(st, row, state, h0, h1);
                transitions += (p0 | p1) as u64;
            }
        }
    }
    transitions
}

/// The masked column sweep over one scattered EFSM bucket: every
/// session listed in `bucket` is in `state`, shares the two hoisted
/// candidates, and is stepped with no data-dependent branch — check
/// outcomes, candidate selection, the inline increment, the state write
/// and the finished bit are all computed as 0/1 masks.
#[allow(clippy::too_many_arguments)]
fn sweep_bucket<const C0: usize, const C1: usize>(
    bucket: &[u32],
    states: &mut [u32],
    vars: &mut [i64],
    n_regs: usize,
    state: u32,
    h0: &HoistedCand,
    h1: &HoistedCand,
    finished: Option<&mut FinishedSet>,
) -> u64 {
    assert_lanes(h0, h1, n_regs);
    let mut transitions = 0u64;
    match finished {
        Some(set) if h0.fin | h1.fin != 0 => {
            for &i in bucket {
                let i = i as usize;
                let (p0, p1) = masked_step::<C0, C1>(i, states, vars, n_regs, state, h0, h1);
                transitions += (p0 | p1) as u64;
                set.or_bit(i, (p0 as u64) * h0.fin + (p1 as u64) * h1.fin);
            }
        }
        // Neither candidate targets a final state, so the finished set
        // is untouched (`or_bit(i, 0)` is the identity): drop the
        // bitset read-modify-write — which serializes on a shared word
        // across neighbouring sessions — from the whole bucket. A
        // bucket-constant specialization, not a per-session branch.
        _ => {
            for &i in bucket {
                let (p0, p1) =
                    masked_step::<C0, C1>(i as usize, states, vars, n_regs, state, h0, h1);
                transitions += (p0 | p1) as u64;
            }
        }
    }
    transitions
}

/// Pre-resolves one flat cell's candidates into their hoisted-constant
/// form plus the const-generic check-count shape for [`dispatch_shape!`]
/// (`NO_CAND` when the cell has a single candidate).
fn hoist_cell(
    cell: &BoundCell,
    dummy: usize,
    finish: &[bool],
) -> (HoistedCand, usize, HoistedCand, usize) {
    let h0 = HoistedCand::from_cand(&cell.cands[0], dummy, finish);
    let c0 = cell.cands[0].check_count as usize;
    let (h1, c1) = if cell.count >= 2 {
        (
            HoistedCand::from_cand(&cell.cands[1], dummy, finish),
            cell.cands[1].check_count as usize,
        )
    } else {
        (HoistedCand::never(dummy), NO_CAND)
    };
    (h0, c0, h1, c1)
}

/// Dispatches the lockstep contiguous run to the monomorphic
/// [`sweep_range`] matching its cell's candidate/check shape.
#[allow(clippy::too_many_arguments)]
fn sweep_cell_range(
    states: &mut [u32],
    vars: &mut [i64],
    n_regs: usize,
    state: u32,
    cell: &BoundCell,
    dummy: usize,
    finish: &[bool],
    finished: Option<&mut FinishedSet>,
) -> u64 {
    let (h0, c0, h1, c1) = hoist_cell(cell, dummy, finish);
    macro_rules! sweep {
        ($a:expr, $b:expr) => {
            sweep_range::<$a, $b>(states, vars, n_regs, state, &h0, &h1, finished)
        };
    }
    dispatch_shape!(c0, c1, sweep)
}

/// Dispatches one scattered bucket to the monomorphic [`sweep_bucket`]
/// matching its cell's candidate/check shape.
#[allow(clippy::too_many_arguments)]
fn sweep_cell_bucket(
    bucket: &[u32],
    states: &mut [u32],
    vars: &mut [i64],
    n_regs: usize,
    state: u32,
    cell: &BoundCell,
    dummy: usize,
    finish: &[bool],
    finished: Option<&mut FinishedSet>,
) -> u64 {
    let (h0, c0, h1, c1) = hoist_cell(cell, dummy, finish);
    macro_rules! sweep {
        ($a:expr, $b:expr) => {
            sweep_bucket::<$a, $b>(bucket, states, vars, n_regs, state, &h0, &h1, finished)
        };
    }
    dispatch_shape!(c0, c1, sweep)
}

/// The scalar fallback for a spilled `(state, message)` cell (general
/// bytecode, deep candidate lists): every yielded session steps through
/// [`CompiledEfsm::step`]. Shares the index-stream shape with
/// [`sweep_bucket`] so both the bucketed and lockstep paths reuse it.
#[allow(clippy::too_many_arguments)]
fn spill_bucket(
    sessions: impl Iterator<Item = usize>,
    machine: &CompiledEfsm,
    binding: &EfsmBinding,
    message: MessageId,
    state: u32,
    states: &mut [u32],
    vars: &mut [i64],
    n_regs: usize,
    spill_scratch: &mut [i64],
    finish: &[bool],
    mut finished: Option<&mut FinishedSet>,
) -> u64 {
    let mut transitions = 0u64;
    for i in sessions {
        let regs = &mut vars[i * n_regs..][..n_regs];
        if let Some((target, _actions)) = machine.step(state, message, binding, regs, spill_scratch)
        {
            states[i] = target;
            transitions += 1;
            if let Some(set) = finished.as_deref_mut() {
                set.or_bit(i, u64::from(finish[target as usize]));
            }
        }
    }
    transitions
}

/// EFSM-tier batch kernel: buckets `states` by current state, sweeps
/// each flat-cell bucket with masked compares over the register
/// columns, and falls back to the scalar [`CompiledEfsm::step`] only
/// for buckets whose cell spilled to the general tables.
#[allow(clippy::too_many_arguments)]
pub(crate) fn efsm_batch(
    machine: &CompiledEfsm,
    binding: &EfsmBinding,
    message: MessageId,
    states: &mut [u32],
    vars: &mut [i64],
    spill_scratch: &mut [i64],
    mut finished: Option<&mut FinishedSet>,
    scratch: &mut KernelScratch,
) -> u64 {
    if states.is_empty() {
        return 0;
    }
    let n_states = machine.state_count();
    let n_regs = machine.reg_count();
    debug_assert_eq!(vars.len(), states.len() * n_regs);
    debug_assert!(
        message.index() < machine.messages().len(),
        "message id from a different machine"
    );
    let stride = machine.msg_stride();
    let finish = machine.finish_flags();
    let cells = binding.cells();
    let dummy = machine.dummy_reg();
    // Lockstep fast path: one shared state means one bucket — skip the
    // sort and sweep the contiguous session range directly.
    if uniform(states) {
        let state = states[0] as usize;
        if state >= n_states {
            return 0; // every slot retired
        }
        let cell = &cells[state * stride + message.index()];
        if cell.count == 0 {
            return 0;
        }
        if cell.count == SPILL {
            return spill_bucket(
                0..states.len(),
                machine,
                binding,
                message,
                state as u32,
                states,
                vars,
                n_regs,
                spill_scratch,
                finish,
                finished,
            );
        }
        return sweep_cell_range(
            states,
            vars,
            n_regs,
            state as u32,
            cell,
            dummy,
            finish,
            finished,
        );
    }
    scratch.bucket(states, n_states);
    let mut transitions = 0u64;
    let mut start = 0usize;
    for state in 0..n_states {
        let end = scratch.counts[state] as usize;
        if end == start {
            continue;
        }
        let bucket = &scratch.order[start..end];
        start = end;
        // The whole bucket shares one bound dispatch cell.
        let cell = &cells[state * stride + message.index()];
        if cell.count == 0 {
            continue;
        }
        if cell.count == SPILL {
            // Non-fused updates (general bytecode, deep candidate
            // lists): scalar fallback, hoisted per bucket.
            transitions += spill_bucket(
                bucket.iter().map(|&i| i as usize),
                machine,
                binding,
                message,
                state as u32,
                states,
                vars,
                n_regs,
                spill_scratch,
                finish,
                finished.as_deref_mut(),
            );
            continue;
        }
        transitions += sweep_cell_bucket(
            bucket,
            states,
            vars,
            n_regs,
            state as u32,
            cell,
            dummy,
            finish,
            finished.as_deref_mut(),
        );
    }
    transitions
}

impl CompiledMachine {
    /// Batched delivery over a raw slice of per-session dense state
    /// ids, via the `(state, message)`-bucketed kernel: sessions are
    /// counting-sorted by current state into `scratch` and each bucket
    /// is stepped by one branchless loop with its table cell hoisted.
    /// Returns the number of transitions taken; actions are not
    /// materialised.
    ///
    /// Slots holding an out-of-range state id (for example a
    /// retired-slot sentinel such as `u32::MAX`) are skipped untouched,
    /// so callers with recycled slot arrays need no separate live mask.
    /// Results are bit-identical to stepping each live slot through
    /// [`CompiledMachine::step`] in any order.
    pub fn deliver_batch_states(
        &self,
        message: MessageId,
        states: &mut [u32],
        scratch: &mut KernelScratch,
    ) -> u64 {
        dense_batch(self, message, states, None, scratch)
    }
}

impl CompiledEfsm {
    /// Batched delivery over raw per-session state ids and a
    /// session-major register file, via the bucketed masked-sweep
    /// kernel (see the [`kernel`](crate::kernel) module docs). Returns
    /// the number of transitions taken; actions are not materialised.
    ///
    /// `vars` must hold [`CompiledEfsm::reg_count`] registers per
    /// session and `spill_scratch` at least
    /// [`CompiledEfsm::scratch_len`] slots (used only by buckets that
    /// fall back to the scalar bytecode path). Slots holding an
    /// out-of-range state id (retired-slot sentinels) are skipped with
    /// their registers untouched. Results are bit-identical to stepping
    /// each live slot through [`CompiledEfsm::step`] in any order.
    ///
    /// # Panics
    ///
    /// May panic (or, in release builds, misbehave) if `binding` was
    /// not created by this machine's [`CompiledEfsm::bind`] or the
    /// slice lengths disagree with the session count (debug builds
    /// assert).
    pub fn deliver_batch_states(
        &self,
        message: MessageId,
        binding: &EfsmBinding,
        states: &mut [u32],
        vars: &mut [i64],
        spill_scratch: &mut [i64],
        scratch: &mut KernelScratch,
    ) -> u64 {
        efsm_batch(
            self,
            binding,
            message,
            states,
            vars,
            spill_scratch,
            None,
            scratch,
        )
    }
}
