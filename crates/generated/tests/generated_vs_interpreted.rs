//! The central §4.3 guarantee: the *compiled generated code* behaves
//! identically to the interpreted machine and the hand-written algorithm.

use proptest::prelude::*;

use stategen_commit::{CommitConfig, CommitModel, ReferenceCommit, MESSAGE_NAMES};
use stategen_core::{generate, FsmInstance, ProtocolEngine};
use stategen_generated::{GeneratedCommitR4, GeneratedCommitR7};

fn check(r: u32, mut generated: impl ProtocolEngine, messages: &[usize]) {
    let config = CommitConfig::new(r).unwrap();
    let machine = generate(&CommitModel::new(config)).unwrap().machine;
    let mut interpreted = FsmInstance::new(&machine);
    let mut reference = ReferenceCommit::new(config);
    for (step, &mi) in messages.iter().enumerate() {
        let name = MESSAGE_NAMES[mi % MESSAGE_NAMES.len()];
        let a = generated.deliver(name).unwrap();
        let b = interpreted.deliver(name).unwrap();
        let c = reference.deliver(name).unwrap();
        assert_eq!(a, b, "r={r} step {step} ({name}): generated vs interpreted");
        assert_eq!(a, c, "r={r} step {step} ({name}): generated vs reference");
        assert_eq!(
            generated.is_finished(),
            interpreted.is_finished(),
            "r={r} step {step}"
        );
        assert_eq!(
            generated.state_name(),
            interpreted.state_name(),
            "r={r} step {step}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_r4_equivalent(messages in prop::collection::vec(0usize..5, 0..80)) {
        check(4, GeneratedCommitR4::new(), &messages);
    }

    #[test]
    fn generated_r7_equivalent(messages in prop::collection::vec(0usize..5, 0..140)) {
        check(7, GeneratedCommitR7::new(), &messages);
    }
}

/// The generated state enum covers exactly the merged machine: every
/// interpreted state name is reachable by the generated engine too, and
/// the two walk in lock-step through an exhaustive breadth-first
/// exploration.
#[test]
fn exhaustive_lockstep_r4() {
    let config = CommitConfig::new(4).unwrap();
    let machine = generate(&CommitModel::new(config)).unwrap().machine;
    // BFS over message sequences up to depth 5 (5^5 = 3125 sequences).
    let mut sequences: Vec<Vec<usize>> = vec![vec![]];
    for _ in 0..5 {
        let mut next = Vec::new();
        for s in &sequences {
            for m in 0..5 {
                let mut t = s.clone();
                t.push(m);
                next.push(t);
            }
        }
        sequences = next;
        for s in &sequences {
            let mut generated = GeneratedCommitR4::new();
            let mut interpreted = FsmInstance::new(&machine);
            for &mi in s {
                let name = MESSAGE_NAMES[mi];
                let a = generated.deliver(name).unwrap();
                let b = interpreted.deliver(name).unwrap();
                assert_eq!(a, b);
            }
            assert_eq!(generated.state_name(), interpreted.state_name());
        }
    }
}

/// Duplicate-delivery safety on the build-time generated tier: once the
/// engine reports finished, every further delivery is absorbed — no
/// actions, no state change, still finished. (The three runtime-served
/// tiers have the matching check in `stategen-runtime`'s conformance
/// suite.)
#[test]
fn finished_generated_engine_absorbs_duplicate_deliveries() {
    // Find a finishing trace by BFS on the interpreted machine, so the
    // test does not hard-code protocol thresholds.
    let config = CommitConfig::new(4).unwrap();
    let machine = generate(&CommitModel::new(config)).unwrap().machine;
    let finishing_trace = {
        let mut frontier: Vec<Vec<&str>> = vec![Vec::new()];
        let mut found: Option<Vec<&str>> = None;
        'search: while let Some(trace) = frontier.pop() {
            for &name in MESSAGE_NAMES.iter() {
                let mut next = trace.clone();
                next.push(name);
                let mut probe = FsmInstance::new(&machine);
                for m in &next {
                    probe.deliver(m).unwrap();
                }
                if probe.is_finished() {
                    found = Some(next);
                    break 'search;
                }
                if next.len() < 6 {
                    frontier.push(next);
                }
            }
        }
        found.expect("commit protocol has a finishing trace within 6 steps")
    };

    let mut generated = GeneratedCommitR4::new();
    for m in &finishing_trace {
        generated.deliver(m).unwrap();
    }
    assert!(generated.is_finished(), "trace must finish the engine");
    let parked = generated.state_name().into_owned();
    for _round in 0..2 {
        for &name in MESSAGE_NAMES.iter() {
            let actions = generated.deliver(name).unwrap();
            assert!(
                actions.is_empty(),
                "finished engine emitted {actions:?} on {name}"
            );
            assert_eq!(generated.state_name(), parked, "state moved on {name}");
            assert!(generated.is_finished(), "un-finished by {name}");
        }
    }
}
