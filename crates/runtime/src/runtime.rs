//! The serving facade: typed session handles over an owned engine.

use std::borrow::Cow;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::Instant;

use stategen_core::{
    Action, BatchEngine, CompiledEfsm, CompiledMachine, EfsmBinding, InterpError, KernelScratch,
    MessageId, ParkedWorkers, ProtocolEngine, ShardedPool, StateRole, StategenError,
    StealingWorkers, SwapError,
};
use stategen_telemetry::{
    FlightRecorder, LogHistogram, MetricsSnapshot, NoopObserver, RuntimeCounters, RuntimeObserver,
    ShardCounters, TransitionEvent,
};

use crate::engine::{Engine, EngineKind};
use crate::timer::TimerWheel;

/// Sentinel state id marking a released (recycled, currently unowned)
/// session slot. Slots in this state are skipped by batch delivery and
/// rejected by every handle-addressed operation.
const RETIRED: u32 = u32::MAX;

/// Typed handle to one session in a [`Runtime`].
///
/// A `SessionId` names a *particular protocol execution*, not a storage
/// slot: when a session is [`release`](Runtime::release)d its slot goes
/// onto the runtime's free list and the slot's generation counter is
/// bumped, so every outstanding handle to the old execution becomes
/// *stale* — using it panics loudly instead of silently addressing
/// whatever execution was respawned into the slot. This closes the
/// use-after-recycle bug class that raw `usize` indexing permits.
///
/// The `Debug` form is free-list-aware: `s0:17` is the first execution
/// in shard 0, slot 17; `s0:17#3` is the fourth execution recycled into
/// the same slot (generation 3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId {
    shard: u32,
    slot: u32,
    generation: u32,
}

impl SessionId {
    /// Which shard owns the session.
    pub fn shard(self) -> usize {
        self.shard as usize
    }

    /// The slot within the owning shard.
    pub fn slot(self) -> usize {
        self.slot as usize
    }

    /// How many earlier executions were recycled out of this slot
    /// before this one (0 = the slot's first execution).
    pub fn generation(self) -> u32 {
        self.generation
    }
}

impl std::fmt::Debug for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}:{}", self.shard, self.slot)?;
        if self.generation > 0 {
            write!(f, "#{}", self.generation)?;
        }
        Ok(())
    }
}

/// Finished-session bitset, maintained *lazily*: the batch hot loop
/// never touches it (a per-transition finish check costs ~25-50% of raw
/// dispatch — measured by the `runtime_facade` gate), it only marks the
/// set dirty; the single-session path keeps it incrementally current
/// while clean; queries rebuild it from the state array on demand.
/// Finish states are absorbing, so finished-ness is always derivable
/// from the current state alone.
#[derive(Debug, Clone, Default)]
struct FinishedBits {
    words: Vec<u64>,
    count: usize,
    /// Set when the bits may lag the state array (after a batch
    /// delivery); cleared by [`FinishedBits::rebuild`].
    dirty: bool,
}

impl FinishedBits {
    fn grow_for(&mut self, slots: usize) {
        let needed = slots.div_ceil(64);
        if self.words.len() < needed {
            self.words.resize(needed, 0);
        }
    }

    /// Only meaningful while clean (callers sync first).
    fn get(&self, slot: usize) -> bool {
        self.words[slot / 64] & (1 << (slot % 64)) != 0
    }

    #[inline]
    fn set(&mut self, slot: usize) {
        let word = slot / 64;
        let bit = 1u64 << (slot % 64);
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.count += 1;
        }
    }

    fn clear(&mut self, slot: usize) {
        let word = slot / 64;
        let bit = 1u64 << (slot % 64);
        if self.words[word] & bit != 0 {
            self.words[word] &= !bit;
            self.count -= 1;
        }
    }

    fn clear_all(&mut self) {
        self.words.fill(0);
        self.count = 0;
        self.dirty = false;
    }

    /// Recomputes every bit (and the count) from the state array,
    /// clearing the dirty flag. Retired slots stay unset.
    fn rebuild(&mut self, current: &[u32], is_finish: impl Fn(u32) -> bool) {
        self.words.fill(0);
        self.count = 0;
        for (slot, &state) in current.iter().enumerate() {
            if state != RETIRED && is_finish(state) {
                self.words[slot / 64] |= 1 << (slot % 64);
                self.count += 1;
            }
        }
        self.dirty = false;
    }
}

/// One shard of a [`Runtime`]: an owned block of session slots
/// (struct-of-arrays: one dense `u32` state id, a generation counter
/// and a finished bit per slot, plus the EFSM tiers' variable
/// registers) stepping the shared engine.
///
/// Shards implement [`BatchEngine`], so the runtime scales them with
/// the same scoped-worker / parked-worker machinery as the core pools;
/// they are created and owned by [`Runtime`] and not constructed
/// directly.
#[derive(Debug, Clone)]
pub struct Shard {
    kind: EngineKind,
    /// Dense state id per slot; [`RETIRED`] marks recycled slots.
    current: Vec<u32>,
    /// Per-slot generation, bumped when the slot is released.
    generations: Vec<u32>,
    /// Lazily synced (see [`FinishedBits`]); `RefCell` so `&self`
    /// queries can rebuild it on demand (shards are single-writer, so
    /// the dynamic borrow never contends).
    finished: RefCell<FinishedBits>,
    /// Released slots awaiting respawn.
    free: Vec<u32>,
    /// Session-major EFSM variable registers (empty on other tiers).
    vars: Vec<i64>,
    /// Staged-update scratch for the EFSM bytecode path.
    scratch: Vec<i64>,
    /// Bucketing scratch for the batch kernels (see
    /// `stategen_core::kernel`); shard-resident so unobserved
    /// `deliver_all` stays allocation-free after the first batch.
    kernel: KernelScratch,
    n_regs: usize,
    steps: u64,
    /// Per-shard telemetry counters (single-writer, merged on read; see
    /// [`stategen_telemetry::ShardCounters`]). Not part of snapshots —
    /// counters describe this process's activity, not durable state.
    counters: ShardCounters,
    /// The shard's flight recorder, when one is attached (see
    /// [`Runtime::attach_recorder`]). Taken out and re-seated around
    /// batch delivery so the observer and the slot arrays borrow
    /// disjointly.
    recorder: Option<FlightRecorder>,
    /// The *lockstep hint*: `Some(s)` guarantees every slot in
    /// `current` holds state `s` (in particular, none are retired) —
    /// the dominant shape for a pool spawned together and fed one
    /// message stream. Maintained incrementally by every slot mutation
    /// (spawn, deliver, reset, release, batch) and dropped to `None`
    /// whenever uniformity can't be proven cheaply; consumers may only
    /// rely on `Some`. [`Shard::capture_batch_tail`] uses it to build
    /// the observed-batch ring tail in O(ring capacity) with no pass
    /// over the slot arrays. Never snapshotted (restore starts `None`).
    lockstep: Option<u32>,
    /// One register row of scratch for the pre-batch tail probe (EFSM
    /// tiers only): [`Shard::capture_batch_tail`] re-steps each probed
    /// slot against this copy so guard evaluation can run without the
    /// step's updates touching the live row. Never snapshotted.
    replay_vars: Vec<i64>,
    /// Reverse-order staging for the probed tail (≤ ring capacity).
    replay_tail: Vec<TransitionEvent>,
}

impl Shard {
    fn new(kind: EngineKind) -> Self {
        let (n_regs, scratch) = match &kind {
            EngineKind::Efsm { machine, .. } => {
                (machine.reg_count(), vec![0; machine.scratch_len()])
            }
            _ => (0, Vec::new()),
        };
        Shard {
            kind,
            current: Vec::new(),
            generations: Vec::new(),
            finished: RefCell::new(FinishedBits::default()),
            free: Vec::new(),
            vars: Vec::new(),
            scratch,
            kernel: KernelScratch::new(),
            n_regs,
            steps: 0,
            counters: ShardCounters::new(),
            recorder: None,
            lockstep: None,
            replay_vars: Vec::new(),
            replay_tail: Vec::new(),
        }
    }

    /// The engine's start state id.
    fn start_state(&self) -> u32 {
        match &self.kind {
            EngineKind::Interpreted(m) => m.start().index() as u32,
            EngineKind::Compiled(m) => m.start(),
            EngineKind::Efsm { machine, .. } => machine.start(),
        }
    }

    fn is_finish(&self, state: u32) -> bool {
        match &self.kind {
            EngineKind::Interpreted(m) => m.states()[state as usize].role() == StateRole::Finish,
            EngineKind::Compiled(m) => m.is_finish_state(state),
            EngineKind::Efsm { machine, .. } => machine.is_finish_state(state),
        }
    }

    /// Sessions currently live (spawned and not released).
    fn live(&self) -> usize {
        self.current.len() - self.free.len()
    }

    /// Claims a slot (recycling the free list or growing the arrays)
    /// and starts a fresh execution in it.
    fn spawn_slot(&mut self) -> (u32, u32) {
        let start = self.start_state();
        let slot = match self.free.pop() {
            Some(slot) => {
                self.current[slot as usize] = start;
                self.vars[slot as usize * self.n_regs..][..self.n_regs].fill(0);
                slot
            }
            None => {
                let slot = self.current.len() as u32;
                self.current.push(start);
                self.generations.push(0);
                self.vars.extend(std::iter::repeat_n(0, self.n_regs));
                self.finished.get_mut().grow_for(self.current.len());
                slot
            }
        };
        if self.is_finish(start) {
            let finished = self.finished.get_mut();
            if !finished.dirty {
                finished.set(slot as usize);
            }
        }
        // A spawn keeps the pool lockstep only if it already was (at
        // the start state) or this is the pool's sole slot.
        self.lockstep = if self.current.len() == 1 || self.lockstep == Some(start) {
            Some(start)
        } else {
            None
        };
        self.counters.inc_spawns();
        (slot, self.generations[slot as usize])
    }

    /// Validates a handle against the slot's generation; panics on a
    /// stale or released handle (the use-after-recycle guard).
    #[inline]
    fn check(&self, id: SessionId) {
        let slot = id.slot as usize;
        assert!(
            slot < self.current.len()
                && self.generations[slot] == id.generation
                && self.current[slot] != RETIRED,
            "stale session handle {id:?}: the slot was released and possibly recycled"
        );
    }

    /// Delivers one message to one validated slot.
    #[inline]
    fn deliver_slot(&mut self, id: SessionId, message: MessageId) -> &[Action] {
        self.check(id);
        let slot = id.slot as usize;
        let Shard {
            kind,
            current,
            generations,
            finished,
            vars,
            scratch,
            n_regs,
            steps,
            counters,
            recorder,
            lockstep,
            ..
        } = self;
        counters.add_deliveries(1);
        // One closure records the transition for every tier arm; the
        // recorder stamps the tick.
        let mut observe = |from: u32, to: u32, actions: usize| {
            if let Some(rec) = recorder {
                rec.record(TransitionEvent {
                    slot: slot as u32,
                    generation: generations[slot],
                    from,
                    to,
                    message: message.index() as u32,
                    actions: actions as u32,
                    tick: 0,
                });
            }
        };
        match kind {
            EngineKind::Compiled(m) => match m.step(current[slot], message) {
                Some((target, actions)) => {
                    observe(current[slot], target, actions.len());
                    current[slot] = target;
                    // A single-slot transition splits a lockstep pool
                    // unless it was a self-loop.
                    if *lockstep != Some(target) {
                        *lockstep = None;
                    }
                    *steps += 1;
                    counters.add_transitions(1);
                    if m.is_finish_state(target) {
                        let finished = finished.get_mut();
                        if !finished.dirty {
                            finished.set(slot);
                        }
                    }
                    actions
                }
                None => &[],
            },
            EngineKind::Efsm { machine, binding } => {
                let regs = &mut vars[slot * *n_regs..][..*n_regs];
                match machine.step(current[slot], message, binding, regs, scratch) {
                    Some((target, actions)) => {
                        observe(current[slot], target, actions.len());
                        current[slot] = target;
                        if *lockstep != Some(target) {
                            *lockstep = None;
                        }
                        *steps += 1;
                        counters.add_transitions(1);
                        if machine.is_finish_state(target) {
                            let finished = finished.get_mut();
                            if !finished.dirty {
                                finished.set(slot);
                            }
                        }
                        actions
                    }
                    None => &[],
                }
            }
            EngineKind::Interpreted(m) => {
                let state = &m.states()[current[slot] as usize];
                if state.role() == StateRole::Finish {
                    return &[];
                }
                match state.transition(message) {
                    Some(t) => {
                        let target = t.target().index() as u32;
                        observe(current[slot], target, t.actions().len());
                        current[slot] = target;
                        if *lockstep != Some(target) {
                            *lockstep = None;
                        }
                        *steps += 1;
                        counters.add_transitions(1);
                        if m.states()[target as usize].role() == StateRole::Finish {
                            let finished = finished.get_mut();
                            if !finished.dirty {
                                finished.set(slot);
                            }
                        }
                        t.actions()
                    }
                    None => &[],
                }
            }
        }
    }

    /// Returns a validated slot to the start state (same execution slot,
    /// handle stays valid).
    fn reset_slot(&mut self, id: SessionId) {
        self.check(id);
        let slot = id.slot as usize;
        let start = self.start_state();
        let start_finishes = self.is_finish(start);
        self.counters.add_resets(1);
        self.current[slot] = start;
        self.lockstep = if self.current.len() == 1 || self.lockstep == Some(start) {
            Some(start)
        } else {
            None
        };
        self.vars[slot * self.n_regs..][..self.n_regs].fill(0);
        let finished = self.finished.get_mut();
        if !finished.dirty {
            finished.clear(slot);
            if start_finishes {
                finished.set(slot);
            }
        }
    }

    /// Retires a validated slot to the free list and bumps its
    /// generation, invalidating every outstanding handle to it.
    fn release_slot(&mut self, id: SessionId) {
        self.check(id);
        let slot = id.slot as usize;
        if self.is_finish(self.current[slot]) {
            self.counters.inc_releases_finished();
        } else {
            self.counters.inc_releases_aborted();
        }
        let finished = self.finished.get_mut();
        if !finished.dirty {
            finished.clear(slot);
        }
        self.current[slot] = RETIRED;
        // A retired slot is never uniform with live ones.
        self.lockstep = None;
        self.generations[slot] += 1;
        self.free.push(id.slot);
    }

    fn state_of(&self, id: SessionId) -> u32 {
        self.check(id);
        self.current[id.slot as usize]
    }

    fn state_name_of(&self, id: SessionId) -> &str {
        let state = self.state_of(id);
        self.state_label(state)
    }

    /// Resolves a dense state id to its source-level name without
    /// validating any handle — used by flight-recorder dumps, where the
    /// recorded session may already be retired.
    fn state_label(&self, state: u32) -> &str {
        match &self.kind {
            EngineKind::Interpreted(m) => m.states()[state as usize].name(),
            EngineKind::Compiled(m) => m.state_name(state),
            EngineKind::Efsm { machine, .. } => machine.state_name(state),
        }
    }

    fn vars_of(&self, id: SessionId) -> &[i64] {
        self.check(id);
        match &self.kind {
            EngineKind::Efsm { machine, .. } => {
                &self.vars[id.slot as usize * self.n_regs..][..machine.var_count()]
            }
            _ => &[],
        }
    }

    fn is_finished_slot(&self, id: SessionId) -> bool {
        self.check(id);
        self.sync_finished();
        self.finished.borrow().get(id.slot as usize)
    }

    /// Rebuilds the finished bitset from the state array if a batch
    /// delivery left it stale. O(slots) when dirty, O(1) when clean.
    fn sync_finished(&self) {
        let mut finished = self.finished.borrow_mut();
        if finished.dirty {
            match &self.kind {
                EngineKind::Interpreted(m) => {
                    let states = m.states();
                    finished.rebuild(&self.current, |s| {
                        states[s as usize].role() == StateRole::Finish
                    });
                }
                EngineKind::Compiled(m) => {
                    finished.rebuild(&self.current, |s| m.is_finish_state(s));
                }
                EngineKind::Efsm { machine, .. } => {
                    finished.rebuild(&self.current, |s| machine.is_finish_state(s));
                }
            }
        }
    }

    fn is_live_slot(&self, id: SessionId) -> bool {
        let slot = id.slot as usize;
        slot < self.current.len()
            && self.generations[slot] == id.generation
            && self.current[slot] != RETIRED
    }

    fn state_count(&self) -> usize {
        match &self.kind {
            EngineKind::Interpreted(m) => m.state_count(),
            EngineKind::Compiled(m) => m.state_count(),
            EngineKind::Efsm { machine, .. } => machine.state_count(),
        }
    }

    /// Captures the shard's complete durable state. The finished bitset
    /// is *not* captured — it is derivable from the state array and is
    /// rebuilt lazily on restore.
    fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            current: self.current.clone(),
            generations: self.generations.clone(),
            vars: self.vars.clone(),
            free: self.free.clone(),
            steps: self.steps,
        }
    }

    /// Rebuilds a shard from a snapshot taken under a behaviourally
    /// identical engine (the caller has already matched fingerprints).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is structurally corrupt: mismatched array
    /// lengths, a state id outside the engine's state space, or a
    /// free-list entry that does not point at a retired slot.
    fn restore(kind: EngineKind, snap: &ShardSnapshot) -> Shard {
        let mut shard = Shard::new(kind);
        let slots = snap.current.len();
        assert_eq!(
            snap.generations.len(),
            slots,
            "corrupt shard snapshot: {} generation counters for {slots} slots",
            snap.generations.len(),
        );
        assert_eq!(
            snap.vars.len(),
            slots * shard.n_regs,
            "corrupt shard snapshot: {} registers for {slots} slots of {} registers each",
            snap.vars.len(),
            shard.n_regs,
        );
        let states = shard.state_count() as u32;
        for (slot, &state) in snap.current.iter().enumerate() {
            assert!(
                state == RETIRED || state < states,
                "corrupt shard snapshot: slot {slot} in state {state} but the engine has {states} states",
            );
        }
        for &free in &snap.free {
            assert!(
                snap.current.get(free as usize) == Some(&RETIRED),
                "corrupt shard snapshot: free-list entry {free} is not a retired slot",
            );
        }
        shard.current = snap.current.clone();
        shard.generations = snap.generations.clone();
        shard.vars = snap.vars.clone();
        shard.free = snap.free.clone();
        shard.steps = snap.steps;
        let finished = shard.finished.get_mut();
        finished.grow_for(slots);
        finished.dirty = true;
        shard
    }

    /// Re-targets a shard with no live sessions at a different engine.
    /// Slot count, generation counters, free list and step counter are
    /// preserved — outstanding stale handles stay stale and recycled
    /// slots keep their generation history, so no handle minted under
    /// the old engine can ever silently address a session spawned under
    /// the new one — while the register file and scratch are rebuilt
    /// for the new machine (safe precisely because no slot is live).
    fn rekind_empty(&mut self, kind: EngineKind) {
        debug_assert_eq!(self.live(), 0, "rekind_empty on a shard with live sessions");
        let (n_regs, scratch) = match &kind {
            EngineKind::Efsm { machine, .. } => {
                (machine.reg_count(), vec![0; machine.scratch_len()])
            }
            _ => (0, Vec::new()),
        };
        self.kind = kind;
        self.n_regs = n_regs;
        self.scratch = scratch;
        self.vars = vec![0; self.current.len() * n_regs];
        let finished = self.finished.get_mut();
        finished.clear_all();
        finished.grow_for(self.current.len());
    }

    /// The generic batch hot loop behind [`BatchEngine::deliver_all`].
    ///
    /// Monomorphized per observer: with [`NoopObserver`] the
    /// `on_transition` call is an inlined empty body and the loop
    /// compiles to exactly the unobserved walk (the `runtime_facade`
    /// benchmark row keeps gating it at ≤ 1.10× raw stepping with
    /// telemetry compiled in). With a [`FlightRecorder`] each
    /// transition additionally appends one fixed-size event to the
    /// ring — the production observed path ([`BatchEngine::deliver_all`])
    /// instead replays only the ring-sized tail after an unobserved
    /// pass, and a unit test pins the two paths to identical rings.
    fn deliver_batch<O: RuntimeObserver>(&mut self, message: MessageId, observer: &mut O) -> u64 {
        let live = self.live() as u64;
        let msg_idx = message.index() as u32;
        let Shard {
            kind,
            current,
            generations,
            free,
            vars,
            scratch,
            kernel,
            n_regs,
            steps,
            counters,
            lockstep,
            ..
        } = self;
        let mut transitions = 0;
        match kind {
            EngineKind::Compiled(m) => {
                // Bind the machine as a plain reference so every table
                // pointer is a hoistable loop invariant (not re-derefed
                // through the `Arc` each iteration).
                let m: &CompiledMachine = m;
                // `O::ENABLED` is a monomorphization-time constant, so
                // exactly one branch of each `if` survives per
                // instantiation. The unobserved arm routes through the
                // bucketed batch kernel ([`KernelScratch`]) — `RETIRED`
                // slots land in the kernel's out-of-range skip bucket,
                // so one call covers the dense and recycled cases. The
                // observed loops are written *separately* (not as an
                // observed loop with a dead event block) so their
                // bodies stay literally the pre-telemetry walk.
                if !O::ENABLED {
                    transitions = m.deliver_batch_states(message, current, kernel);
                } else if free.is_empty() {
                    // Observed dense path: the generations ride along
                    // zipped (not indexed), keeping the event build
                    // bounds-check-free.
                    let gens = generations.iter();
                    for (slot, (cur, gen)) in current.iter_mut().zip(gens).enumerate() {
                        if let Some((target, actions)) = m.step(*cur, message) {
                            observer.on_transition(TransitionEvent {
                                slot: slot as u32,
                                generation: *gen,
                                from: *cur,
                                to: target,
                                message: msg_idx,
                                actions: actions.len() as u32,
                                tick: 0,
                            });
                            *cur = target;
                            transitions += 1;
                        }
                    }
                } else {
                    let gens = generations.iter();
                    for (slot, (cur, gen)) in current.iter_mut().zip(gens).enumerate() {
                        if *cur == RETIRED {
                            continue;
                        }
                        if let Some((target, actions)) = m.step(*cur, message) {
                            observer.on_transition(TransitionEvent {
                                slot: slot as u32,
                                generation: *gen,
                                from: *cur,
                                to: target,
                                message: msg_idx,
                                actions: actions.len() as u32,
                                tick: 0,
                            });
                            *cur = target;
                            transitions += 1;
                        }
                    }
                }
            }
            EngineKind::Efsm { machine, binding } => {
                let machine: &CompiledEfsm = machine;
                let binding: &EfsmBinding = binding;
                if !O::ENABLED {
                    transitions = machine
                        .deliver_batch_states(message, binding, current, vars, scratch, kernel);
                } else {
                    let regs = vars.chunks_exact_mut(*n_regs);
                    let walk = current.iter_mut().zip(regs).zip(generations.iter());
                    for (slot, ((cur, regs), gen)) in walk.enumerate() {
                        if *cur == RETIRED {
                            continue;
                        }
                        if let Some((target, actions)) =
                            machine.step(*cur, message, binding, regs, scratch)
                        {
                            observer.on_transition(TransitionEvent {
                                slot: slot as u32,
                                generation: *gen,
                                from: *cur,
                                to: target,
                                message: msg_idx,
                                actions: actions.len() as u32,
                                tick: 0,
                            });
                            *cur = target;
                            transitions += 1;
                        }
                    }
                }
            }
            EngineKind::Interpreted(m) => {
                let states = m.states();
                if !O::ENABLED {
                    for cur in current.iter_mut() {
                        if *cur == RETIRED {
                            continue;
                        }
                        let state = &states[*cur as usize];
                        if state.role() == StateRole::Finish {
                            continue;
                        }
                        if let Some(t) = state.transition(message) {
                            *cur = t.target().index() as u32;
                            transitions += 1;
                        }
                    }
                } else {
                    let gens = generations.iter();
                    for (slot, (cur, gen)) in current.iter_mut().zip(gens).enumerate() {
                        if *cur == RETIRED {
                            continue;
                        }
                        let state = &states[*cur as usize];
                        if state.role() == StateRole::Finish {
                            continue;
                        }
                        if let Some(t) = state.transition(message) {
                            let target = t.target().index() as u32;
                            observer.on_transition(TransitionEvent {
                                slot: slot as u32,
                                generation: *gen,
                                from: *cur,
                                to: target,
                                message: msg_idx,
                                actions: t.actions().len() as u32,
                                tick: 0,
                            });
                            *cur = target;
                            transitions += 1;
                        }
                    }
                }
            }
        }
        // Keep the lockstep hint truthful across the batch: the dense
        // tiers step deterministically by state, so a uniform pool
        // either took the same transition everywhere (uniform at the
        // shared target) or nowhere; EFSM guards read per-slot
        // registers and can split a uniform pool, so any transition
        // drops the hint there.
        if transitions > 0 {
            *lockstep = match kind {
                EngineKind::Efsm { .. } => None,
                _ => lockstep.and(current.first().copied()),
            };
        }
        counters.add_deliveries(live);
        counters.add_transitions(transitions);
        *steps += transitions;
        if transitions > 0 {
            self.finished.get_mut().dirty = true;
        }
        transitions
    }

    /// Probes the flight-recorder tail of a batch *before* running it
    /// (see [`BatchEngine::deliver_all`]).
    ///
    /// A ring of capacity `c` only ever keeps a batch's *last* `c`
    /// transitions, and every engine tier is deterministic, so those
    /// events are computable from the pre-batch state alone: walk the
    /// live state array backwards, re-step each live slot, and stop
    /// once `c` transitions have been found. Running the probe ahead of
    /// the batch means no copy of the slot arrays is ever taken — the
    /// probe reads the arrays the batch is about to overwrite — so the
    /// recording cost is O(probed suffix + c) per batch (O(c) when
    /// transitions are dense at the tail) instead of an O(sessions)
    /// memcpy plus the same scan.
    ///
    /// The EFSM arm must not let [`CompiledEfsm::step`]'s updates touch
    /// the live registers, so each probed slot's row is copied into the
    /// one-row `replay_vars` scratch first and the step runs on the
    /// copy.
    fn capture_batch_tail(&mut self, message: MessageId, capacity: usize) {
        let msg_idx = message.index() as u32;
        // Lockstep fast path: when the hint proves every slot shares
        // one state, the dense tiers' step outcome is decided by a
        // single table probe — the tail is the last `capacity` slots
        // taking that one transition (or empty), built in O(capacity)
        // with no pass over the slot arrays. EFSM guards read per-slot
        // registers, which a shared *state* says nothing about, so that
        // tier always takes the scan below.
        if let Some(state) = self.lockstep {
            let probe = match &self.kind {
                EngineKind::Compiled(m) => {
                    Some(m.step(state, message).map(|(t, a)| (t, a.len() as u32)))
                }
                EngineKind::Interpreted(m) => {
                    let st = &m.states()[state as usize];
                    Some(if st.role() == StateRole::Finish {
                        None
                    } else {
                        st.transition(message)
                            .map(|t| (t.target().index() as u32, t.actions().len() as u32))
                    })
                }
                EngineKind::Efsm { .. } => None,
            };
            if let Some(outcome) = probe {
                self.replay_tail.clear();
                if let Some((target, actions)) = outcome {
                    let n = self.current.len();
                    for slot in (n.saturating_sub(capacity)..n).rev() {
                        self.replay_tail.push(TransitionEvent {
                            slot: slot as u32,
                            generation: self.generations[slot],
                            from: state,
                            to: target,
                            message: msg_idx,
                            actions,
                            tick: 0,
                        });
                    }
                }
                return;
            }
        }
        let Shard {
            kind,
            current,
            generations,
            vars,
            scratch,
            n_regs,
            replay_vars,
            replay_tail,
            ..
        } = self;
        replay_tail.clear();
        match kind {
            EngineKind::Compiled(m) => {
                let m: &CompiledMachine = m;
                for (slot, &pre) in current.iter().enumerate().rev() {
                    if replay_tail.len() == capacity {
                        break;
                    }
                    if pre == RETIRED {
                        continue;
                    }
                    if let Some((target, actions)) = m.step(pre, message) {
                        replay_tail.push(TransitionEvent {
                            slot: slot as u32,
                            generation: generations[slot],
                            from: pre,
                            to: target,
                            message: msg_idx,
                            actions: actions.len() as u32,
                            tick: 0,
                        });
                    }
                }
            }
            EngineKind::Efsm { machine, binding } => {
                let machine: &CompiledEfsm = machine;
                let binding: &EfsmBinding = binding;
                replay_vars.resize(*n_regs, 0);
                for (slot, &pre) in current.iter().enumerate().rev() {
                    if replay_tail.len() == capacity {
                        break;
                    }
                    if pre == RETIRED {
                        continue;
                    }
                    replay_vars.copy_from_slice(&vars[slot * *n_regs..][..*n_regs]);
                    if let Some((target, actions)) =
                        machine.step(pre, message, binding, replay_vars, scratch)
                    {
                        replay_tail.push(TransitionEvent {
                            slot: slot as u32,
                            generation: generations[slot],
                            from: pre,
                            to: target,
                            message: msg_idx,
                            actions: actions.len() as u32,
                            tick: 0,
                        });
                    }
                }
            }
            EngineKind::Interpreted(m) => {
                let states = m.states();
                for (slot, &pre) in current.iter().enumerate().rev() {
                    if replay_tail.len() == capacity {
                        break;
                    }
                    if pre == RETIRED {
                        continue;
                    }
                    let state = &states[pre as usize];
                    if state.role() == StateRole::Finish {
                        continue;
                    }
                    if let Some(t) = state.transition(message) {
                        replay_tail.push(TransitionEvent {
                            slot: slot as u32,
                            generation: generations[slot],
                            from: pre,
                            to: t.target().index() as u32,
                            message: msg_idx,
                            actions: t.actions().len() as u32,
                            tick: 0,
                        });
                    }
                }
            }
        }
    }

    /// Records the tail probed by [`Shard::capture_batch_tail`] once
    /// the batch has reported its transition count: the overwritten
    /// prefix is accounted with [`FlightRecorder::skip_overwritten`],
    /// then the tail lands in forward order — a ring (contents, order,
    /// and derived ticks) bit-identical to per-transition recording.
    fn commit_batch_tail(&mut self, rec: &mut FlightRecorder, transitions: u64) {
        debug_assert_eq!(
            self.replay_tail.len() as u64,
            transitions.min(rec.capacity() as u64),
            "the pre-batch probe and the batch disagree on the tail length"
        );
        rec.skip_overwritten(transitions - self.replay_tail.len() as u64);
        for event in self.replay_tail.drain(..).rev() {
            rec.record(event);
        }
    }
}

impl BatchEngine for Shard {
    fn session_count(&self) -> usize {
        self.current.len()
    }

    fn session_state(&self, session: usize) -> u32 {
        self.current[session]
    }

    fn session_finished(&self, session: usize) -> bool {
        self.sync_finished();
        self.finished.borrow().get(session)
    }

    /// The batch hot loop: a linear walk over the contiguous state (and
    /// register) arrays, skipping retired slots, with no allocation.
    ///
    /// Iterator-based (no bounds checks on the state loads) and free of
    /// finished-set maintenance — a per-transition finish check is a
    /// dependent load that costs 25-50% of raw dispatch, so the batch
    /// path only marks the bitset dirty and queries rebuild it lazily.
    /// The compiled arm therefore compiles to the same loop body as
    /// stepping a bare state array through `CompiledMachine::step`,
    /// plus one predictable retired-slot compare; the `runtime_facade`
    /// benchmark row gates it at ≤ 1.10× raw stepping.
    ///
    /// Dispatches on the recorder statically: the no-recorder path runs
    /// the [`NoopObserver`] instantiation of `Shard::deliver_batch` —
    /// bit-identical codegen to the pre-telemetry loop. The observed
    /// path *probes* the ring's surviving tail before the batch
    /// (engines are deterministic, so a backward scan over the
    /// pre-batch states yields exactly the events a per-transition
    /// observer would have kept), then runs the same unobserved loop at
    /// full speed and commits the probed tail — recording cost is
    /// O(probed suffix + ring capacity) per batch, with no copy of the
    /// slot arrays and no event build inside the hot loop.
    /// `runtime_observed` benches this at ≤ 1.25× the unobserved
    /// facade.
    fn deliver_all(&mut self, message: MessageId) -> u64 {
        match self.recorder.take() {
            Some(mut rec) => {
                self.capture_batch_tail(message, rec.capacity());
                let transitions = self.deliver_batch(message, &mut NoopObserver);
                self.commit_batch_tail(&mut rec, transitions);
                self.recorder = Some(rec);
                transitions
            }
            None => self.deliver_batch(message, &mut NoopObserver),
        }
    }

    fn merge_metrics(&self, into: &mut MetricsSnapshot) {
        self.counters.merge_into(into);
    }

    fn finished_count(&self) -> usize {
        self.sync_finished();
        self.finished.borrow().count
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    /// Returns every *live* slot to the start state; retired slots stay
    /// on the free list.
    fn reset_all(&mut self) {
        self.counters.add_resets(self.live() as u64);
        let start = self.start_state();
        let start_finishes = self.is_finish(start);
        for slot in 0..self.current.len() {
            if self.current[slot] != RETIRED {
                self.current[slot] = start;
            }
        }
        self.lockstep = if self.free.is_empty() {
            Some(start)
        } else {
            None
        };
        self.vars.fill(0);
        let finished = self.finished.get_mut();
        finished.clear_all();
        if start_finishes {
            for slot in 0..self.current.len() {
                if self.current[slot] != RETIRED {
                    finished.set(slot);
                }
            }
        }
        self.steps = 0;
    }
}

/// Persistent parked-worker driver for a sharded [`Runtime`] (see
/// [`Runtime::with_workers`]): a batch *sequence* pays one thread
/// spawn/join total instead of one per batch.
pub type Workers<'a> = ParkedWorkers<'a, Shard>;

/// A point-in-time capture of one session (see [`Runtime::snapshot`]):
/// everything needed to recognise the same execution later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// The dense state id the session was in.
    pub state: u32,
    /// The session's complete register file — declared EFSM variables
    /// first, then any compiler temporaries; empty on the non-register
    /// tiers. Capturing the *full* file (not just the declared
    /// variables) is what makes restoration bit-identical.
    pub vars: Vec<i64>,
    /// The slot generation the snapshot was taken at; a handle with
    /// this generation addresses the captured execution.
    pub generation: u32,
}

/// One shard's durable state inside a [`RuntimeSnapshot`]. The finished
/// bitset is deliberately absent: finish states are absorbing, so it is
/// derivable from the state array and rebuilt lazily after restore.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShardSnapshot {
    current: Vec<u32>,
    generations: Vec<u32>,
    vars: Vec<i64>,
    free: Vec<u32>,
    steps: u64,
}

/// A whole-pool capture of a [`Runtime`] (see [`Runtime::snapshot_all`])
/// restorable with [`Runtime::restore`]: every shard's state array,
/// register file, generation counters, free list and step counter, plus
/// the engine's behavioural fingerprint.
///
/// The fingerprint is the validity criterion: a snapshot restores only
/// into an engine whose [`Engine::fingerprint`] matches — i.e. a
/// behaviourally identical machine, whatever tier it resolved onto.
/// Restoration preserves slot generations, so [`SessionId`]s minted
/// before the snapshot keep addressing their sessions in the restored
/// runtime — recovered peers keep talking to their old sessions.
///
/// Armed timeouts are *not* part of a snapshot: the timer wheel is
/// volatile coordination state, and a restored runtime starts with an
/// empty wheel. Callers re-arm whatever deadlines still matter (a
/// recovering node typically re-arms retry/GC timers from its own
/// durable bookkeeping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeSnapshot {
    fingerprint: u64,
    shards: Vec<ShardSnapshot>,
}

impl RuntimeSnapshot {
    /// The behavioural fingerprint of the engine the snapshot was taken
    /// under (see [`Engine::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Sessions that were live (spawned and not released) at capture.
    pub fn live_sessions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.current.len() - s.free.len())
            .sum()
    }
}

/// The result of [`Runtime::begin_swap`]: how the runtime moved (or is
/// moving) to the incoming engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOutcome {
    /// The incoming engine is behaviourally identical to the serving
    /// one ([`Engine::fingerprint`] matched), so every live session was
    /// migrated in place via snapshot/restore. The swap is complete;
    /// every outstanding [`SessionId`] remains valid.
    Migrated {
        /// Sessions migrated onto the incoming engine.
        sessions: usize,
    },
    /// No session was live, so every shard was re-targeted at the
    /// incoming engine immediately. The swap is complete.
    Completed,
    /// The runtime is draining: new spawns land on the incoming engine,
    /// sessions on the outgoing engine keep being served until they are
    /// released, and [`Runtime::finish_swap`] completes the switch once
    /// [`Runtime::draining_sessions`] reaches zero.
    Draining {
        /// Sessions still live on the outgoing engine.
        sessions: usize,
    },
}

/// An in-progress drain-and-switch (see [`Runtime::begin_swap`]).
#[derive(Debug)]
struct PendingSwap {
    /// The engine being swapped in.
    engine: Engine,
    /// Shard indices still serving the outgoing engine until their
    /// sessions are released.
    draining: Vec<usize>,
    /// Shard indices serving the incoming engine (the only spawn
    /// targets while the swap is in progress).
    incoming: Vec<usize>,
}

/// The serving facade: a pool of concurrent protocol sessions over one
/// owned [`Engine`], with one vocabulary across every execution tier.
///
/// * [`spawn`](Runtime::spawn) / [`spawn_many`](Runtime::spawn_many)
///   start executions and hand out typed [`SessionId`]s;
/// * [`deliver`](Runtime::deliver) steps one session (returning the
///   triggered actions, borrowed — no allocation on any compiled-tier
///   delivery path); [`deliver_all`](Runtime::deliver_all) steps every
///   session, across worker threads when sharded;
/// * [`reset`](Runtime::reset) restarts an execution in place,
///   [`release`](Runtime::release) recycles its slot (bumping the
///   generation, so stale handles fail loudly);
/// * introspection — [`state_name`](Runtime::state_name),
///   [`is_finished`](Runtime::is_finished), [`vars`](Runtime::vars),
///   [`finished_count`](Runtime::finished_count), … — is uniform and
///   allocation-free;
/// * [`begin_swap`](Runtime::begin_swap) /
///   [`finish_swap`](Runtime::finish_swap) /
///   [`abort_swap`](Runtime::abort_swap) roll a *live* runtime onto a
///   new engine — typically loaded from a deployable
///   [`Artifact`](stategen_core::Artifact) — migrating sessions in
///   place when the behavioural fingerprint matches and
///   drain-and-switching otherwise, with incompatible engines rejected
///   before any session moves.
///
/// Sharding is configuration: [`sharded(k)`](Runtime::sharded)
/// partitions future sessions across `k` shards, and batch deliveries
/// step shards on scoped worker threads
/// ([`deliver_all`](Runtime::deliver_all)) or persistent parked ones
/// ([`with_workers`](Runtime::with_workers)). Results are bit-identical
/// to a single shard whatever the scheduling, because sessions never
/// share state.
#[derive(Debug)]
pub struct Runtime {
    engine: Engine,
    pool: ShardedPool<Shard>,
    /// Session deadlines (see [`Runtime::arm_timeout`]); volatile —
    /// deliberately excluded from [`RuntimeSnapshot`]s.
    timers: TimerWheel<SessionId>,
    /// Reused buffer for expired timers in [`Runtime::advance_time`].
    expired_scratch: Vec<SessionId>,
    /// An in-progress drain-and-switch (see [`Runtime::begin_swap`]).
    pending: Option<PendingSwap>,
    /// Runtime-level telemetry (timeouts, swaps, snapshots) — the
    /// per-session counters live on each [`Shard`]. Merged on demand by
    /// [`Runtime::metrics`]; never part of a [`RuntimeSnapshot`].
    counters: RuntimeCounters,
    /// Wall-clock nanoseconds per [`Runtime::deliver_all`] batch, armed
    /// by [`Runtime::attach_recorder`] (boxed: ~8 KiB of buckets).
    batch_latency: Option<Box<LogHistogram>>,
    /// Ring capacity requested by [`Runtime::attach_recorder`], so
    /// shards appended mid-swap get recorders too.
    recorder_capacity: Option<usize>,
    /// The flight-recorder dump captured by the last
    /// [`Runtime::abort_swap`] (see [`Runtime::abort_dump`]).
    abort_dump: Option<String>,
}

impl Runtime {
    /// A runtime over `engine` with one shard and no sessions.
    pub fn new(engine: Engine) -> Self {
        let pool = ShardedPool::new(vec![Shard::new(engine.kind.clone())]);
        Runtime {
            engine,
            pool,
            timers: TimerWheel::new(),
            expired_scratch: Vec::new(),
            pending: None,
            counters: RuntimeCounters::new(),
            batch_latency: None,
            recorder_capacity: None,
            abort_dump: None,
        }
    }

    /// Reconfigures the runtime to `shards` shards. Sharding is pure
    /// configuration — call it once after construction, before spawning.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or sessions have already been spawned
    /// (redistribution would invalidate outstanding [`SessionId`]s).
    pub fn sharded(self, shards: usize) -> Self {
        assert!(shards > 0, "runtime needs at least one shard");
        assert!(
            self.pool.shards().iter().all(|s| s.session_count() == 0),
            "sharded() must be called before spawning sessions"
        );
        let pool = ShardedPool::new(
            (0..shards)
                .map(|_| {
                    let mut shard = Shard::new(self.engine.kind.clone());
                    if let Some(cap) = self.recorder_capacity {
                        shard.recorder = Some(FlightRecorder::new(cap));
                    }
                    shard
                })
                .collect(),
        );
        Runtime {
            engine: self.engine,
            pool,
            timers: TimerWheel::new(),
            expired_scratch: Vec::new(),
            pending: None,
            counters: self.counters,
            batch_latency: self.batch_latency,
            recorder_capacity: self.recorder_capacity,
            abort_dump: self.abort_dump,
        }
    }

    /// The engine this runtime serves.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of shards (worker threads used per batch delivery).
    pub fn shard_count(&self) -> usize {
        self.pool.shard_count()
    }

    /// Looks up a message id by name in O(1) (delegates to
    /// [`Engine::message_id`]).
    pub fn message_id(&self, name: &str) -> Option<MessageId> {
        self.engine.message_id(name)
    }

    /// Starts a fresh execution (recycling a released slot if one is
    /// free, else growing the least-loaded shard) and returns its
    /// handle. Amortised O(1); the only runtime operation that may
    /// allocate, and never per-event.
    ///
    /// While a hot-swap is draining (see [`Runtime::begin_swap`]), new
    /// sessions land only on shards serving the *incoming* engine.
    pub fn spawn(&mut self) -> SessionId {
        let shards = self.pool.shards_mut();
        let shard = match &self.pending {
            Some(p) => p
                .incoming
                .iter()
                .copied()
                .min_by_key(|&i| shards[i].live())
                .expect("a draining swap has at least one incoming shard"),
            None => (0..shards.len())
                .min_by_key(|&i| shards[i].live())
                .expect("runtime has at least one shard"),
        };
        let (slot, generation) = shards[shard].spawn_slot();
        SessionId {
            shard: shard as u32,
            slot,
            generation,
        }
    }

    /// Starts `count` fresh executions, balanced across shards (only
    /// the incoming engine's shards while a hot-swap is draining).
    pub fn spawn_many(&mut self, count: usize) {
        if self.pending.is_some() {
            // Mid-swap spawns are rare and restricted to the incoming
            // shards; route each through the swap-aware single path.
            for _ in 0..count {
                self.spawn();
            }
            return;
        }
        // Spawn shard-by-shard to keep balancing O(shards), not
        // O(count × shards).
        let shards = self.pool.shards_mut();
        let k = shards.len();
        let target = {
            let live: usize = shards.iter().map(Shard::live).sum();
            (live + count).div_ceil(k)
        };
        let mut remaining = count;
        for shard in shards.iter_mut() {
            while remaining > 0 && shard.live() < target {
                shard.spawn_slot();
                remaining -= 1;
            }
        }
        // Remainder (every shard at target): round-robin.
        while remaining > 0 {
            self.spawn();
            remaining -= 1;
        }
    }

    /// Sessions currently live (spawned and not released).
    pub fn len(&self) -> usize {
        self.pool.shards().iter().map(Shard::live).sum()
    }

    /// `true` if no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Delivers a message to one session; returns the triggered
    /// actions, borrowed from the engine (no allocation on any
    /// compiled-tier path). Finished sessions absorb every message.
    ///
    /// `message` must come from this runtime's engine (via
    /// [`Runtime::message_id`] / [`Engine::message_id`]).
    ///
    /// # Panics
    ///
    /// Panics if `session` is stale — its slot was
    /// [`release`](Runtime::release)d (and possibly recycled into a new
    /// execution). This is the typed-handle guarantee: a handle to a
    /// dead execution can never silently address a live one.
    #[inline]
    pub fn deliver(&mut self, session: SessionId, message: MessageId) -> &[Action] {
        self.pool.shards_mut()[session.shard as usize].deliver_slot(session, message)
    }

    /// Non-panicking form of [`Runtime::deliver`], for inputs from
    /// untrusted sources (deserialized, long-stored, or cross-component
    /// handles that may outlive their execution): a stale or recycled
    /// generational handle returns [`StategenError::StaleSession`]
    /// instead of panicking, and a message id out of range for this
    /// engine's alphabet returns [`StategenError::MessageOutOfRange`]
    /// instead of silently dispatching from the wrong table cell. Valid
    /// inputs behave exactly like [`Runtime::deliver`]: the triggered
    /// actions are returned, borrowed, with no allocation on any
    /// compiled-tier path.
    ///
    /// The staleness check is scoped to handles *this runtime minted*:
    /// a [`SessionId`] carries no runtime identity, so a handle from a
    /// *different* runtime is rejected only when its coordinates do not
    /// resolve here (shard out of range, unused slot, generation
    /// mismatch) — one whose coordinates happen to collide with a live
    /// session is indistinguishable from that session's own handle. Do
    /// not mix handles across runtimes.
    ///
    /// # Errors
    ///
    /// [`StategenError::StaleSession`] if `session` does not address a
    /// live execution in this runtime;
    /// [`StategenError::MessageOutOfRange`] if `message` was minted by
    /// a machine with a larger alphabet.
    pub fn try_deliver(
        &mut self,
        session: SessionId,
        message: MessageId,
    ) -> Result<&[Action], StategenError> {
        let alphabet = self.engine.messages().len();
        if message.index() >= alphabet {
            return Err(StategenError::MessageOutOfRange {
                index: message.index(),
                messages: alphabet,
            });
        }
        let stale = StategenError::StaleSession {
            shard: session.shard(),
            slot: session.slot(),
            generation: session.generation(),
        };
        let Some(shard) = self.pool.shards_mut().get_mut(session.shard as usize) else {
            return Err(stale);
        };
        if !shard.is_live_slot(session) {
            return Err(stale);
        }
        Ok(shard.deliver_slot(session, message))
    }

    /// Delivers a message to every live session — one scoped worker
    /// thread per shard when sharded — and returns the number of
    /// transitions taken.
    ///
    /// While a recorder is attached (see [`Runtime::attach_recorder`])
    /// the batch's wall-clock latency is also recorded into
    /// [`Runtime::batch_latency`]; unobserved runtimes skip the clock
    /// reads entirely.
    pub fn deliver_all(&mut self, message: MessageId) -> u64 {
        match &mut self.batch_latency {
            Some(hist) => {
                let start = Instant::now();
                let transitions = self.pool.deliver_all(message);
                hist.record(start.elapsed().as_nanos() as u64);
                transitions
            }
            None => self.pool.deliver_all(message),
        }
    }

    /// Runs `f` with persistent parked workers, one per shard: a batch
    /// *sequence* pays one thread spawn/join total instead of one per
    /// [`Runtime::deliver_all`] call. With one shard no thread is
    /// spawned and batches run inline.
    pub fn with_workers<R>(&mut self, f: impl FnOnce(&mut Workers<'_>) -> R) -> R {
        self.pool.with_workers(f)
    }

    /// Runs `f` with `workers` persistent *work-stealing* threads over
    /// the shards (see [`ShardedPool::with_stealing_workers`]): the
    /// multi-core layer when the runtime holds more shards than the
    /// machine has cores. Each worker drains its own deque of shards
    /// and steals from the others when idle; every shard is stepped by
    /// exactly one worker per batch, so results are bit-identical to
    /// [`Runtime::deliver_all`] whatever the interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_stealing_workers<R>(
        &mut self,
        workers: usize,
        f: impl FnOnce(&mut StealingWorkers<'_, Shard>) -> R,
    ) -> R {
        self.pool.with_stealing_workers(workers, f)
    }

    /// Returns one session to the start state (same slot, handle stays
    /// valid) for a fresh execution.
    ///
    /// # Panics
    ///
    /// Panics if `session` is stale (see [`Runtime::deliver`]).
    pub fn reset(&mut self, session: SessionId) {
        self.pool.shards_mut()[session.shard as usize].reset_slot(session);
    }

    /// Returns every live session to the start state.
    pub fn reset_all(&mut self) {
        self.pool.reset_all();
    }

    /// Ends an execution and recycles its slot through the free list.
    /// The slot's generation is bumped: every outstanding handle to the
    /// released execution becomes stale and will panic if used.
    ///
    /// # Panics
    ///
    /// Panics if `session` is already stale (double release).
    pub fn release(&mut self, session: SessionId) {
        self.pool.shards_mut()[session.shard as usize].release_slot(session);
        if self.timers.cancel(&session) {
            self.counters.inc_timeouts_cancelled();
        }
    }

    /// `true` while `session` addresses a live execution (its slot has
    /// not been released/recycled). The non-panicking validity probe.
    pub fn is_live(&self, session: SessionId) -> bool {
        self.pool
            .shards()
            .get(session.shard as usize)
            .is_some_and(|s| s.is_live_slot(session))
    }

    /// The dense state id of a session.
    ///
    /// # Panics
    ///
    /// Panics if `session` is stale.
    pub fn state(&self, session: SessionId) -> u32 {
        self.pool.shards()[session.shard as usize].state_of(session)
    }

    /// Display name of a session's state, borrowed from the engine.
    ///
    /// # Panics
    ///
    /// Panics if `session` is stale.
    pub fn state_name(&self, session: SessionId) -> &str {
        self.pool.shards()[session.shard as usize].state_name_of(session)
    }

    /// A session's EFSM variable registers, in declaration order (empty
    /// on non-EFSM tiers).
    ///
    /// # Panics
    ///
    /// Panics if `session` is stale.
    pub fn vars(&self, session: SessionId) -> &[i64] {
        self.pool.shards()[session.shard as usize].vars_of(session)
    }

    /// `true` once a session has reached a finish state.
    ///
    /// # Panics
    ///
    /// Panics if `session` is stale.
    pub fn is_finished(&self, session: SessionId) -> bool {
        self.pool.shards()[session.shard as usize].is_finished_slot(session)
    }

    /// Number of live finished sessions.
    ///
    /// Tracked incrementally by the single-session paths (O(shards)
    /// while only [`Runtime::deliver`]/[`Runtime::reset`]/
    /// [`Runtime::release`] have run), but a
    /// [`Runtime::deliver_all`] batch leaves the finished bitset stale
    /// — keeping the batch hot loop free of per-transition finish
    /// checks — so the first query after a batch rebuilds it at O(live
    /// sessions) per dirty shard. Poll between batches, not inside a
    /// per-delivery hot path.
    pub fn finished_count(&self) -> usize {
        self.pool.finished_count()
    }

    /// `true` once every live session has finished.
    pub fn all_finished(&self) -> bool {
        self.finished_count() == self.len()
    }

    /// Total transitions taken across all sessions.
    pub fn steps(&self) -> u64 {
        self.pool.steps()
    }

    /// A [`ProtocolEngine`] view of one session, for code written
    /// against the trait vocabulary (equivalence suites, generic
    /// drivers).
    pub fn session(&mut self, id: SessionId) -> Session<'_> {
        Session { runtime: self, id }
    }

    /// The `StaleSession` error for a handle that failed validation.
    fn stale(session: SessionId) -> StategenError {
        StategenError::StaleSession {
            shard: session.shard(),
            slot: session.slot(),
            generation: session.generation(),
        }
    }

    /// Validates a handle fallibly, returning its shard.
    fn live_shard(&self, session: SessionId) -> Result<&Shard, StategenError> {
        let shard = self
            .pool
            .shards()
            .get(session.shard as usize)
            .ok_or_else(|| Runtime::stale(session))?;
        if !shard.is_live_slot(session) {
            return Err(Runtime::stale(session));
        }
        Ok(shard)
    }

    /// Validates a handle fallibly, returning its shard mutably.
    fn live_shard_mut(&mut self, session: SessionId) -> Result<&mut Shard, StategenError> {
        let shard = self
            .pool
            .shards_mut()
            .get_mut(session.shard as usize)
            .ok_or_else(|| Runtime::stale(session))?;
        if !shard.is_live_slot(session) {
            return Err(Runtime::stale(session));
        }
        Ok(shard)
    }

    /// Non-panicking form of [`Runtime::reset`]: returns the session to
    /// the start state, or [`StategenError::StaleSession`] if the
    /// handle no longer addresses a live execution.
    ///
    /// # Errors
    ///
    /// [`StategenError::StaleSession`] if `session` is stale.
    pub fn try_reset(&mut self, session: SessionId) -> Result<(), StategenError> {
        self.live_shard_mut(session)?.reset_slot(session);
        Ok(())
    }

    /// Non-panicking form of [`Runtime::release`]: recycles the slot
    /// (bumping its generation and cancelling any armed timeout), or
    /// returns [`StategenError::StaleSession`] — so a double release is
    /// an error, not a panic.
    ///
    /// # Errors
    ///
    /// [`StategenError::StaleSession`] if `session` is stale.
    pub fn try_release(&mut self, session: SessionId) -> Result<(), StategenError> {
        self.live_shard_mut(session)?.release_slot(session);
        if self.timers.cancel(&session) {
            self.counters.inc_timeouts_cancelled();
        }
        Ok(())
    }

    /// Non-panicking form of [`Runtime::state`].
    ///
    /// # Errors
    ///
    /// [`StategenError::StaleSession`] if `session` is stale.
    pub fn try_state(&self, session: SessionId) -> Result<u32, StategenError> {
        Ok(self.live_shard(session)?.state_of(session))
    }

    /// Non-panicking form of [`Runtime::vars`].
    ///
    /// # Errors
    ///
    /// [`StategenError::StaleSession`] if `session` is stale.
    pub fn try_vars(&self, session: SessionId) -> Result<&[i64], StategenError> {
        Ok(self.live_shard(session)?.vars_of(session))
    }

    /// Captures one live session: state id, full register file and the
    /// handle generation (see [`SessionSnapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if `session` is stale.
    pub fn snapshot(&self, session: SessionId) -> SessionSnapshot {
        let shard = &self.pool.shards()[session.shard as usize];
        shard.check(session);
        self.counters.inc_snapshots();
        let slot = session.slot as usize;
        SessionSnapshot {
            state: shard.current[slot],
            vars: shard.vars[slot * shard.n_regs..][..shard.n_regs].to_vec(),
            generation: session.generation,
        }
    }

    /// Captures the whole pool — every shard's sessions, registers,
    /// generations, free lists and step counters — tagged with the
    /// engine's fingerprint. Restore with [`Runtime::restore`].
    ///
    /// Armed timeouts are not captured (see [`RuntimeSnapshot`]).
    ///
    /// # Panics
    ///
    /// Panics while a hot-swap is draining: a mixed-engine pool has no
    /// single fingerprint to restore under. Finish or abort the swap
    /// first (crash recovery composes with hot-swap by restoring the
    /// last pre-swap checkpoint and re-attempting the rollout).
    pub fn snapshot_all(&self) -> RuntimeSnapshot {
        assert!(
            self.pending.is_none(),
            "cannot snapshot during a draining hot-swap; finish or abort it first"
        );
        self.counters.inc_snapshots();
        RuntimeSnapshot {
            fingerprint: self.engine.fingerprint(),
            shards: self.pool.shards().iter().map(Shard::snapshot).collect(),
        }
    }

    /// Rebuilds a runtime from a [`RuntimeSnapshot`], validated against
    /// `engine`'s behavioural fingerprint: a snapshot restores only
    /// into a behaviourally identical machine (any tier). The restored
    /// pool is bit-identical to the captured one — states, registers,
    /// free lists, step counters *and slot generations*, so
    /// [`SessionId`]s minted before the crash keep addressing their
    /// sessions.
    ///
    /// The timer wheel starts empty; re-arm deadlines that still matter.
    ///
    /// # Errors
    ///
    /// [`StategenError::SnapshotMismatch`] if the snapshot was taken
    /// under an engine with a different fingerprint.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is structurally corrupt (impossible for a
    /// snapshot produced by [`Runtime::snapshot_all`]).
    pub fn restore(engine: &Engine, snapshot: &RuntimeSnapshot) -> Result<Runtime, StategenError> {
        if engine.fingerprint() != snapshot.fingerprint {
            return Err(StategenError::SnapshotMismatch {
                expected: engine.fingerprint(),
                found: snapshot.fingerprint,
            });
        }
        assert!(
            !snapshot.shards.is_empty(),
            "corrupt runtime snapshot: zero shards"
        );
        let shards = snapshot
            .shards
            .iter()
            .map(|s| Shard::restore(engine.kind.clone(), s))
            .collect();
        let runtime = Runtime {
            engine: engine.clone(),
            pool: ShardedPool::new(shards),
            timers: TimerWheel::new(),
            expired_scratch: Vec::new(),
            pending: None,
            counters: RuntimeCounters::new(),
            batch_latency: None,
            recorder_capacity: None,
            abort_dump: None,
        };
        runtime.counters.inc_restores();
        Ok(runtime)
    }

    /// Begins a drain-and-switch hot-swap to `incoming` — the live
    /// half of a fleet protocol-version rollout: load the new version's
    /// [`Artifact`](stategen_core::Artifact) into an
    /// [`Engine`](Engine::from_artifact), then swap it in without
    /// dropping in-flight sessions.
    ///
    /// Three outcomes, decided *before any session moves*:
    ///
    /// * **Migrated** — `incoming` has the same behavioural fingerprint
    ///   as the serving engine (same machine, any tier/provenance):
    ///   every live session is migrated in place via snapshot/restore,
    ///   all handles stay valid, and the swap completes immediately.
    /// * **Completed** — different behaviour but no live sessions:
    ///   every shard is re-targeted immediately.
    /// * **Draining** — different behaviour with live sessions: those
    ///   sessions keep being served by the outgoing engine until
    ///   [`release`](Runtime::release)d, new spawns land on the
    ///   incoming engine, and [`Runtime::finish_swap`] completes the
    ///   switch once [`Runtime::draining_sessions`] reaches zero.
    ///   [`Runtime::abort_swap`] rolls back instead.
    ///
    /// An incompatible engine is rejected with the runtime untouched:
    /// behaviourally different engines may only swap when their message
    /// alphabets are identical, because both serve the same
    /// [`MessageId`]s during the drain.
    ///
    /// # Errors
    ///
    /// [`SwapError::AlreadyInProgress`] if a swap is draining;
    /// [`SwapError::AlphabetMismatch`] if the alphabets differ (both
    /// via [`StategenError::Swap`]).
    pub fn begin_swap(&mut self, incoming: Engine) -> Result<SwapOutcome, StategenError> {
        if self.pending.is_some() {
            return Err(SwapError::AlreadyInProgress.into());
        }
        if incoming.fingerprint() == self.engine.fingerprint() {
            // Behaviourally identical: migrate every session in place.
            // State ids and registers are meaningful under the incoming
            // engine by the fingerprint's definition, and Shard::restore
            // re-validates them structurally.
            let sessions = self.len();
            for shard in self.pool.shards_mut() {
                // Shard::restore builds a fresh shard; telemetry is not
                // part of durable state, so carry the counters and the
                // recorder ring across the migration by hand.
                let mut migrated = Shard::restore(incoming.kind.clone(), &shard.snapshot());
                migrated.counters = shard.counters.clone();
                migrated.recorder = shard.recorder.take();
                *shard = migrated;
            }
            self.engine = incoming;
            self.counters.add_swap_migrated(sessions as u64);
            self.counters.inc_swaps_completed();
            return Ok(SwapOutcome::Migrated { sessions });
        }
        if incoming.messages() != self.engine.messages() {
            return Err(SwapError::AlphabetMismatch {
                serving: self.engine.messages().len(),
                incoming: incoming.messages().len(),
            }
            .into());
        }
        let mut draining = Vec::new();
        let mut fresh = Vec::new();
        for (i, shard) in self.pool.shards_mut().iter_mut().enumerate() {
            if shard.live() == 0 {
                shard.rekind_empty(incoming.kind.clone());
                fresh.push(i);
            } else {
                draining.push(i);
            }
        }
        if draining.is_empty() {
            self.engine = incoming;
            self.counters.inc_swaps_completed();
            return Ok(SwapOutcome::Completed);
        }
        if fresh.is_empty() {
            // Every shard is draining: append fresh shards for the
            // incoming engine (matching the outgoing parallelism) so
            // new spawns have somewhere to land. Appending never
            // disturbs existing shard indices or handles.
            for _ in 0..draining.len() {
                fresh.push(self.pool.shard_count());
                let mut shard = Shard::new(incoming.kind.clone());
                if let Some(cap) = self.recorder_capacity {
                    shard.recorder = Some(FlightRecorder::new(cap));
                }
                self.pool.push(shard);
            }
        }
        let sessions = draining.iter().map(|&i| self.pool.shards()[i].live()).sum();
        self.pending = Some(PendingSwap {
            engine: incoming,
            draining,
            incoming: fresh,
        });
        self.counters.inc_swaps_drained();
        Ok(SwapOutcome::Draining { sessions })
    }

    /// Completes a draining hot-swap: once every session on the
    /// outgoing engine has been released, the drained shards are
    /// re-targeted at the incoming engine (generation history intact,
    /// so pre-swap handles stay loudly stale) and it becomes the
    /// serving [`Runtime::engine`].
    ///
    /// # Errors
    ///
    /// [`SwapError::NotInProgress`] if no swap is draining;
    /// [`SwapError::Draining`] (with the live count) if sessions still
    /// hold the outgoing engine — note a *finished* session still
    /// counts until it is [`release`](Runtime::release)d (both via
    /// [`StategenError::Swap`]).
    pub fn finish_swap(&mut self) -> Result<(), StategenError> {
        let Some(pending) = &self.pending else {
            return Err(SwapError::NotInProgress.into());
        };
        let remaining: usize = pending
            .draining
            .iter()
            .map(|&i| self.pool.shards()[i].live())
            .sum();
        if remaining > 0 {
            return Err(SwapError::Draining { remaining }.into());
        }
        let pending = self.pending.take().expect("checked above");
        for &i in &pending.draining {
            self.pool.shards_mut()[i].rekind_empty(pending.engine.kind.clone());
        }
        self.engine = pending.engine;
        self.counters.inc_swaps_completed();
        Ok(())
    }

    /// Rolls back a draining hot-swap: sessions spawned on the incoming
    /// engine since [`Runtime::begin_swap`] are force-released (their
    /// handles become stale and their timeouts are cancelled — the cost
    /// of aborting a rollout), the incoming shards are re-targeted back
    /// at the outgoing engine, and the runtime serves exactly the
    /// engine it served before the swap began. Returns how many
    /// incoming-engine sessions were dropped.
    ///
    /// Shards appended for the swap are kept (re-targeted, empty) —
    /// never removed, so slot generations can never restart and collide
    /// with handles minted during the aborted swap.
    ///
    /// # Errors
    ///
    /// [`SwapError::NotInProgress`] (via [`StategenError::Swap`]) if no
    /// swap is draining.
    pub fn abort_swap(&mut self) -> Result<usize, StategenError> {
        let Some(pending) = self.pending.take() else {
            return Err(SwapError::NotInProgress.into());
        };
        self.counters.inc_swaps_aborted();
        // Capture the trace *before* the force-release below retires
        // the incoming sessions and re-targets their shards (which
        // would invalidate the dump's state labels).
        if self.recorder_capacity.is_some() {
            self.abort_dump = Some(self.dump_trace());
        }
        let mut dropped = 0;
        for &i in &pending.incoming {
            let shard = &mut self.pool.shards_mut()[i];
            for slot in 0..shard.current.len() {
                if shard.current[slot] == RETIRED {
                    continue;
                }
                let id = SessionId {
                    shard: i as u32,
                    slot: slot as u32,
                    generation: shard.generations[slot],
                };
                shard.release_slot(id);
                self.timers.cancel(&id);
                dropped += 1;
            }
            self.pool.shards_mut()[i].rekind_empty(self.engine.kind.clone());
        }
        Ok(dropped)
    }

    /// `true` while a hot-swap is draining (between a
    /// [`SwapOutcome::Draining`] and the matching
    /// [`finish_swap`](Runtime::finish_swap) /
    /// [`abort_swap`](Runtime::abort_swap)).
    pub fn swap_in_progress(&self) -> bool {
        self.pending.is_some()
    }

    /// Sessions still live on the outgoing engine of a draining
    /// hot-swap (0 when no swap is in progress). The swap can
    /// [`finish`](Runtime::finish_swap) once this reaches zero.
    pub fn draining_sessions(&self) -> usize {
        self.pending.as_ref().map_or(0, |p| {
            p.draining
                .iter()
                .map(|&i| self.pool.shards()[i].live())
                .sum()
        })
    }

    /// The engine a draining hot-swap is switching to, if one is in
    /// progress.
    pub fn incoming_engine(&self) -> Option<&Engine> {
        self.pending.as_ref().map(|p| &p.engine)
    }

    /// Arms (or moves) a timeout for one live session. When
    /// [`Runtime::advance_time`] passes `deadline`, the session is
    /// delivered the caller's timeout message through the normal
    /// delivery path — timeouts are just transitions. One deadline per
    /// session: re-arming moves it. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `session` is stale.
    pub fn arm_timeout(&mut self, session: SessionId, deadline: u64) {
        self.pool.shards()[session.shard as usize].check(session);
        self.timers.arm(session, deadline);
    }

    /// Cancels a session's armed timeout; returns `true` if one was
    /// armed. O(1); never panics (a stale handle simply has no timer —
    /// [`Runtime::release`] cancels eagerly).
    pub fn cancel_timeout(&mut self, session: SessionId) -> bool {
        let cancelled = self.timers.cancel(&session);
        if cancelled {
            self.counters.inc_timeouts_cancelled();
        }
        cancelled
    }

    /// Advances the timer clock to `now` and delivers `timeout` to
    /// every session whose deadline passed, in deadline order (ties in
    /// arm order), through the normal delivery path. Sessions released
    /// after arming are skipped (their generational key no longer
    /// addresses a live execution); finished sessions absorb the
    /// message like any other. Returns how many sessions were delivered
    /// the timeout.
    ///
    /// No full-session scan happens here — cost is O(expired) plus the
    /// wheel's slot bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than a previous `advance_time` call
    /// (the timer clock is monotone).
    pub fn advance_time(&mut self, now: u64, timeout: MessageId) -> usize {
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.clear();
        expired.extend_from_slice(self.timers.advance(now));
        let mut delivered = 0;
        for &session in &expired {
            let Some(shard) = self.pool.shards_mut().get_mut(session.shard as usize) else {
                continue;
            };
            if !shard.is_live_slot(session) {
                continue;
            }
            shard.deliver_slot(session, timeout);
            delivered += 1;
        }
        self.expired_scratch = expired;
        self.counters.add_timeouts_fired(delivered as u64);
        delivered
    }

    /// A lower bound on the earliest armed deadline, if any timer is
    /// armed — a wake-up hint for callers that sleep between
    /// [`Runtime::advance_time`] calls (see
    /// [`TimerWheel::next_deadline`]).
    pub fn next_timeout(&self) -> Option<u64> {
        self.timers.next_deadline()
    }

    /// Number of currently armed timeouts.
    pub fn pending_timeouts(&self) -> usize {
        self.timers.len()
    }

    /// A point-in-time [`MetricsSnapshot`] of every telemetry counter:
    /// per-shard session counters (deliveries, transitions, guard
    /// fall-throughs, spawns, releases, resets) merged with the
    /// runtime-level ones (timeouts, timer cascades, swaps, snapshots,
    /// restores). O(shards); never blocks delivery — the counters are
    /// relaxed atomics written by at most one thread each.
    ///
    /// Counters are always on: they cost one cache-local add per event
    /// and need no [`Runtime::attach_recorder`] call.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.pool.metrics();
        self.counters.merge_into(&mut snap);
        snap.timer_cascades = self.timers.cascades();
        snap
    }

    /// Attaches a flight recorder: every shard gets a fixed-capacity
    /// ring (rounded up to a power of two) retaining its last
    /// `capacity` transitions, and [`Runtime::deliver_all`] starts
    /// recording per-batch wall-clock latency into
    /// [`Runtime::batch_latency`]. Idempotent re-attach clears the
    /// rings. Allocation happens *here*, once — the per-transition
    /// record path never allocates.
    ///
    /// Observation never changes behaviour: delivered actions, states,
    /// snapshots and swap outcomes are bit-identical with or without a
    /// recorder attached (the unobserved path is a statically-dispatched
    /// no-op, not a branch per event).
    pub fn attach_recorder(&mut self, capacity: usize) {
        self.recorder_capacity = Some(capacity);
        for shard in self.pool.shards_mut() {
            shard.recorder = Some(FlightRecorder::new(capacity));
        }
        self.batch_latency = Some(Box::new(LogHistogram::new()));
    }

    /// Detaches the flight recorder (and the batch-latency histogram),
    /// returning the runtime to the provably-free unobserved path.
    /// Counters stay on; a pending [`Runtime::abort_dump`] is kept.
    pub fn detach_recorder(&mut self) {
        self.recorder_capacity = None;
        for shard in self.pool.shards_mut() {
            shard.recorder = None;
        }
        self.batch_latency = None;
    }

    /// `true` while a flight recorder is attached.
    pub fn recorder_attached(&self) -> bool {
        self.recorder_capacity.is_some()
    }

    /// Wall-clock nanoseconds per [`Runtime::deliver_all`] batch,
    /// recorded while a recorder is attached (`None` otherwise).
    pub fn batch_latency(&self) -> Option<&LogHistogram> {
        self.batch_latency.as_deref()
    }

    /// Renders every shard's flight-recorder ring as a human-readable
    /// trace, oldest event first — the post-mortem artifact printed on
    /// invariant failures and captured by [`Runtime::abort_swap`].
    /// State ids recorded under a since-swapped-out engine that no
    /// longer resolve are rendered as `state#N`.
    pub fn dump_trace(&self) -> String {
        let mut out = String::new();
        let messages = self.engine.messages();
        for (i, shard) in self.pool.shards().iter().enumerate() {
            let Some(rec) = &shard.recorder else { continue };
            let _ = writeln!(
                out,
                "shard {i}: retaining {} of {} recorded transitions",
                rec.len(),
                rec.recorded(),
            );
            let label = |state: u32| -> String {
                if (state as usize) < shard.state_count() {
                    shard.state_label(state).to_string()
                } else {
                    format!("state#{state}")
                }
            };
            for event in rec.iter() {
                let message = messages
                    .get(event.message as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                let _ = writeln!(
                    out,
                    "  [{:>6}] s{}g{}: {} --{}--> {} ({} actions)",
                    event.tick,
                    event.slot,
                    event.generation,
                    label(event.from),
                    message,
                    label(event.to),
                    event.actions,
                );
            }
        }
        if out.is_empty() {
            out.push_str("flight recorder not attached\n");
        }
        out
    }

    /// The flight-recorder dump captured by the last
    /// [`Runtime::abort_swap`] while a recorder was attached (`None`
    /// otherwise): what every session was doing when the rollout was
    /// rolled back.
    pub fn abort_dump(&self) -> Option<&str> {
        self.abort_dump.as_deref()
    }
}

/// A borrowed [`ProtocolEngine`] view of one [`Runtime`] session (see
/// [`Runtime::session`]).
#[derive(Debug)]
pub struct Session<'r> {
    runtime: &'r mut Runtime,
    id: SessionId,
}

impl Session<'_> {
    /// The handle this view addresses.
    pub fn id(&self) -> SessionId {
        self.id
    }
}

impl ProtocolEngine for Session<'_> {
    fn deliver_ref(&mut self, message: &str) -> Result<&[Action], InterpError> {
        let id = self
            .runtime
            .message_id(message)
            .ok_or_else(|| InterpError::UnknownMessage(message.to_string()))?;
        Ok(self.runtime.deliver(self.id, id))
    }

    fn is_finished(&self) -> bool {
        self.runtime.is_finished(self.id)
    }

    fn state_name(&self) -> Cow<'_, str> {
        Cow::Borrowed(self.runtime.state_name(self.id))
    }

    fn reset(&mut self) {
        self.runtime.reset(self.id);
    }
}

#[cfg(test)]
mod tests {
    use stategen_core::{StateMachine, StateMachineBuilder, StateRole};

    use super::*;
    use crate::engine::{Engine, Tier};
    use crate::spec::Spec;

    fn finishing_machine() -> StateMachine {
        let mut b = StateMachineBuilder::new("m", ["a", "b"]);
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let fin = b.add_state_full("FINISHED", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", s1, vec![Action::send("x")]);
        b.add_transition(s1, "a", fin, vec![]);
        b.build(s0)
    }

    fn compiled_runtime() -> Runtime {
        Engine::compile(Spec::machine(finishing_machine()))
            .unwrap()
            .runtime()
    }

    #[test]
    fn spawn_deliver_walks_to_finish() {
        let mut rt = compiled_runtime();
        let a = rt.message_id("a").unwrap();
        let s = rt.spawn();
        assert_eq!(rt.deliver(s, a), [Action::send("x")]);
        assert_eq!(rt.state_name(s), "s1");
        assert!(rt.deliver(s, a).is_empty());
        assert!(rt.is_finished(s));
        assert_eq!(rt.steps(), 2);
        // Finished sessions absorb.
        assert!(rt.deliver(s, a).is_empty());
        assert_eq!(rt.steps(), 2);
    }

    #[test]
    fn release_recycles_slot_with_fresh_generation() {
        let mut rt = compiled_runtime();
        let a = rt.message_id("a").unwrap();
        let first = rt.spawn();
        rt.deliver(first, a);
        rt.release(first);
        assert!(!rt.is_live(first));
        assert_eq!(rt.len(), 0);
        let second = rt.spawn();
        // Same slot, next generation: the handle is distinguishable.
        assert_eq!(second.slot(), first.slot());
        assert_eq!(second.generation(), first.generation() + 1);
        assert_eq!(format!("{first:?}"), "s0:0");
        assert_eq!(format!("{second:?}"), "s0:0#1");
        // The recycled slot starts a fresh execution.
        assert_eq!(rt.state_name(second), "s0");
    }

    #[test]
    fn try_deliver_accepts_live_and_rejects_stale_handles() {
        let mut rt = compiled_runtime();
        let a = rt.message_id("a").unwrap();
        let s = rt.spawn();
        // Live handle: identical behaviour to `deliver`.
        assert_eq!(rt.try_deliver(s, a).unwrap(), [Action::send("x")]);
        assert_eq!(rt.state_name(s), "s1");
        // Released handle: an error, not a panic.
        rt.release(s);
        assert_eq!(
            rt.try_deliver(s, a),
            Err(StategenError::StaleSession {
                shard: 0,
                slot: 0,
                generation: 0
            })
        );
        // Recycled slot: the stale generation still fails loudly while
        // the fresh handle keeps working.
        let fresh = rt.spawn();
        assert!(matches!(
            rt.try_deliver(s, a),
            Err(StategenError::StaleSession { generation: 0, .. })
        ));
        assert!(rt.try_deliver(fresh, a).is_ok());
        let err = rt.try_deliver(s, a).unwrap_err();
        assert!(err.to_string().contains("stale session handle s0:0#0"));
    }

    #[test]
    fn try_deliver_rejects_foreign_message_ids() {
        // A message id minted by a machine with a larger alphabet must
        // not index the wrong table cell: error, not misdelivery.
        let mut wide = StateMachineBuilder::new("wide", ["a", "b", "c", "d"]);
        let s0 = wide.add_state("s0");
        wide.add_transition(s0, "d", s0, vec![]);
        let wide_engine = Engine::compile(Spec::machine(wide.build(s0))).unwrap();
        let foreign_mid = wide_engine.message_id("d").unwrap();

        let mut rt = compiled_runtime(); // two-message alphabet
        let s = rt.spawn();
        assert_eq!(
            rt.try_deliver(s, foreign_mid),
            Err(StategenError::MessageOutOfRange {
                index: 3,
                messages: 2
            })
        );
        // The session is untouched and still deliverable.
        let a = rt.message_id("a").unwrap();
        assert_eq!(rt.try_deliver(s, a).unwrap(), [Action::send("x")]);
    }

    #[test]
    fn try_deliver_rejects_foreign_shard_handles() {
        // A handle minted by a 4-shard runtime does not address anything
        // in a single-shard one: error, not a panic or misdelivery.
        let engine = Engine::compile(Spec::machine(finishing_machine())).unwrap();
        let mut wide = engine.runtime().sharded(4);
        wide.spawn_many(4);
        let foreign = (0..4)
            .map(|_| wide.spawn())
            .find(|s| s.shard() == 3)
            .expect("a session on shard 3");
        let mut narrow = engine.runtime();
        let a = narrow.message_id("a").unwrap();
        assert!(matches!(
            narrow.try_deliver(foreign, a),
            Err(StategenError::StaleSession { shard: 3, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "stale session handle s0:0")]
    fn stale_handle_panics_after_recycle() {
        let mut rt = compiled_runtime();
        let a = rt.message_id("a").unwrap();
        let first = rt.spawn();
        rt.release(first);
        let _second = rt.spawn(); // recycles the slot
        rt.deliver(first, a); // use-after-recycle must fail loudly
    }

    #[test]
    #[should_panic(expected = "stale session handle")]
    fn double_release_panics() {
        let mut rt = compiled_runtime();
        let s = rt.spawn();
        rt.release(s);
        rt.release(s);
    }

    #[test]
    fn deliver_all_skips_released_slots() {
        let mut rt = compiled_runtime();
        let a = rt.message_id("a").unwrap();
        let keep: Vec<SessionId> = (0..10).map(|_| rt.spawn()).collect();
        let drop = rt.spawn();
        rt.release(drop);
        assert_eq!(rt.len(), 10);
        assert_eq!(rt.deliver_all(a), 10);
        assert_eq!(rt.deliver_all(a), 10);
        assert!(rt.all_finished());
        for s in keep {
            assert!(rt.is_finished(s));
        }
    }

    #[test]
    fn sharded_matches_flat_runtime() {
        let machine = finishing_machine();
        let engine = Engine::compile(Spec::machine(machine)).unwrap();
        let mut flat = engine.runtime();
        flat.spawn_many(103);
        let mut sharded = engine.runtime().sharded(4);
        sharded.spawn_many(103);
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(sharded.len(), 103);
        let a = engine.message_id("a").unwrap();
        let b = engine.message_id("b").unwrap();
        for &mid in &[a, b, a, a, b] {
            assert_eq!(flat.deliver_all(mid), sharded.deliver_all(mid));
            assert_eq!(flat.finished_count(), sharded.finished_count());
            assert_eq!(flat.steps(), sharded.steps());
        }
        assert!(sharded.all_finished());
        sharded.reset_all();
        assert_eq!(sharded.finished_count(), 0);
        assert_eq!(sharded.steps(), 0);
    }

    #[test]
    fn parked_workers_match_scoped_delivery() {
        let engine = Engine::compile(Spec::machine(finishing_machine())).unwrap();
        let mut rt = engine.runtime().sharded(3);
        rt.spawn_many(70);
        let a = engine.message_id("a").unwrap();
        let total = rt.with_workers(|w| {
            assert_eq!(w.worker_count(), 3);
            let t = w.deliver_all(a) + w.deliver_all(a);
            assert_eq!(w.finished_count(), 70);
            t
        });
        assert_eq!(total, 140);
        assert!(rt.all_finished());
    }

    #[test]
    #[should_panic(expected = "before spawning")]
    fn sharded_after_spawn_panics() {
        let mut rt = compiled_runtime();
        rt.spawn();
        let _ = rt.sharded(2);
    }

    #[test]
    fn session_view_speaks_protocol_engine() {
        let mut rt = compiled_runtime();
        let id = rt.spawn();
        let mut session = rt.session(id);
        assert_eq!(session.id(), id);
        assert_eq!(session.deliver_ref("a").unwrap(), [Action::send("x")]);
        assert_eq!(session.state_name(), "s1");
        assert!(session.deliver_ref("zap").is_err());
        session.reset();
        assert_eq!(session.state_name(), "s0");
        assert!(!session.is_finished());
    }

    #[test]
    fn try_surface_rejects_stale_handles_without_panicking() {
        let mut rt = compiled_runtime();
        let a = rt.message_id("a").unwrap();
        let s = rt.spawn();
        rt.deliver(s, a);
        assert_eq!(rt.try_state(s).unwrap(), rt.state(s));
        assert_eq!(rt.try_vars(s).unwrap(), rt.vars(s));
        rt.try_reset(s).unwrap();
        assert_eq!(rt.state_name(s), "s0");
        rt.try_release(s).unwrap();
        // Every fallible call reports the same stale handle; double
        // release is an error, not a panic.
        let expect_stale = StategenError::StaleSession {
            shard: 0,
            slot: 0,
            generation: 0,
        };
        assert_eq!(rt.try_release(s), Err(expect_stale.clone()));
        assert_eq!(rt.try_reset(s), Err(expect_stale.clone()));
        assert_eq!(rt.try_state(s), Err(expect_stale.clone()));
        assert_eq!(rt.try_vars(s), Err(expect_stale));
    }

    #[test]
    fn snapshot_restore_round_trips_and_preserves_handles() {
        let mut rt = compiled_runtime();
        let a = rt.message_id("a").unwrap();
        let s1 = rt.spawn();
        let s2 = rt.spawn();
        let gone = rt.spawn();
        rt.deliver(s1, a);
        rt.release(gone); // free list + bumped generation must survive
        let snap = rt.snapshot_all();
        assert_eq!(snap.fingerprint(), rt.engine().fingerprint());
        assert_eq!(snap.live_sessions(), 2);

        let mut restored = Runtime::restore(rt.engine(), &snap).unwrap();
        // Bit-identical: a re-snapshot equals the original.
        assert_eq!(restored.snapshot_all(), snap);
        // Old handles keep addressing their sessions...
        assert_eq!(restored.state_name(s1), "s1");
        assert_eq!(restored.state_name(s2), "s0");
        assert_eq!(restored.steps(), rt.steps());
        // ...stale ones stay stale...
        assert!(!restored.is_live(gone));
        // ...and the free list recycles with the bumped generation.
        let fresh = restored.spawn();
        assert_eq!(fresh.slot(), gone.slot());
        assert_eq!(fresh.generation(), gone.generation() + 1);
        // The restored pool keeps executing.
        restored.deliver(s1, a);
        assert!(restored.is_finished(s1));
    }

    #[test]
    fn restore_rejects_fingerprint_mismatch() {
        let rt = compiled_runtime();
        let snap = rt.snapshot_all();
        let mut other = StateMachineBuilder::new("other", ["a"]);
        let s0 = other.add_state("s0");
        other.add_transition(s0, "a", s0, vec![]);
        let other = Engine::compile(Spec::machine(other.build(s0))).unwrap();
        assert!(matches!(
            Runtime::restore(&other, &snap),
            Err(StategenError::SnapshotMismatch { .. })
        ));
        // Same behaviour on a different tier restores fine.
        let interp = Engine::interpret(Spec::machine(finishing_machine())).unwrap();
        assert_eq!(interp.fingerprint(), rt.engine().fingerprint());
        let restored = Runtime::restore(&interp, &snap).unwrap();
        assert_eq!(restored.snapshot_all(), snap);
    }

    #[test]
    fn session_snapshot_captures_state_and_generation() {
        let mut rt = compiled_runtime();
        let a = rt.message_id("a").unwrap();
        let s = rt.spawn();
        rt.deliver(s, a);
        let snap = rt.snapshot(s);
        assert_eq!(snap.state, rt.state(s));
        assert_eq!(snap.generation, s.generation());
        assert!(snap.vars.is_empty()); // non-EFSM tier
    }

    #[test]
    fn timeouts_fire_through_the_delivery_path() {
        let mut rt = compiled_runtime();
        let a = rt.message_id("a").unwrap();
        let slow = rt.spawn();
        let done = rt.spawn();
        let released = rt.spawn();
        rt.arm_timeout(slow, 100);
        rt.arm_timeout(done, 100);
        rt.arm_timeout(released, 100);
        assert_eq!(rt.pending_timeouts(), 3);
        // One finishes early, one is released: neither may time out.
        rt.deliver(done, a);
        rt.cancel_timeout(done);
        rt.release(released); // cancels eagerly
        assert_eq!(rt.pending_timeouts(), 1);
        // The wake hint is a coarse lower bound, never later than the
        // real deadline.
        assert!(rt.next_timeout().is_some_and(|hint| hint <= 100));
        assert_eq!(rt.advance_time(99, a), 0);
        assert_eq!(rt.state_name(slow), "s0");
        // The timeout is an ordinary message: here it drives "a".
        assert_eq!(rt.advance_time(100, a), 1);
        assert_eq!(rt.state_name(slow), "s1");
        assert_eq!(rt.pending_timeouts(), 0);
        // Re-arming moves the deadline; a session released after arming
        // is skipped even without an explicit cancel.
        rt.arm_timeout(slow, 150);
        rt.arm_timeout(slow, 200);
        let stale_target = rt.spawn();
        rt.arm_timeout(stale_target, 200);
        rt.pool.shards_mut()[stale_target.shard as usize].release_slot(stale_target);
        assert_eq!(rt.advance_time(200, a), 1);
        assert!(rt.is_finished(slow));
    }

    #[test]
    fn interpreted_tier_matches_compiled() {
        let machine = finishing_machine();
        let compiled = Engine::compile(Spec::machine(machine.clone())).unwrap();
        let interp = Engine::interpret(Spec::machine(machine)).unwrap();
        assert_eq!(compiled.tier(), Tier::Compiled);
        assert_eq!(interp.tier(), Tier::Interpreted);
        let mut rc = compiled.runtime_with(5);
        let mut ri = interp.runtime_with(5);
        for name in ["b", "a", "b", "a", "a"] {
            let mid_c = rc.message_id(name).unwrap();
            let mid_i = ri.message_id(name).unwrap();
            assert_eq!(rc.deliver_all(mid_c), ri.deliver_all(mid_i));
            assert_eq!(rc.finished_count(), ri.finished_count());
        }
        let (sc, si) = (rc.spawn(), ri.spawn());
        assert_eq!(rc.state_name(sc), ri.state_name(si));
    }

    /// The production observed path (unobserved pass + tail replay, see
    /// [`Shard::replay_batch_tail`]) must leave the ring bit-identical —
    /// events, order, and sequence accounting — to recording every
    /// transition inline from the batch loop, across all three engine
    /// tiers, dense and holed slot arrays, guard fall-throughs, and
    /// batches larger than the ring. This is also what keeps the
    /// observed [`Shard::deliver_batch`] instantiations exercised.
    #[test]
    fn replayed_ring_matches_per_transition_recording() {
        use stategen_commit::{commit_efsm, commit_efsm_params, CommitConfig, MESSAGE_NAMES};

        let config = CommitConfig::new(3).unwrap();
        let tiers: [(Engine, &[&str]); 3] = [
            (
                Engine::compile(Spec::machine(finishing_machine())).unwrap(),
                &["a", "b", "a", "a"],
            ),
            (
                Engine::interpret(Spec::machine(finishing_machine())).unwrap(),
                &["a", "b", "a", "a"],
            ),
            (
                Engine::compile(Spec::efsm(commit_efsm(), commit_efsm_params(&config))).unwrap(),
                &MESSAGE_NAMES,
            ),
        ];
        for (engine, script) in tiers {
            let mut replayed = engine.runtime();
            let mut inline = engine.runtime();
            let handles: Vec<_> = (0..8).map(|_| replayed.spawn()).collect();
            for _ in 0..8 {
                inline.spawn();
            }
            // Ring smaller than the live set: the first batch overruns
            // it, exercising the overwritten-prefix accounting.
            replayed.attach_recorder(4);
            let mut rec = FlightRecorder::new(4);
            for (i, name) in script.iter().enumerate() {
                if i == 2 {
                    // Punch holes mid-script so later batches walk a
                    // retired-slot (sparse) loop.
                    for &h in &[handles[2], handles[5]] {
                        replayed.release(h);
                        inline.release(h);
                    }
                }
                let mid = replayed.message_id(name).unwrap();
                replayed.deliver_all(mid);
                inline.pool.shards_mut()[0].deliver_batch(mid, &mut rec);

                let shards = replayed.pool.shards_mut();
                let ring = shards[0].recorder.as_ref().unwrap();
                assert_eq!(
                    ring.recorded(),
                    rec.recorded(),
                    "sequence accounting diverged"
                );
                let got: Vec<TransitionEvent> = ring.iter().collect();
                let expect: Vec<TransitionEvent> = rec.iter().collect();
                assert_eq!(
                    got, expect,
                    "ring contents diverged after batch {i} ({name})"
                );
            }
        }
    }
}
