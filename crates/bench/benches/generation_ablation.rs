//! Ablation of the generation pipeline's design choices (DESIGN.md):
//! merge strategy (none / single pass / fixpoint), pruning, and
//! documentation-annotation generation, measured on the r = 13 commit
//! model (5408 initial states).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use stategen_commit::{CommitConfig, CommitModel};
use stategen_core::{generate_with, GenerateOptions, MergeStrategy};

fn bench_ablation(c: &mut Criterion) {
    let model = CommitModel::new(CommitConfig::new(13).expect("valid"));
    let mut group = c.benchmark_group("generation_ablation");
    group.sample_size(30);

    let variants: [(&str, GenerateOptions); 5] = [
        ("full_pipeline", GenerateOptions::default()),
        (
            "no_merge",
            GenerateOptions {
                merge: MergeStrategy::None,
                ..Default::default()
            },
        ),
        (
            "single_pass_merge",
            GenerateOptions {
                merge: MergeStrategy::SinglePass,
                ..Default::default()
            },
        ),
        (
            "no_prune_no_merge",
            GenerateOptions {
                prune: false,
                merge: MergeStrategy::None,
                ..Default::default()
            },
        ),
        (
            "no_annotations",
            GenerateOptions {
                annotate_states: false,
                ..Default::default()
            },
        ),
    ];
    for (name, options) in variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                let g = generate_with(black_box(&model), &options).expect("generates");
                black_box(g.machine.state_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
