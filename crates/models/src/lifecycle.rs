//! A hierarchical session-lifecycle statechart wrapping the commit
//! protocol with suspend/resume and failure superstates.
//!
//! The paper's flat commit machine captures one protocol *attempt*; a
//! deployed peer wraps attempts in a connection lifecycle — sessions
//! come up, suspend, fail and recover without losing their place in the
//! protocol. That overlay is naturally hierarchical: `suspend`/`fail`
//! apply from *anywhere* inside the established session (inherited
//! transitions), and `resume`/`recover` return to wherever the session
//! was (shallow history). Authored as a
//! [`HierarchicalMachine`] and
//! flattened, it runs on every existing execution tier unchanged.
//!
//! ```text
//! Connecting ──connect──▶ Established ⟨history⟩
//!                          ├── Idle (initial)
//!                          └── Commit ── Voting (initial) ── Deciding
//!   Established ──suspend──▶ Suspended ──resume──▶ H(Established)
//!   Established ──fail──▶ Failed{Probing} ──recover──▶ H(Established)
//!   … ──close──▶ Closed (final)
//! ```
//!
//! Shallow history restores the *direct* child of `Established`: a
//! session suspended while deep in `Commit.Deciding` resumes in
//! `Commit` and re-enters through its initial child `Voting` — the
//! attempt restarts from the vote request, which is exactly the commit
//! protocol's retry semantics (an interrupted attempt is re-proposed,
//! not resumed mid-quorum).

use stategen_core::{Action, HierarchicalMachine, HsmBuilder};

/// Builds the hierarchical session-lifecycle machine.
///
/// Alphabet: `connect`, `update`, `vote`, `commit`, `abort`, `ping`,
/// `suspend`, `resume`, `fail`, `recover`, `close`.
///
/// # Examples
///
/// ```
/// use stategen_core::{CompiledMachine, ProtocolEngine};
/// use stategen_models::session_lifecycle;
///
/// let hsm = session_lifecycle();
/// let mut session = hsm.instance();
/// session.deliver_ref("connect").unwrap();
/// session.deliver_ref("update").unwrap();
/// session.deliver_ref("suspend").unwrap();
/// session.deliver_ref("resume").unwrap(); // history: back into Commit
/// assert_eq!(session.state_name(), "Established.Commit.Voting~Established=Commit");
///
/// // The same statechart, flattened and compiled, serves traffic.
/// let compiled = CompiledMachine::compile(&hsm.flatten());
/// let mut fast = compiled.instance();
/// for m in ["connect", "update", "suspend", "resume"] {
///     fast.deliver_ref(m).unwrap();
/// }
/// assert_eq!(fast.state_name(), session.state_name());
/// ```
pub fn session_lifecycle() -> HierarchicalMachine {
    let mut b = HsmBuilder::new(
        "session-lifecycle",
        [
            "connect", "update", "vote", "commit", "abort", "ping", "suspend", "resume", "fail",
            "recover", "close",
        ],
    );
    let connecting = b.add_state("Connecting");

    let established = b.add_state("Established");
    let idle = b.add_child(established, "Idle");
    let commit = b.add_child(established, "Commit");
    let voting = b.add_child(commit, "Voting");
    let deciding = b.add_child(commit, "Deciding");
    b.enable_history(established);
    b.on_entry(established, vec![Action::send("online")]);
    b.on_exit(established, vec![Action::send("offline")]);
    b.on_entry(commit, vec![Action::send("attempt_begin")]);
    b.on_exit(commit, vec![Action::send("attempt_end")]);
    b.on_entry(voting, vec![Action::send("vote_req")]);
    b.on_entry(deciding, vec![Action::send("commit_req")]);

    let suspended = b.add_state("Suspended");
    let failed = b.add_state("Failed");
    let probing = b.add_child(failed, "Probing");
    b.on_entry(failed, vec![Action::send("alarm")]);
    b.on_entry(probing, vec![Action::send("probe")]);

    let closed = b.add_state("Closed");
    b.mark_final(closed);

    // Connection bring-up.
    b.add_transition(
        connecting,
        "connect",
        established,
        vec![Action::send("ack")],
    );

    // The wrapped commit attempt: Idle -> Commit{Voting -> Deciding} -> Idle.
    b.add_transition(idle, "update", commit, vec![]);
    b.add_transition(voting, "vote", deciding, vec![]);
    b.add_transition(deciding, "commit", idle, vec![Action::send("committed")]);
    // Declared on Commit: aborting applies in Voting and Deciding alike.
    b.add_transition(commit, "abort", idle, vec![Action::send("aborted")]);

    // Liveness check: answered from anywhere in the session without
    // disturbing the configuration (internal transition).
    b.add_internal_transition(established, "ping", vec![Action::send("pong")]);

    // Suspend/resume overlay: inherited from any depth, resumed via
    // shallow history.
    b.add_transition(established, "suspend", suspended, vec![]);
    b.add_history_transition(suspended, "resume", established, vec![]);

    // Failure/recovery overlay.
    b.add_transition(established, "fail", failed, vec![]);
    b.add_history_transition(
        probing,
        "recover",
        established,
        vec![Action::send("recovered")],
    );

    // Teardown, from every lifecycle phase.
    b.add_transition(connecting, "close", closed, vec![]);
    b.add_transition(established, "close", closed, vec![Action::send("bye")]);
    b.add_transition(suspended, "close", closed, vec![]);
    b.add_transition(failed, "close", closed, vec![]);

    b.build(connecting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stategen_core::{
        validate_machine, CompiledMachine, FsmInstance, ProtocolEngine, SessionPool,
    };

    #[test]
    fn structure() {
        let hsm = session_lifecycle();
        assert_eq!(hsm.state_count(), 10);
        assert_eq!(hsm.composite_count(), 3); // Established, Commit, Failed
        assert_eq!(hsm.history_count(), 1);
        assert_eq!(hsm.messages().len(), 11);
    }

    #[test]
    fn happy_path_commit() {
        let hsm = session_lifecycle();
        let mut s = hsm.instance();
        assert_eq!(
            s.deliver_ref("connect").unwrap(),
            [Action::send("ack"), Action::send("online")]
        );
        assert_eq!(s.state_name(), "Established.Idle");
        assert_eq!(
            s.deliver_ref("update").unwrap(),
            [Action::send("attempt_begin"), Action::send("vote_req")]
        );
        assert_eq!(s.deliver_ref("vote").unwrap(), [Action::send("commit_req")]);
        assert_eq!(
            s.deliver_ref("commit").unwrap(),
            [Action::send("attempt_end"), Action::send("committed")]
        );
        // Established was never exited, so its shallow history still
        // remembers its initial child: no `~` decoration.
        assert_eq!(s.state_name(), "Established.Idle");
    }

    #[test]
    fn suspend_resume_restores_commit_attempt() {
        let hsm = session_lifecycle();
        let mut s = hsm.instance();
        for m in ["connect", "update", "vote"] {
            s.deliver_ref(m).unwrap();
        }
        assert_eq!(s.state_name(), "Established.Commit.Deciding");
        s.deliver_ref("suspend").unwrap();
        assert_eq!(s.state_name(), "Suspended~Established=Commit");
        // Shallow history restores Commit, which re-enters through its
        // initial child: the interrupted attempt restarts at Voting.
        assert_eq!(
            s.deliver_ref("resume").unwrap(),
            [
                Action::send("online"),
                Action::send("attempt_begin"),
                Action::send("vote_req"),
            ]
        );
        assert_eq!(
            s.state_name(),
            "Established.Commit.Voting~Established=Commit"
        );
    }

    #[test]
    fn fail_recover_and_ping() {
        let hsm = session_lifecycle();
        let mut s = hsm.instance();
        s.deliver_ref("connect").unwrap();
        assert_eq!(s.deliver_ref("ping").unwrap(), [Action::send("pong")]);
        assert_eq!(s.state_name(), "Established.Idle"); // internal: no move
        assert_eq!(
            s.deliver_ref("fail").unwrap(),
            [
                Action::send("offline"),
                Action::send("alarm"),
                Action::send("probe")
            ]
        );
        assert_eq!(s.state_name(), "Failed.Probing");
        assert_eq!(
            s.deliver_ref("recover").unwrap(),
            [Action::send("recovered"), Action::send("online")]
        );
        assert_eq!(s.state_name(), "Established.Idle");
        s.deliver_ref("close").unwrap();
        assert!(s.is_finished());
    }

    #[test]
    fn flattened_machine_validates_and_matches_reference() {
        let hsm = session_lifecycle();
        let flat = hsm.flatten();
        let report = validate_machine(&flat);
        assert!(report.is_valid(), "{:?}", report.issues);
        let mut reference = hsm.instance();
        let mut interp = FsmInstance::new(&flat);
        let trace = [
            "connect", "update", "ping", "vote", "suspend", "resume", "vote", "fail", "recover",
            "commit", "abort", "update", "commit", "close", "connect",
        ];
        for m in trace {
            let want = reference.deliver_ref(m).unwrap().to_vec();
            assert_eq!(interp.deliver_ref(m).unwrap(), want.as_slice(), "at {m}");
            assert_eq!(reference.state_name(), interp.state_name(), "at {m}");
        }
        assert!(interp.is_finished());
    }

    #[test]
    fn flattened_machine_serves_a_session_pool() {
        let hsm = session_lifecycle();
        let compiled = CompiledMachine::compile(&hsm.flatten());
        let mut pool = SessionPool::new(&compiled, 1000);
        for m in ["connect", "update", "vote", "commit", "close"] {
            let mid = compiled.message_id(m).unwrap();
            assert_eq!(pool.deliver_all(mid), 1000, "at {m}");
        }
        assert!(pool.all_finished());
    }
}
