//! The compiled execution tier behind the runtime facade: compile a
//! generated machine once (`Spec → Engine`), then serve one session or
//! ten thousand with the same vocabulary and zero per-message
//! allocation.
//!
//! ```text
//! cargo run --release --example compiled_sessions
//! ```

use stategen::commit::{CommitConfig, CommitModel, MESSAGE_NAMES};
use stategen::runtime::{Engine, Spec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate the r=4 commit machine and compile it once. The engine
    // is owned (`Arc`-backed, `Send`): no borrow ties it to this scope.
    let model = CommitModel::new(CommitConfig::new(4)?);
    let engine = Engine::compile(Spec::generated(&model)?)?;
    println!(
        "compiled {}: {} states x {} messages on the `{}` tier",
        engine.name(),
        engine.state_count(),
        engine.messages().len(),
        engine.tier(),
    );

    // Single session: spawn a typed handle and deliver by id. Action
    // slices are borrowed from the engine's interned arena.
    let mut rt = engine.runtime();
    let session = rt.spawn();
    for message in ["update", "vote", "vote", "commit", "commit"] {
        let id = rt.message_id(message).expect("commit alphabet");
        let actions = rt.deliver(session, id).to_vec();
        println!(
            "  {message:>8} -> {:<16} {actions:?}",
            rt.state_name(session)
        );
    }
    assert!(rt.is_finished(session));

    // Batched: 10k concurrent sessions in the same runtime type,
    // stepped struct-of-arrays.
    let mut pool = engine.runtime_with(10_000);
    let ids: Vec<_> = MESSAGE_NAMES
        .iter()
        .map(|m| engine.message_id(m).expect("commit alphabet"))
        .collect();
    // Drive every session through the canonical happy path.
    for &mid in [0usize, 1, 1, 2, 2].iter().map(|i| &ids[*i]) {
        pool.deliver_all(mid);
    }
    println!(
        "pool: {} sessions, {} finished, {} transitions total",
        pool.len(),
        pool.finished_count(),
        pool.steps()
    );
    assert!(pool.all_finished());

    // Slots recycle through typed handles: releasing a session bumps
    // the slot's generation, so the old handle is dead, loudly.
    let mut recycler = engine.runtime();
    let first = recycler.spawn();
    recycler.release(first);
    let second = recycler.spawn();
    println!("recycled {first:?} -> {second:?} (stale handles now panic)");
    assert!(!recycler.is_live(first));
    Ok(())
}
