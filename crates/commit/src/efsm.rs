//! The commit protocol as an extended finite state machine (paper §5.3).
//!
//! Mapping the message-counting variables (`votes_received`,
//! `commits_received`) to EFSM variables coalesces all FSM states that
//! differ only in counts below their thresholds: every state *change* of
//! the EFSM corresponds to a phase transition of the FSM, while simple
//! count increments become guarded self-loops. The result has **9 states**
//! — one per reachable combination of the boolean flags, plus the finished
//! state — and, unlike the FSM family, is *generic in the replication
//! factor*: thresholds appear only in guards, as parameters bound at
//! instantiation time.
//!
//! State inventory (flags `update_received / vote_sent / commit_sent /
//! could_choose / has_chosen`):
//!
//! | state            | U | S | K | F | H |
//! |------------------|---|---|---|---|---|
//! | `idle-free`      | F | F | F | T | F |
//! | `idle-blocked`   | F | F | F | F | F |
//! | `update-blocked` | T | F | F | F | F |
//! | `voted-chosen`   | T | T | F | T | T |
//! | `committed-chosen`| T | T | T | T | T |
//! | `forced-voted`   | F | T | T | F | F |
//! | `forced-chosen`  | F | T | T | T | T |
//! | `committed-blocked`| T | T | T | F | F |
//! | `finished`       | — | — | — | — | — |

use stategen_core::efsm::{CmpOp, Efsm, EfsmBuilder, EfsmInstance, Guard, LinExpr, Update};
use stategen_core::Action;

use crate::config::CommitConfig;
use crate::messages::{COMMIT, FREE, MESSAGE_NAMES, NOT_FREE, UPDATE, VOTE};

/// Builds the 9-state commit EFSM.
///
/// The machine is parameterised by `r` (replication factor), `tv` (vote
/// threshold) and `tc` (external commit threshold); instantiate it for a
/// concrete configuration with [`commit_efsm_instance`].
pub fn commit_efsm() -> Efsm {
    let mut b = EfsmBuilder::new("commit-efsm", MESSAGE_NAMES);
    let r = b.add_param("r");
    let tv = b.add_param("vote_threshold");
    let tc = b.add_param("commit_threshold");
    let v = b.add_var("votes_received");
    let c = b.add_var("commits_received");

    let idle_free = b.add_state_annotated(
        "idle-free",
        vec!["No update or vote yet; the node is free to choose.".into()],
    );
    let idle_blocked = b.add_state_annotated(
        "idle-blocked",
        vec!["No update yet; another update is in progress on this node.".into()],
    );
    let update_blocked = b.add_state_annotated(
        "update-blocked",
        vec!["Update received, but another update is in progress on this node.".into()],
    );
    let voted_chosen = b.add_state_annotated(
        "voted-chosen",
        vec!["Voted for this update by choice; vote threshold not yet reached.".into()],
    );
    let committed_chosen = b.add_state_annotated(
        "committed-chosen",
        vec!["Voted by choice and sent commit; awaiting external commits.".into()],
    );
    let forced_voted = b.add_state_annotated(
        "forced-voted",
        vec![
            "Forced to vote by the threshold without seeing the update request or being free."
                .into(),
        ],
    );
    let forced_chosen = b.add_state_annotated(
        "forced-chosen",
        vec!["Forced to vote by the threshold while free, thereby choosing this update.".into()],
    );
    let committed_blocked = b.add_state_annotated(
        "committed-blocked",
        vec!["Update received and commit sent, but chosen by other peers, not this node.".into()],
    );
    let finished = b.add_state_annotated(
        "finished",
        vec!["External commit threshold reached; the update is globally agreed.".into()],
    );

    // Guard fragments. `total votes after receipt` is v+1 when this node
    // has not voted (its own vote is not counted) and v+2 when it has.
    let below_tv_recv_unvoted =
        Guard::when(LinExpr::var(v).plus_const(1), CmpOp::Lt, LinExpr::param(tv));
    let at_tv_recv_unvoted =
        Guard::when(LinExpr::var(v).plus_const(1), CmpOp::Ge, LinExpr::param(tv)).and(
            LinExpr::var(v).plus_const(1),
            CmpOp::Le,
            LinExpr::param(r).plus_const(-1),
        );
    let below_tv_recv_voted =
        Guard::when(LinExpr::var(v).plus_const(2), CmpOp::Lt, LinExpr::param(tv));
    let at_tv_recv_voted =
        Guard::when(LinExpr::var(v).plus_const(2), CmpOp::Ge, LinExpr::param(tv)).and(
            LinExpr::var(v).plus_const(1),
            CmpOp::Le,
            LinExpr::param(r).plus_const(-1),
        );
    let vote_in_bounds = Guard::when(
        LinExpr::var(v).plus_const(1),
        CmpOp::Le,
        LinExpr::param(r).plus_const(-1),
    );
    let below_tc = Guard::when(LinExpr::var(c).plus_const(1), CmpOp::Lt, LinExpr::param(tc));
    let at_tc = Guard::when(LinExpr::var(c).plus_const(1), CmpOp::Ge, LinExpr::param(tc));
    // `update` handler: vote threshold check with this node's vote counted
    // (it votes as part of the handler, so total = v + 1).
    let below_tv_after_voting =
        Guard::when(LinExpr::var(v).plus_const(1), CmpOp::Lt, LinExpr::param(tv));
    let at_tv_after_voting =
        Guard::when(LinExpr::var(v).plus_const(1), CmpOp::Ge, LinExpr::param(tv));

    let inc_v = vec![Update::Inc(v)];
    let inc_c = vec![Update::Inc(c)];

    // ---- idle-free (F,F,F,T,F) ------------------------------------------
    b.add_transition(
        idle_free,
        UPDATE,
        below_tv_after_voting.clone(),
        vec![],
        vec![Action::send(VOTE), Action::send(NOT_FREE)],
        voted_chosen,
    );
    b.add_transition(
        idle_free,
        UPDATE,
        at_tv_after_voting.clone(),
        vec![],
        vec![
            Action::send(VOTE),
            Action::send(COMMIT),
            Action::send(NOT_FREE),
        ],
        committed_chosen,
    );
    b.add_transition(
        idle_free,
        VOTE,
        below_tv_recv_unvoted.clone(),
        inc_v.clone(),
        vec![],
        idle_free,
    );
    b.add_transition(
        idle_free,
        VOTE,
        at_tv_recv_unvoted.clone(),
        inc_v.clone(),
        vec![
            Action::send(NOT_FREE),
            Action::send(VOTE),
            Action::send(COMMIT),
        ],
        forced_chosen,
    );
    b.add_transition(
        idle_free,
        COMMIT,
        below_tc.clone(),
        inc_c.clone(),
        vec![],
        idle_free,
    );
    b.add_transition(
        idle_free,
        COMMIT,
        at_tc.clone(),
        inc_c.clone(),
        vec![Action::send(VOTE), Action::send(COMMIT)],
        finished,
    );
    b.add_transition(
        idle_free,
        NOT_FREE,
        Guard::always(),
        vec![],
        vec![],
        idle_blocked,
    );

    // ---- idle-blocked (F,F,F,F,F) ----------------------------------------
    b.add_transition(
        idle_blocked,
        UPDATE,
        Guard::always(),
        vec![],
        vec![],
        update_blocked,
    );
    b.add_transition(
        idle_blocked,
        VOTE,
        below_tv_recv_unvoted.clone(),
        inc_v.clone(),
        vec![],
        idle_blocked,
    );
    b.add_transition(
        idle_blocked,
        VOTE,
        at_tv_recv_unvoted.clone(),
        inc_v.clone(),
        vec![Action::send(VOTE), Action::send(COMMIT)],
        forced_voted,
    );
    b.add_transition(
        idle_blocked,
        COMMIT,
        below_tc.clone(),
        inc_c.clone(),
        vec![],
        idle_blocked,
    );
    b.add_transition(
        idle_blocked,
        COMMIT,
        at_tc.clone(),
        inc_c.clone(),
        vec![Action::send(VOTE), Action::send(COMMIT)],
        finished,
    );
    b.add_transition(
        idle_blocked,
        FREE,
        Guard::always(),
        vec![],
        vec![],
        idle_free,
    );

    // ---- update-blocked (T,F,F,F,F) ---------------------------------------
    b.add_transition(
        update_blocked,
        VOTE,
        below_tv_recv_unvoted.clone(),
        inc_v.clone(),
        vec![],
        update_blocked,
    );
    b.add_transition(
        update_blocked,
        VOTE,
        at_tv_recv_unvoted,
        inc_v.clone(),
        vec![Action::send(VOTE), Action::send(COMMIT)],
        committed_blocked,
    );
    b.add_transition(
        update_blocked,
        COMMIT,
        below_tc.clone(),
        inc_c.clone(),
        vec![],
        update_blocked,
    );
    b.add_transition(
        update_blocked,
        COMMIT,
        at_tc.clone(),
        inc_c.clone(),
        vec![Action::send(VOTE), Action::send(COMMIT)],
        finished,
    );
    // Paper Fig 14's FREE transition: set could_choose, then vote for the
    // pending update (possibly crossing the commit threshold too).
    b.add_transition(
        update_blocked,
        FREE,
        below_tv_after_voting,
        vec![],
        vec![Action::send(VOTE), Action::send(NOT_FREE)],
        voted_chosen,
    );
    b.add_transition(
        update_blocked,
        FREE,
        at_tv_after_voting,
        vec![],
        vec![
            Action::send(VOTE),
            Action::send(COMMIT),
            Action::send(NOT_FREE),
        ],
        committed_chosen,
    );

    // ---- voted-chosen (T,T,F,T,T) ------------------------------------------
    b.add_transition(
        voted_chosen,
        VOTE,
        below_tv_recv_voted,
        inc_v.clone(),
        vec![],
        voted_chosen,
    );
    b.add_transition(
        voted_chosen,
        VOTE,
        at_tv_recv_voted,
        inc_v.clone(),
        vec![Action::send(COMMIT)],
        committed_chosen,
    );
    b.add_transition(
        voted_chosen,
        COMMIT,
        below_tc.clone(),
        inc_c.clone(),
        vec![],
        voted_chosen,
    );
    b.add_transition(
        voted_chosen,
        COMMIT,
        at_tc.clone(),
        inc_c.clone(),
        vec![Action::send(COMMIT), Action::send(FREE)],
        finished,
    );

    // ---- committed-chosen (T,T,T,T,T) ---------------------------------------
    b.add_transition(
        committed_chosen,
        VOTE,
        vote_in_bounds.clone(),
        inc_v.clone(),
        vec![],
        committed_chosen,
    );
    b.add_transition(
        committed_chosen,
        COMMIT,
        below_tc.clone(),
        inc_c.clone(),
        vec![],
        committed_chosen,
    );
    b.add_transition(
        committed_chosen,
        COMMIT,
        at_tc.clone(),
        inc_c.clone(),
        vec![Action::send(FREE)],
        finished,
    );

    // ---- forced-voted (F,T,T,F,F) --------------------------------------------
    b.add_transition(
        forced_voted,
        UPDATE,
        Guard::always(),
        vec![],
        vec![],
        committed_blocked,
    );
    b.add_transition(
        forced_voted,
        VOTE,
        vote_in_bounds.clone(),
        inc_v.clone(),
        vec![],
        forced_voted,
    );
    b.add_transition(
        forced_voted,
        COMMIT,
        below_tc.clone(),
        inc_c.clone(),
        vec![],
        forced_voted,
    );
    b.add_transition(
        forced_voted,
        COMMIT,
        at_tc.clone(),
        inc_c.clone(),
        vec![],
        finished,
    );

    // ---- forced-chosen (F,T,T,T,T) ---------------------------------------------
    b.add_transition(
        forced_chosen,
        UPDATE,
        Guard::always(),
        vec![],
        vec![],
        committed_chosen,
    );
    b.add_transition(
        forced_chosen,
        VOTE,
        vote_in_bounds.clone(),
        inc_v.clone(),
        vec![],
        forced_chosen,
    );
    b.add_transition(
        forced_chosen,
        COMMIT,
        below_tc.clone(),
        inc_c.clone(),
        vec![],
        forced_chosen,
    );
    b.add_transition(
        forced_chosen,
        COMMIT,
        at_tc.clone(),
        inc_c.clone(),
        vec![Action::send(FREE)],
        finished,
    );

    // ---- committed-blocked (T,T,T,F,F) -------------------------------------------
    b.add_transition(
        committed_blocked,
        VOTE,
        vote_in_bounds,
        inc_v,
        vec![],
        committed_blocked,
    );
    b.add_transition(
        committed_blocked,
        COMMIT,
        below_tc,
        inc_c.clone(),
        vec![],
        committed_blocked,
    );
    b.add_transition(committed_blocked, COMMIT, at_tc, inc_c, vec![], finished);

    b.build(idle_free, Some(finished))
}

/// The parameter vector binding [`commit_efsm`] to a concrete
/// configuration, in the EFSM's declaration order (`r`,
/// `vote_threshold`, `commit_threshold`).
///
/// Use this everywhere an instance or pool is created — the order is
/// load-bearing, so it must be built in exactly one place.
pub fn commit_efsm_params(config: &CommitConfig) -> Vec<i64> {
    vec![
        i64::from(config.replication_factor()),
        i64::from(config.vote_threshold()),
        i64::from(config.commit_threshold()),
    ]
}

/// Instantiates [`commit_efsm`] for a concrete configuration.
pub fn commit_efsm_instance<'e>(efsm: &'e Efsm, config: &CommitConfig) -> EfsmInstance<'e> {
    EfsmInstance::new(efsm, commit_efsm_params(config))
}

/// The `(has_chosen, commit_sent)` protocol flags of a [`commit_efsm`]
/// state, resolved by name — the EFSM-tier analogue of inspecting a
/// generated FSM state's `StateVector` (see the state-inventory table in
/// the module docs: `has_chosen` is column `H`, `commit_sent` column
/// `K`). Deployment code (e.g. `asa-storage`'s peers) indexes these into
/// per-state bitmaps once at compile time, so the per-delivery path
/// never inspects names.
///
/// # Panics
///
/// Panics if `name` is not a [`commit_efsm`] state.
pub fn commit_efsm_state_flags(name: &str) -> (bool, bool) {
    match name {
        "idle-free" | "idle-blocked" | "update-blocked" => (false, false),
        "voted-chosen" => (true, false),
        "committed-chosen" | "forced-chosen" => (true, true),
        "forced-voted" | "committed-blocked" => (false, true),
        // The finished state absorbs everything; no unfinished-attempt
        // logic ever reads its flags.
        "finished" => (false, false),
        other => panic!("`{other}` is not a commit EFSM state"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stategen_core::ProtocolEngine;

    #[test]
    fn has_nine_states() {
        // Paper §5.3: "The resulting EFSM contains 9 states."
        assert_eq!(commit_efsm().state_count(), 9);
    }

    #[test]
    fn state_flags_cover_every_state() {
        // `commit_efsm_state_flags` is a name-keyed mirror of the
        // state-inventory table; adding or renaming a state must update
        // it, and this test turns a desync into an immediate failure
        // instead of a deployment-time panic. Spot-check the H/K
        // columns against the table in the module docs.
        for state in commit_efsm().states() {
            let _ = commit_efsm_state_flags(state.name()); // must not panic
        }
        assert_eq!(commit_efsm_state_flags("idle-free"), (false, false));
        assert_eq!(commit_efsm_state_flags("voted-chosen"), (true, false));
        assert_eq!(commit_efsm_state_flags("committed-chosen"), (true, true));
        assert_eq!(commit_efsm_state_flags("forced-voted"), (false, true));
        assert_eq!(commit_efsm_state_flags("forced-chosen"), (true, true));
        assert_eq!(commit_efsm_state_flags("committed-blocked"), (false, true));
    }

    #[test]
    fn generic_in_replication_factor() {
        // One EFSM serves every family member (paper §5.3): its state
        // count does not depend on r.
        let efsm = commit_efsm();
        for r in [4u32, 7, 13, 25, 46] {
            let config = CommitConfig::new(r).unwrap();
            let mut i = commit_efsm_instance(&efsm, &config);
            i.deliver("update").unwrap();
            assert_eq!(i.state_name(), "voted-chosen");
        }
    }

    #[test]
    fn deterministic_guards() {
        let efsm = commit_efsm();
        for r in [4u32, 7] {
            let config = CommitConfig::new(r).unwrap();
            let params = vec![
                i64::from(config.replication_factor()),
                i64::from(config.vote_threshold()),
                i64::from(config.commit_threshold()),
            ];
            efsm.check_deterministic(&params, i64::from(r))
                .unwrap_or_else(|e| panic!("r={r}: {e}"));
        }
    }

    #[test]
    fn fig14_free_transition_shape() {
        let efsm = commit_efsm();
        let config = CommitConfig::new(4).unwrap();
        let mut i = commit_efsm_instance(&efsm, &config);
        i.deliver("not_free").unwrap();
        i.deliver("update").unwrap();
        i.deliver("vote").unwrap();
        i.deliver("vote").unwrap();
        assert_eq!(i.state_name(), "update-blocked");
        assert_eq!(i.vars(), &[2, 0]);
        let actions = i.deliver("free").unwrap();
        assert_eq!(
            actions,
            vec![
                Action::send("vote"),
                Action::send("commit"),
                Action::send("not_free")
            ]
        );
        assert_eq!(i.state_name(), "committed-chosen");
    }

    #[test]
    fn commit_quorum_finishes_with_free() {
        let efsm = commit_efsm();
        let config = CommitConfig::new(4).unwrap();
        let mut i = commit_efsm_instance(&efsm, &config);
        i.deliver("update").unwrap();
        i.deliver("commit").unwrap();
        let actions = i.deliver("commit").unwrap();
        // Voted by choice but below the vote threshold; the external
        // commits still finish the instance: commit pile-on + free.
        assert_eq!(actions, vec![Action::send("commit"), Action::send("free")]);
        assert!(i.is_finished());
    }

    #[test]
    fn forced_vote_without_choice() {
        let efsm = commit_efsm();
        let config = CommitConfig::new(4).unwrap();
        let mut i = commit_efsm_instance(&efsm, &config);
        i.deliver("not_free").unwrap();
        i.deliver("vote").unwrap();
        i.deliver("vote").unwrap();
        let actions = i.deliver("vote").unwrap();
        assert_eq!(actions, vec![Action::send("vote"), Action::send("commit")]);
        assert_eq!(i.state_name(), "forced-voted");
    }

    #[test]
    fn vote_bound_enforced() {
        let efsm = commit_efsm();
        let config = CommitConfig::new(4).unwrap();
        let mut i = commit_efsm_instance(&efsm, &config);
        i.deliver("update").unwrap(); // S=T; votes counted to r-1=3
        for _ in 0..3 {
            i.deliver("vote").unwrap();
        }
        assert_eq!(i.vars()[0], 3);
        // Fourth received vote exceeds r-1: ignored.
        assert!(i.deliver("vote").unwrap().is_empty());
        assert_eq!(i.vars()[0], 3);
    }
}
