//! Regenerates paper Fig 15: diagram renderings of the generated FSM.
//! The paper exported XML for the Together diagramming tool; this writes
//! a self-contained XML document plus Graphviz DOT and Mermaid sources.

use repro_bench::artifacts_dir;
use stategen_commit::{CommitConfig, CommitModel};
use stategen_core::generate;
use stategen_render::{render_dot, render_mermaid, render_xml, DotOptions};

fn main() {
    let g = generate(&CommitModel::new(CommitConfig::new(4).expect("valid")))
        .expect("generation succeeds");
    let dir = artifacts_dir();
    let dot = render_dot(&g.machine, &DotOptions::default());
    let xml = render_xml(&g.machine);
    let mermaid = render_mermaid(&g.machine);
    std::fs::write(dir.join("commit_r4.dot"), &dot).expect("write dot");
    std::fs::write(dir.join("commit_r4.xml"), &xml).expect("write xml");
    std::fs::write(dir.join("commit_r4.mmd"), &mermaid).expect("write mermaid");
    println!(
        "machine: {} ({} states, {} transitions)",
        g.machine.name(),
        g.machine.state_count(),
        g.machine.transition_count()
    );
    println!("wrote {}", dir.join("commit_r4.dot").display());
    println!("wrote {}", dir.join("commit_r4.xml").display());
    println!("wrote {}", dir.join("commit_r4.mmd").display());
    println!("\nDOT excerpt:\n");
    for line in dot.lines().take(12) {
        println!("{line}");
    }
}
