//! Hierarchical statecharts on the flat execution tiers: author a
//! session-lifecycle statechart (composite states, entry/exit actions,
//! shallow history), debug it on the direct interpreter, then flatten
//! it into an ordinary `StateMachine` and serve it from the compiled
//! tier and a sharded session pool — no engine changes anywhere.
//!
//! ```text
//! cargo run --release --example hsm_flattening
//! ```

use stategen::fsm::{CompiledMachine, FsmInstance, ProtocolEngine, SessionPool, ShardedPool};
use stategen::models::session_lifecycle;
use stategen::render::{render_hsm_dot, render_hsm_mermaid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The statechart: a commit attempt wrapped in a connection
    // lifecycle with suspend/resume and failure superstates.
    let hsm = session_lifecycle();
    println!(
        "statechart {}: {} states ({} composites, {} with shallow history), {} transitions",
        hsm.name(),
        hsm.state_count(),
        hsm.composite_count(),
        hsm.history_count(),
        hsm.transition_count(),
    );

    // Tier 0: the direct interpreter — the semantic reference. Inherited
    // transitions and history work straight off the tree.
    let mut session = hsm.instance();
    for message in ["connect", "update", "vote", "suspend", "resume", "ping"] {
        let actions = session.deliver_ref(message)?.to_vec();
        println!("  {message:<8} -> {:<44} sends {:?}", session.state_name(), actions);
    }

    // The flattening compiler: reachable configurations become flat
    // states, inherited transitions and synthesized entry/exit action
    // sequences become ordinary transitions.
    let flat = hsm.flatten();
    println!(
        "\nflattened: {} configurations, {} transitions (from {} hierarchical states)",
        flat.state_count(),
        flat.transition_count(),
        hsm.state_count(),
    );

    // The flattened machine is an ordinary StateMachine: interpret it...
    let mut interp = FsmInstance::new(&flat);
    for message in ["connect", "update", "vote", "suspend", "resume", "ping"] {
        interp.deliver_ref(message)?;
    }
    assert_eq!(interp.state_name(), session.state_name());
    println!("interpreted flat machine agrees: {}", interp.state_name());

    // ...or compile it and batch-step a sharded pool of sessions, with
    // the same zero-allocation dispatch as any other compiled machine.
    let compiled = CompiledMachine::compile(&flat);
    let mut pool = ShardedPool::split(40_000, 4, |len| SessionPool::new(&compiled, len));
    let trace: Vec<_> = ["connect", "update", "vote", "commit", "close"]
        .iter()
        .map(|m| compiled.message_id(m).expect("lifecycle alphabet"))
        .collect();
    let transitions = pool.with_workers(|workers| {
        let mut transitions = 0;
        for &mid in &trace {
            transitions += workers.deliver_all(mid);
        }
        transitions
    });
    println!(
        "sharded pool: {} sessions x {} messages = {} transitions, {} finished",
        pool.len(),
        trace.len(),
        transitions,
        pool.finished_count(),
    );
    assert!(pool.all_finished());

    // Hierarchy-aware diagrams: clustered DOT and composite Mermaid.
    let dot = render_hsm_dot(&hsm);
    let mermaid = render_hsm_mermaid(&hsm);
    println!(
        "\nrenderers: DOT with {} clusters, Mermaid with {} composite blocks",
        dot.matches("subgraph cluster_").count(),
        mermaid.matches("state \"").count(),
    );
    println!("\n--- mermaid (paste into any markdown renderer) ---\n{mermaid}");
    Ok(())
}
