//! Concrete finite-state-machine representation.
//!
//! These types mirror the paper's `StateMachine` / `State` / `Transition`
//! classes (Fig 5): a machine is a collection of named states linked by
//! message-labelled transitions; transitions carry the actions to perform
//! (outgoing messages to send) and both states and transitions may carry
//! documentation annotations.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::component::StateVector;
use crate::error::CompileError;

/// Identifier of a message within a [`StateMachine`] (index into
/// [`StateMachine::messages`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub(crate) u16);

impl MessageId {
    /// The index into the machine's message table.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

/// Identifier of a state within a [`StateMachine`] (index into
/// [`StateMachine::states`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// The index into the machine's state table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An action attached to a transition: an outgoing message to send when the
/// transition fires (a *phase transition* in the paper's terminology).
///
/// The paper renders actions as `->vote`, `->commit`, `->free`,
/// `->not free`; the action name here is the bare message name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Action(String);

impl Action {
    /// Creates an action that sends the named message.
    pub fn send(message: impl Into<String>) -> Self {
        Action(message.into())
    }

    /// The name of the message this action sends.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "->{}", self.0)
    }
}

/// A transition out of a state, triggered by the receipt of one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    target: StateId,
    actions: Vec<Action>,
    annotations: Vec<String>,
}

impl Transition {
    /// Creates a transition to `target` performing `actions`.
    pub fn new(target: StateId, actions: Vec<Action>, annotations: Vec<String>) -> Self {
        Transition {
            target,
            actions,
            annotations,
        }
    }

    /// The state reached after this transition.
    pub fn target(&self) -> StateId {
        self.target
    }

    /// Actions (messages sent) when this transition fires. Empty for
    /// *simple* transitions; non-empty for *phase* transitions.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// `true` if this transition performs actions (paper: phase transition).
    pub fn is_phase_transition(&self) -> bool {
        !self.actions.is_empty()
    }

    /// Documentation annotations generated alongside the transition.
    pub fn annotations(&self) -> &[String] {
        &self.annotations
    }
}

/// Role of a state within the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateRole {
    /// An ordinary state drawn from the model's state space.
    Normal,
    /// The distinguished finish state: the protocol instance has completed
    /// and ignores all further messages.
    Finish,
}

/// One state of a generated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    name: String,
    vector: Option<StateVector>,
    role: StateRole,
    transitions: BTreeMap<u16, Transition>,
    annotations: Vec<String>,
}

impl State {
    /// Creates a state.
    ///
    /// `vector` is the underlying state-space point for states generated
    /// from an abstract model, and `None` for synthetic states (finish).
    pub fn new(
        name: impl Into<String>,
        vector: Option<StateVector>,
        role: StateRole,
        annotations: Vec<String>,
    ) -> Self {
        State {
            name: name.into(),
            vector,
            role,
            transitions: BTreeMap::new(),
            annotations,
        }
    }

    /// The state's display name (e.g. `T/2/F/0/F/F/F`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The state-space point this state encodes, if it is not synthetic.
    pub fn vector(&self) -> Option<&StateVector> {
        self.vector.as_ref()
    }

    /// The state's role.
    pub fn role(&self) -> StateRole {
        self.role
    }

    /// The transition taken on receipt of `message`, if the message is
    /// applicable in this state.
    pub fn transition(&self, message: MessageId) -> Option<&Transition> {
        self.transitions.get(&message.0)
    }

    /// All transitions, keyed by message, in message-id order.
    pub fn transitions(&self) -> impl Iterator<Item = (MessageId, &Transition)> {
        self.transitions.iter().map(|(&m, t)| (MessageId(m), t))
    }

    /// Number of outgoing transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Documentation annotations describing this state.
    pub fn annotations(&self) -> &[String] {
        &self.annotations
    }

    pub(crate) fn insert_transition(&mut self, message: MessageId, transition: Transition) {
        self.transitions.insert(message.0, transition);
    }
}

/// A complete generated finite state machine (paper Fig 5).
///
/// Machines are deterministic by construction: each state has at most one
/// transition per message. Messages not applicable in a state are simply
/// absent (the paper's generator ignores `InvalidStateException`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMachine {
    name: String,
    messages: Vec<String>,
    /// Prebuilt name→id lookup so [`StateMachine::message_id`] is O(1)
    /// instead of a linear scan over the alphabet.
    message_lookup: HashMap<String, u16>,
    states: Vec<State>,
    start: StateId,
}

impl StateMachine {
    pub(crate) fn from_parts(
        name: String,
        messages: Vec<String>,
        states: Vec<State>,
        start: StateId,
    ) -> Self {
        let message_lookup = messages
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), i as u16))
            .collect::<HashMap<_, _>>();
        debug_assert_eq!(
            message_lookup.len(),
            messages.len(),
            "duplicate message names"
        );
        StateMachine {
            name,
            messages,
            message_lookup,
            states,
            start,
        }
    }

    /// The machine's name (usually `<model>@r=<parameter>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The message alphabet, in declaration order.
    pub fn messages(&self) -> &[String] {
        &self.messages
    }

    /// Looks up a message id by name in O(1).
    pub fn message_id(&self, name: &str) -> Option<MessageId> {
        self.message_lookup.get(name).copied().map(MessageId)
    }

    /// The message name for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this machine.
    pub fn message_name(&self, id: MessageId) -> &str {
        &self.messages[id.index()]
    }

    /// All states, in generation order (start state first is *not*
    /// guaranteed; use [`StateMachine::start`]).
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The state with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this machine.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }

    /// Iterates over `(id, state)` pairs.
    pub fn states_with_ids(&self) -> impl Iterator<Item = (StateId, &State)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (StateId(i as u32), s))
    }

    /// Finds a state by display name.
    pub fn state_by_name(&self, name: &str) -> Option<(StateId, &State)> {
        self.states_with_ids().find(|(_, s)| s.name() == name)
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Ids of all states with the [`StateRole::Finish`] role.
    ///
    /// An unmerged machine may contain several final states (one per
    /// combination of the remaining variables when the completion
    /// threshold is reached); equivalent-state merging combines them into
    /// one, retrievable via [`StateMachine::unique_final`].
    pub fn final_state_ids(&self) -> Vec<StateId> {
        self.states_with_ids()
            .filter(|(_, s)| s.role() == StateRole::Finish)
            .map(|(id, _)| id)
            .collect()
    }

    /// The single final state, if the machine has exactly one.
    pub fn unique_final(&self) -> Option<StateId> {
        let finals = self.final_state_ids();
        match finals.as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// Total number of transitions in the machine.
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(State::transition_count).sum()
    }

    /// Number of phase transitions (transitions that perform actions).
    pub fn phase_transition_count(&self) -> usize {
        self.states
            .iter()
            .flat_map(|s| s.transitions.values())
            .filter(|t| t.is_phase_transition())
            .count()
    }
}

/// Incremental builder for hand-constructed machines (tests, examples and
/// models that are not generated from an abstract model).
///
/// # Examples
///
/// ```
/// use stategen_core::{Action, StateMachineBuilder};
///
/// let mut b = StateMachineBuilder::new("toggle", ["flip"]);
/// let off = b.add_state("off");
/// let on = b.add_state("on");
/// b.add_transition(off, "flip", on, vec![Action::send("ping")]);
/// b.add_transition(on, "flip", off, vec![]);
/// let machine = b.build(off);
/// assert_eq!(machine.state_count(), 2);
/// assert_eq!(machine.transition_count(), 2);
/// ```
#[derive(Debug)]
pub struct StateMachineBuilder {
    name: String,
    messages: Vec<String>,
    states: Vec<State>,
}

impl StateMachineBuilder {
    /// Starts a builder for a machine with the given message alphabet.
    ///
    /// # Panics
    ///
    /// Panics if `messages` is empty or contains duplicates.
    pub fn new<I, S>(name: impl Into<String>, messages: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let messages: Vec<String> = messages.into_iter().map(Into::into).collect();
        assert!(
            !messages.is_empty(),
            "machine must declare at least one message"
        );
        for (i, m) in messages.iter().enumerate() {
            assert!(
                !messages[..i].contains(m),
                "duplicate message `{m}` in machine alphabet"
            );
        }
        StateMachineBuilder {
            name: name.into(),
            messages,
            states: Vec::new(),
        }
    }

    /// Adds a normal state and returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        self.add_state_full(name, None, StateRole::Normal, Vec::new())
    }

    /// Adds a state with full control over vector, role and annotations.
    pub fn add_state_full(
        &mut self,
        name: impl Into<String>,
        vector: Option<StateVector>,
        role: StateRole,
        annotations: Vec<String>,
    ) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states
            .push(State::new(name, vector, role, annotations));
        id
    }

    /// Adds a transition from `from` on `message` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if the message is unknown, a transition for `(from, message)`
    /// already exists (machines are deterministic), or an id is invalid.
    pub fn add_transition(
        &mut self,
        from: StateId,
        message: &str,
        to: StateId,
        actions: Vec<Action>,
    ) {
        self.add_transition_annotated(from, message, to, actions, Vec::new());
    }

    /// Adds an annotated transition.
    ///
    /// # Panics
    ///
    /// As for [`StateMachineBuilder::add_transition`].
    pub fn add_transition_annotated(
        &mut self,
        from: StateId,
        message: &str,
        to: StateId,
        actions: Vec<Action>,
        annotations: Vec<String>,
    ) {
        if let Err(e) = self.try_add_transition_annotated(from, message, to, actions, annotations) {
            panic!("{e}");
        }
    }

    /// Adds a transition, reporting violations of the machine's
    /// determinism and range invariants as a [`CompileError`] instead of
    /// panicking — for callers constructing machines from untrusted or
    /// generated input.
    ///
    /// # Errors
    ///
    /// [`CompileError::UnknownMessage`] if the message is not in the
    /// alphabet; [`CompileError::StateOutOfRange`] if a state id is
    /// invalid; [`CompileError::DuplicateTransition`] if `(from, message)`
    /// already has a transition (machines are deterministic — a second
    /// transition would silently lose to the first in the dense table).
    pub fn try_add_transition(
        &mut self,
        from: StateId,
        message: &str,
        to: StateId,
        actions: Vec<Action>,
    ) -> Result<(), CompileError> {
        self.try_add_transition_annotated(from, message, to, actions, Vec::new())
    }

    /// Adds an annotated transition, reporting invariant violations as a
    /// [`CompileError`].
    ///
    /// # Errors
    ///
    /// As for [`StateMachineBuilder::try_add_transition`].
    pub fn try_add_transition_annotated(
        &mut self,
        from: StateId,
        message: &str,
        to: StateId,
        actions: Vec<Action>,
        annotations: Vec<String>,
    ) -> Result<(), CompileError> {
        let mid = self
            .messages
            .iter()
            .position(|m| m == message)
            .ok_or_else(|| CompileError::UnknownMessage(message.to_string()))?;
        for id in [from, to] {
            if id.index() >= self.states.len() {
                return Err(CompileError::StateOutOfRange {
                    index: id.index(),
                    states: self.states.len(),
                });
            }
        }
        let state = &mut self.states[from.index()];
        if state.transitions.contains_key(&(mid as u16)) {
            return Err(CompileError::DuplicateTransition {
                state: state.name.clone(),
                message: message.to_string(),
            });
        }
        state
            .transitions
            .insert(mid as u16, Transition::new(to, actions, annotations));
        Ok(())
    }

    /// Finalises the machine.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn build(self, start: StateId) -> StateMachine {
        assert!(
            start.index() < self.states.len(),
            "start state out of range"
        );
        StateMachine::from_parts(self.name, self.messages, self.states, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state_machine() -> StateMachine {
        let mut b = StateMachineBuilder::new("m", ["a", "b"]);
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", s1, vec![Action::send("x")]);
        b.add_transition(s1, "b", s0, vec![]);
        b.build(s0)
    }

    #[test]
    fn action_display_matches_paper() {
        assert_eq!(Action::send("not_free").to_string(), "->not_free");
        assert_eq!(Action::send("vote").message(), "vote");
    }

    #[test]
    fn transition_classification() {
        let m = two_state_machine();
        let a = m.message_id("a").unwrap();
        let b = m.message_id("b").unwrap();
        let s0 = m.start();
        let t = m.state(s0).transition(a).unwrap();
        assert!(t.is_phase_transition());
        let s1 = t.target();
        assert!(!m.state(s1).transition(b).unwrap().is_phase_transition());
        assert_eq!(m.phase_transition_count(), 1);
        assert_eq!(m.transition_count(), 2);
    }

    #[test]
    fn message_lookup() {
        let m = two_state_machine();
        assert_eq!(m.message_id("a"), Some(MessageId(0)));
        assert_eq!(m.message_id("zap"), None);
        assert_eq!(m.message_name(MessageId(1)), "b");
    }

    #[test]
    fn state_lookup_by_name() {
        let m = two_state_machine();
        let (id, s) = m.state_by_name("s1").unwrap();
        assert_eq!(id.index(), 1);
        assert_eq!(s.name(), "s1");
        assert!(m.state_by_name("zap").is_none());
    }

    #[test]
    fn missing_transition_is_none() {
        let m = two_state_machine();
        let b = m.message_id("b").unwrap();
        assert!(m.state(m.start()).transition(b).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate transition")]
    fn duplicate_transition_panics() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state("s0");
        b.add_transition(s0, "a", s0, vec![]);
        b.add_transition(s0, "a", s0, vec![]);
    }

    #[test]
    #[should_panic(expected = "unknown message")]
    fn unknown_message_panics() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state("s0");
        b.add_transition(s0, "zap", s0, vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate message")]
    fn duplicate_message_alphabet_panics() {
        StateMachineBuilder::new("m", ["a", "a"]);
    }

    #[test]
    fn try_add_transition_reports_errors() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state("s0");
        assert!(b.try_add_transition(s0, "a", s0, vec![]).is_ok());
        assert_eq!(
            b.try_add_transition(s0, "a", s0, vec![]),
            Err(CompileError::DuplicateTransition {
                state: "s0".into(),
                message: "a".into()
            })
        );
        assert_eq!(
            b.try_add_transition(s0, "zap", s0, vec![]),
            Err(CompileError::UnknownMessage("zap".into()))
        );
        assert_eq!(
            b.try_add_transition(s0, "a", StateId(7), vec![]),
            Err(CompileError::StateOutOfRange {
                index: 7,
                states: 1
            })
        );
        // The machine still builds with the one accepted transition.
        let m = b.build(s0);
        assert_eq!(m.transition_count(), 1);
    }

    #[test]
    fn transitions_iterate_in_message_order() {
        let mut b = StateMachineBuilder::new("m", ["a", "b", "c"]);
        let s0 = b.add_state("s0");
        b.add_transition(s0, "c", s0, vec![]);
        b.add_transition(s0, "a", s0, vec![]);
        let m = b.build(s0);
        let order: Vec<usize> = m
            .state(s0)
            .transitions()
            .map(|(mid, _)| mid.index())
            .collect();
        assert_eq!(order, vec![0, 2]);
    }
}
