//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        let span = (self.max_inclusive - self.min + 1) as u64;
        self.min + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>`; like the real proptest, the set may
/// end up smaller than the drawn size when duplicates are generated.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            let v = vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_bounded() {
        let mut rng = TestRng::new(6);
        for _ in 0..100 {
            let s = btree_set(any::<u64>(), 1..80).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 80);
        }
    }
}
