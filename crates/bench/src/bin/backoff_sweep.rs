//! Paper §2.2: "Various schemes such as random or exponential back-off,
//! or fixed or random server ordering, could be used to attempt to reduce
//! the probability of repeated deadlocks."
//!
//! Sweeps retry scheme × server ordering over many seeds with two
//! concurrent writers and reports deadlock-free completion, retries and
//! mean commit latency.

use asa_simnet::SimConfig;
use asa_storage::{run_harness, HarnessConfig, Pid, RetryScheme, ServerOrdering};

fn main() {
    let seeds: Vec<u64> = (0..40).collect();
    let schemes: [(&str, RetryScheme); 3] = [
        ("fixed(1200)", RetryScheme::Fixed { delay: 1_200 }),
        (
            "random(400..2400)",
            RetryScheme::Random {
                min: 400,
                max: 2_400,
            },
        ),
        (
            "exponential(500,cap 20k)",
            RetryScheme::Exponential {
                base: 500,
                max: 20_000,
            },
        ),
    ];
    let orderings = [
        ("fixed-order", ServerOrdering::Fixed),
        ("random-order", ServerOrdering::Random),
    ];
    println!(
        "{:<26} {:<13} {:>9} {:>9} {:>14}",
        "retry scheme", "server order", "committed", "retries", "mean latency"
    );
    for (sname, scheme) in schemes {
        for (oname, ordering) in orderings {
            let mut committed = 0usize;
            let mut retries = 0u32;
            let mut latency_sum: u64 = 0;
            let mut latency_n: u64 = 0;
            for &seed in &seeds {
                let config = HarnessConfig {
                    client_updates: vec![
                        vec![Pid::of(b"writer-a update")],
                        vec![Pid::of(b"writer-b update")],
                    ],
                    retry: scheme,
                    ordering,
                    contact_stagger: 0,
                    timeout: 2_000,
                    peer_gc: 8_000,
                    net: SimConfig {
                        seed,
                        min_delay: 1,
                        max_delay: 30,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let report = run_harness(&config);
                assert!(report.sets_agree(), "seed {seed}: histories must agree");
                if report.all_committed {
                    committed += 1;
                }
                retries += report.total_retries();
                for o in report.outcomes.iter().flatten() {
                    latency_sum += o.latency;
                    latency_n += 1;
                }
            }
            let mean = latency_sum.checked_div(latency_n).unwrap_or(0);
            println!(
                "{:<26} {:<13} {:>6}/{:<2} {:>9} {:>11} ticks",
                sname,
                oname,
                committed,
                seeds.len(),
                retries,
                mean
            );
        }
    }
    println!("\n(no-recovery baseline: with timeout and peer GC disabled, vote splits");
    let mut deadlocks = 0;
    for &seed in &seeds {
        let config = HarnessConfig {
            client_updates: vec![
                vec![Pid::of(b"writer-a update")],
                vec![Pid::of(b"writer-b update")],
            ],
            ordering: ServerOrdering::Random,
            contact_stagger: 0,
            timeout: 3_000_000,
            peer_gc: 3_000_000,
            net: SimConfig {
                seed,
                min_delay: 1,
                max_delay: 30,
                ..Default::default()
            },
            ..Default::default()
        };
        if !run_harness(&config).all_committed {
            deadlocks += 1;
        }
    }
    println!(" deadlock permanently: {deadlocks}/{} runs)", seeds.len());
}
