//! The commit protocol's message alphabet (paper Fig 20).

use std::fmt;
use std::str::FromStr;

/// Message name: `update`.
pub const UPDATE: &str = "update";
/// Message name: `vote`.
pub const VOTE: &str = "vote";
/// Message name: `commit`.
pub const COMMIT: &str = "commit";
/// Message name: `free`.
pub const FREE: &str = "free";
/// Message name: `not_free`.
pub const NOT_FREE: &str = "not_free";

/// All message names, in declaration order (paper Fig 20).
pub const MESSAGE_NAMES: [&str; 5] = [UPDATE, VOTE, COMMIT, FREE, NOT_FREE];

/// A message of the commit protocol.
///
/// `update`, `vote` and `commit` travel between peers; `free` and
/// `not_free` are exchanged between the FSM instances running on a single
/// node to serialise its choice of candidate update (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommitMessage {
    /// A client requests that this update be recorded.
    Update,
    /// A peer votes for this update.
    Vote,
    /// A peer commits to this update.
    Commit,
    /// The node's previously chosen update completed; instances may choose
    /// again.
    Free,
    /// The node chose some update; other instances may not choose.
    NotFree,
}

impl CommitMessage {
    /// All messages in declaration order.
    pub const ALL: [CommitMessage; 5] = [
        CommitMessage::Update,
        CommitMessage::Vote,
        CommitMessage::Commit,
        CommitMessage::Free,
        CommitMessage::NotFree,
    ];

    /// The message's wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            CommitMessage::Update => UPDATE,
            CommitMessage::Vote => VOTE,
            CommitMessage::Commit => COMMIT,
            CommitMessage::Free => FREE,
            CommitMessage::NotFree => NOT_FREE,
        }
    }

    /// `true` for messages exchanged between peers (as opposed to the
    /// node-local `free`/`not_free` signals).
    pub fn is_peer_message(self) -> bool {
        matches!(
            self,
            CommitMessage::Update | CommitMessage::Vote | CommitMessage::Commit
        )
    }
}

impl fmt::Display for CommitMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a [`CommitMessage`] from its wire name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMessageError(pub String);

impl fmt::Display for ParseMessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown commit-protocol message `{}`", self.0)
    }
}

impl std::error::Error for ParseMessageError {}

impl FromStr for CommitMessage {
    type Err = ParseMessageError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            UPDATE => Ok(CommitMessage::Update),
            VOTE => Ok(CommitMessage::Vote),
            COMMIT => Ok(CommitMessage::Commit),
            FREE => Ok(CommitMessage::Free),
            NOT_FREE => Ok(CommitMessage::NotFree),
            _ => Err(ParseMessageError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_names() {
        for m in CommitMessage::ALL {
            assert_eq!(m.as_str().parse::<CommitMessage>().unwrap(), m);
            assert_eq!(m.to_string(), m.as_str());
        }
    }

    #[test]
    fn order_matches_declaration() {
        let names: Vec<&str> = CommitMessage::ALL.iter().map(|m| m.as_str()).collect();
        assert_eq!(names, MESSAGE_NAMES);
    }

    #[test]
    fn peer_message_classification() {
        assert!(CommitMessage::Update.is_peer_message());
        assert!(CommitMessage::Vote.is_peer_message());
        assert!(CommitMessage::Commit.is_peer_message());
        assert!(!CommitMessage::Free.is_peer_message());
        assert!(!CommitMessage::NotFree.is_peer_message());
    }

    #[test]
    fn parse_error() {
        let err = "zap".parse::<CommitMessage>().unwrap_err();
        assert_eq!(err.to_string(), "unknown commit-protocol message `zap`");
    }
}
