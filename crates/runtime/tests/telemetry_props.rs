//! Property suite for the telemetry tentpole: the metrics a runtime
//! reports are *exactly* the events it executed, and observation never
//! changes behaviour.
//!
//! Two families of properties:
//!
//! 1. **Counters match ground truth.** Randomized op scripts
//!    (spawn/deliver/deliver-all/reset/release) run against a runtime
//!    while the test maintains its own independent oracle of what each
//!    delivery must do — a table walk of the source [`StateMachine`]
//!    for the flat tiers, a hand-evaluated guard model for the EFSM
//!    tier, and an observability rule for the flattened-HSM tier
//!    (every `session_lifecycle` transition either emits an action or
//!    moves the leaf state, while an absorbed message does neither).
//!    [`Runtime::metrics`] must agree with the oracle to the
//!    exact count on every field, on every tier, including the sharded
//!    pool's merge.
//!
//! 2. **Observation is behaviour-free.** The same script on the same
//!    engine with and without a flight recorder (attached, detached and
//!    re-attached mid-run) yields bit-identical actions, states,
//!    batch-transition counts, snapshots and counters.

use proptest::prelude::*;
use stategen_commit::{CommitConfig, CommitModel, MESSAGE_NAMES};
use stategen_core::efsm::{CmpOp, Efsm, EfsmBuilder, Guard, LinExpr, Update};
use stategen_core::{generate, StateMachine, StateMachineBuilder, StateRole};
use stategen_models::session_lifecycle;
use stategen_runtime::{Engine, MessageId, MetricsSnapshot, Runtime, SessionId, Spec};

/// Keep scripts from growing the pool without bound.
const MAX_LIVE: usize = 10;

/// One scripted pool operation. Session/message fields are free-range
/// selectors reduced modulo the live set / alphabet at apply time, so
/// every generated script is applicable to every machine.
#[derive(Debug, Clone, Copy)]
enum Op {
    Spawn,
    Deliver(usize, usize),
    DeliverAll(usize),
    Reset(usize),
    Release(usize),
}

fn script(messages: usize, with_batches: bool) -> impl Strategy<Value = Vec<Op>> {
    // Deliver twice for weight; the vendored prop_oneof! is uniform.
    let deliver = || (0..256usize, 0..messages).prop_map(|(s, m)| Op::Deliver(s, m));
    let op = if with_batches {
        prop_oneof![
            Just(Op::Spawn),
            deliver(),
            deliver(),
            (0..messages).prop_map(Op::DeliverAll),
            (0..256usize).prop_map(Op::Reset),
            (0..256usize).prop_map(Op::Release),
        ]
        .boxed()
    } else {
        prop_oneof![
            Just(Op::Spawn),
            deliver(),
            deliver(),
            (0..256usize).prop_map(Op::Reset),
            (0..256usize).prop_map(Op::Release),
        ]
        .boxed()
    };
    prop::collection::vec(op, 0..60)
}

/// The test's own tally of every countable event it caused.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct GroundTruth {
    deliveries: u64,
    transitions: u64,
    spawns: u64,
    releases_finished: u64,
    releases_aborted: u64,
    resets: u64,
}

impl GroundTruth {
    /// Asserts that a runtime's snapshot is exactly this tally (and
    /// that everything the script never touched stayed at zero).
    fn assert_matches(&self, m: &MetricsSnapshot, tier: &str) {
        assert_eq!(m.deliveries, self.deliveries, "{tier}: deliveries");
        assert_eq!(m.transitions, self.transitions, "{tier}: transitions");
        assert_eq!(
            m.guard_fall_throughs,
            self.deliveries - self.transitions,
            "{tier}: fall-throughs are exactly the absorbed deliveries"
        );
        assert_eq!(m.spawns, self.spawns, "{tier}: spawns");
        assert_eq!(
            m.releases_finished, self.releases_finished,
            "{tier}: finished reclaims"
        );
        assert_eq!(
            m.releases_aborted, self.releases_aborted,
            "{tier}: aborted reclaims"
        );
        assert_eq!(m.resets, self.resets, "{tier}: resets");
        for (name, value) in [
            ("timeouts_fired", m.timeouts_fired),
            ("timeouts_cancelled", m.timeouts_cancelled),
            ("timer_cascades", m.timer_cascades),
            ("swap_migrated_sessions", m.swap_migrated_sessions),
            ("swaps_drained", m.swaps_drained),
            ("swaps_completed", m.swaps_completed),
            ("swaps_aborted", m.swaps_aborted),
            ("snapshots", m.snapshots),
            ("restores", m.restores),
        ] {
            assert_eq!(value, 0, "{tier}: untouched counter {name} moved");
        }
    }
}

// ---------------------------------------------------------------------
// Flat tiers: table-walk oracle over the source machine.
// ---------------------------------------------------------------------

/// What the source machine says one delivery must do: `Some(target)`
/// when a transition fires (self-loops included), `None` when the
/// message is absorbed (no edge, or the session sits in a final state).
fn flat_step(machine: &StateMachine, state: u32, message: MessageId) -> Option<u32> {
    let st = &machine.states()[state as usize];
    if st.role() == StateRole::Finish {
        return None;
    }
    st.transition(message).map(|t| t.target().index() as u32)
}

/// Runs one script against any number of runtimes of the same flat
/// machine (different tiers / shard counts), checking observable state
/// names against the oracle as it goes, and returns the tally.
fn drive_flat(machine: &StateMachine, runtimes: &mut [Runtime], ops: &[Op]) -> GroundTruth {
    let ids: Vec<MessageId> = machine
        .messages()
        .iter()
        .map(|m| machine.message_id(m).expect("own alphabet"))
        .collect();
    let mut gt = GroundTruth::default();
    // Per-runtime handles (sharded runtimes mint different SessionIds),
    // one shared oracle state list, index-aligned.
    let mut live: Vec<Vec<SessionId>> = runtimes.iter().map(|_| Vec::new()).collect();
    let mut oracle: Vec<u32> = Vec::new();
    for &op in ops {
        match op {
            Op::Spawn => {
                if oracle.len() >= MAX_LIVE {
                    continue;
                }
                for (rt, handles) in runtimes.iter_mut().zip(&mut live) {
                    handles.push(rt.spawn());
                }
                oracle.push(machine.start().index() as u32);
                gt.spawns += 1;
            }
            Op::Deliver(s, m) => {
                if oracle.is_empty() {
                    continue;
                }
                let idx = s % oracle.len();
                let message = ids[m % ids.len()];
                gt.deliveries += 1;
                if let Some(target) = flat_step(machine, oracle[idx], message) {
                    gt.transitions += 1;
                    oracle[idx] = target;
                }
                let expected = machine.states()[oracle[idx] as usize].name();
                for (rt, handles) in runtimes.iter_mut().zip(&live) {
                    rt.deliver(handles[idx], message);
                    assert_eq!(rt.state_name(handles[idx]), expected);
                }
            }
            Op::DeliverAll(m) => {
                let message = ids[m % ids.len()];
                gt.deliveries += oracle.len() as u64;
                let mut batch_transitions = 0u64;
                for state in &mut oracle {
                    if let Some(target) = flat_step(machine, *state, message) {
                        batch_transitions += 1;
                        *state = target;
                    }
                }
                gt.transitions += batch_transitions;
                for rt in runtimes.iter_mut() {
                    assert_eq!(
                        rt.deliver_all(message),
                        batch_transitions,
                        "deliver_all reports the oracle's transition count"
                    );
                }
            }
            Op::Reset(s) => {
                if oracle.is_empty() {
                    continue;
                }
                let idx = s % oracle.len();
                for (rt, handles) in runtimes.iter_mut().zip(&live) {
                    rt.reset(handles[idx]);
                }
                oracle[idx] = machine.start().index() as u32;
                gt.resets += 1;
            }
            Op::Release(s) => {
                if oracle.is_empty() {
                    continue;
                }
                let idx = s % oracle.len();
                let finished = machine.states()[oracle[idx] as usize].role() == StateRole::Finish;
                if finished {
                    gt.releases_finished += 1;
                } else {
                    gt.releases_aborted += 1;
                }
                for (rt, handles) in runtimes.iter_mut().zip(&mut live) {
                    let handle = handles.swap_remove(idx);
                    assert_eq!(rt.is_finished(handle), finished);
                    rt.release(handle);
                }
                oracle.swap_remove(idx);
            }
        }
    }
    gt
}

/// Strategy: an arbitrary deterministic machine — 2..6 states, 1..4
/// messages, any transition table over them (self-loops allowed; they
/// are exactly the case a naive state-diff oracle would miscount), the
/// last state optionally final (and then edge-free: final states absorb
/// on every tier).
fn machine_strategy() -> impl Strategy<Value = StateMachine> {
    (
        2usize..=6,
        1usize..=4,
        // Raw edge selectors, reduced modulo `states + 1` in the map
        // below (the extra residue means "no edge"); sized for the
        // largest machine, extras ignored.
        prop::collection::vec(0usize..1024, 24),
        any::<bool>(),
        0usize..1024,
    )
        .prop_map(|(states, messages, raw_table, with_final, raw_start)| {
            let start = raw_start % states;
            let table: Vec<Option<usize>> = raw_table
                .into_iter()
                .take(states * messages)
                .map(|e| {
                    let t = e % (states + 1);
                    (t < states).then_some(t)
                })
                .collect();
            let mut b = StateMachineBuilder::new("prop", (0..messages).map(|m| format!("m{m}")));
            let ids: Vec<_> = (0..states)
                .map(|s| {
                    if with_final && s == states - 1 {
                        b.add_state_full(format!("s{s}"), None, StateRole::Finish, Vec::new())
                    } else {
                        b.add_state(format!("s{s}"))
                    }
                })
                .collect();
            for (i, target) in table.iter().enumerate() {
                let (from, msg) = (i / messages, i % messages);
                if with_final && from == states - 1 {
                    continue; // final states have no outgoing edges
                }
                if let Some(to) = target {
                    let actions = if msg % 2 == 0 {
                        vec![stategen_core::Action::send("a")]
                    } else {
                        vec![]
                    };
                    b.add_transition(ids[from], &format!("m{msg}"), ids[*to], actions);
                }
            }
            b.build(ids[start])
        })
}

fn commit_machine() -> StateMachine {
    generate(&CommitModel::new(CommitConfig::new(4).unwrap()))
        .unwrap()
        .machine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interpreted and compiled tiers of arbitrary machines: counters
    /// equal the table-walk oracle exactly.
    #[test]
    fn counters_match_ground_truth_on_random_machines(
        machine in machine_strategy(),
        ops in script(4, true),
    ) {
        let mut runtimes = [
            Engine::interpret(Spec::machine(machine.clone())).unwrap().runtime(),
            Engine::compile(Spec::machine(machine.clone())).unwrap().runtime(),
        ];
        let gt = drive_flat(&machine, &mut runtimes, &ops);
        gt.assert_matches(&runtimes[0].metrics(), "interpreted");
        gt.assert_matches(&runtimes[1].metrics(), "compiled");
    }

    /// The paper's generated commit machine, single-shard and 4-way
    /// sharded: the sharded pool's per-shard counters merge to the same
    /// exact tally.
    #[test]
    fn counters_match_ground_truth_on_commit_machine(ops in script(5, true)) {
        let machine = commit_machine();
        let mut runtimes = [
            Engine::compile(Spec::machine(machine.clone())).unwrap().runtime(),
            Runtime::new(Engine::compile(Spec::machine(machine.clone())).unwrap()).sharded(4),
        ];
        let gt = drive_flat(&machine, &mut runtimes, &ops);
        gt.assert_matches(&runtimes[0].metrics(), "compiled");
        gt.assert_matches(&runtimes[1].metrics(), "sharded-4");
    }
}

// ---------------------------------------------------------------------
// EFSM tier: hand-evaluated guard oracle, exact fall-through counts.
// ---------------------------------------------------------------------

/// A 3-state guarded pump: `step` alternates low/high while a level
/// counter stays under `cap` (guard fall-through once full), `toggle`
/// always alternates, `stop` finishes from `low` only. Small enough to
/// evaluate by hand, guarded enough that `guard_fall_throughs` is a
/// real count, not a constant.
fn pump_efsm() -> Efsm {
    let mut b = EfsmBuilder::new("pump", ["step", "toggle", "stop"]);
    let cap = b.add_param("cap");
    let level = b.add_var("level");
    let low = b.add_state("low");
    let high = b.add_state("high");
    let done = b.add_state("done");
    let below_cap = || {
        Guard::when(
            LinExpr::var(level).plus_const(1),
            CmpOp::Le,
            LinExpr::param(cap),
        )
    };
    b.add_transition(
        low,
        "step",
        below_cap(),
        vec![Update::Inc(level)],
        vec![stategen_core::Action::send("up")],
        high,
    );
    b.add_transition(
        high,
        "step",
        below_cap(),
        vec![Update::Inc(level)],
        vec![],
        low,
    );
    b.add_transition(low, "toggle", Guard::always(), vec![], vec![], high);
    b.add_transition(high, "toggle", Guard::always(), vec![], vec![], low);
    b.add_transition(
        low,
        "stop",
        Guard::always(),
        vec![],
        vec![stategen_core::Action::send("off")],
        done,
    );
    b.build(low, Some(done))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled-EFSM tier against a hand-evaluated model of the
    /// pump machine: state, variable value, transition count and
    /// guard-fall-through count all exact.
    #[test]
    fn counters_match_ground_truth_on_guarded_efsm(
        cap in 0i64..=5,
        ops in script(3, true),
    ) {
        let engine = Engine::compile(Spec::efsm(pump_efsm(), vec![cap])).unwrap();
        let mut rt = engine.runtime();
        let ids: Vec<MessageId> = ["step", "toggle", "stop"]
            .iter()
            .map(|m| rt.message_id(m).unwrap())
            .collect();
        let names = ["low", "high", "done"];

        let mut gt = GroundTruth::default();
        let mut live: Vec<SessionId> = Vec::new();
        // Oracle: (state index, level) per session.
        let mut oracle: Vec<(usize, i64)> = Vec::new();
        // One delivery in the model: Some(new state) iff a guard-open
        // transition exists, mutating `level` by its update.
        let step = |state: &mut (usize, i64), m: usize, cap: i64| -> bool {
            match (state.0, m) {
                (2, _) => false, // done: absorbing final state
                (s @ (0 | 1), 0) if state.1 < cap => {
                    state.1 += 1;
                    state.0 = 1 - s;
                    true
                }
                (_, 0) => false, // pump full: guard fall-through
                (s @ (0 | 1), 1) => {
                    state.0 = 1 - s;
                    true
                }
                (0, 2) => {
                    state.0 = 2;
                    true
                }
                _ => false, // stop outside `low`
            }
        };

        for op in ops {
            match op {
                Op::Spawn => {
                    if live.len() >= MAX_LIVE {
                        continue;
                    }
                    live.push(rt.spawn());
                    oracle.push((0, 0));
                    gt.spawns += 1;
                }
                Op::Deliver(s, m) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = s % live.len();
                    gt.deliveries += 1;
                    if step(&mut oracle[idx], m, cap) {
                        gt.transitions += 1;
                    }
                    rt.deliver(live[idx], ids[m]);
                    prop_assert_eq!(rt.state_name(live[idx]), names[oracle[idx].0]);
                    prop_assert_eq!(rt.vars(live[idx]), &[oracle[idx].1]);
                }
                Op::DeliverAll(m) => {
                    gt.deliveries += live.len() as u64;
                    let mut batch = 0u64;
                    for state in &mut oracle {
                        batch += u64::from(step(state, m, cap));
                    }
                    gt.transitions += batch;
                    prop_assert_eq!(rt.deliver_all(ids[m]), batch);
                }
                Op::Reset(s) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = s % live.len();
                    rt.reset(live[idx]);
                    oracle[idx] = (0, 0);
                    gt.resets += 1;
                }
                Op::Release(s) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = s % live.len();
                    let finished = oracle[idx].0 == 2;
                    prop_assert_eq!(rt.is_finished(live[idx]), finished);
                    if finished {
                        gt.releases_finished += 1;
                    } else {
                        gt.releases_aborted += 1;
                    }
                    rt.release(live.swap_remove(idx));
                    oracle.swap_remove(idx);
                }
            }
        }
        gt.assert_matches(&rt.metrics(), "compiled-efsm");
    }

    /// The flattened-HSM tier on the session-lifecycle statechart.
    /// Every transition of that machine either emits actions (entry and
    /// exit handlers, explicit sends — including the `ping` internal
    /// transition a pure state-diff oracle would miss) or moves the
    /// leaf state (the bare `close` edges), and an absorbed message
    /// does neither — so the two observations combined are an exact
    /// transition oracle.
    #[test]
    fn counters_match_ground_truth_on_flattened_hsm(ops in script(11, false)) {
        let hsm = session_lifecycle();
        let alphabet: Vec<String> = hsm.messages().to_vec();
        let mut rt = Engine::compile(Spec::hierarchical(hsm)).unwrap().runtime();
        let ids: Vec<MessageId> = alphabet
            .iter()
            .map(|m| rt.message_id(m).unwrap())
            .collect();

        let mut gt = GroundTruth::default();
        let mut live: Vec<SessionId> = Vec::new();
        for op in ops {
            match op {
                Op::Spawn => {
                    if live.len() >= MAX_LIVE {
                        continue;
                    }
                    live.push(rt.spawn());
                    gt.spawns += 1;
                }
                Op::Deliver(s, m) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = s % live.len();
                    gt.deliveries += 1;
                    let before = rt.state_name(live[idx]).to_string();
                    let emitted = !rt.deliver(live[idx], ids[m]).is_empty();
                    // Every lifecycle transition either emits an action
                    // or moves the leaf state (the bare `close` edges);
                    // an absorbed message does neither.
                    let transitioned = emitted || rt.state_name(live[idx]) != before;
                    gt.transitions += u64::from(transitioned);
                }
                Op::DeliverAll(_) => unreachable!("script(_, false) emits no batches"),
                Op::Reset(s) => {
                    if live.is_empty() {
                        continue;
                    }
                    rt.reset(live[s % live.len()]);
                    gt.resets += 1;
                }
                Op::Release(s) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = s % live.len();
                    if rt.state_name(live[idx]) == "Closed" {
                        gt.releases_finished += 1;
                    } else {
                        gt.releases_aborted += 1;
                    }
                    rt.release(live.swap_remove(idx));
                }
            }
        }
        gt.assert_matches(&rt.metrics(), "flattened-hsm");
    }

    /// Attaching, detaching and re-attaching the flight recorder never
    /// changes anything observable: actions, state names, batch
    /// transition counts, finished flags, counters, and the final
    /// snapshot are bit-identical to the unobserved run.
    #[test]
    fn observation_never_changes_behaviour(
        ops in script(5, true),
        toggle_at in 0usize..60,
    ) {
        let machine = commit_machine();
        let engine = || Engine::compile(Spec::machine(machine.clone())).unwrap();
        let mut observed = engine().runtime();
        let mut plain = engine().runtime();
        observed.attach_recorder(16);

        let ids: Vec<MessageId> = MESSAGE_NAMES
            .iter()
            .map(|m| plain.message_id(m).unwrap())
            .collect();
        let mut live: Vec<SessionId> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if i == toggle_at {
                // Mid-run detach + re-attach: the rings reset, the
                // behaviour must not.
                observed.detach_recorder();
                prop_assert!(!observed.recorder_attached());
                observed.attach_recorder(16);
            }
            match *op {
                Op::Spawn => {
                    if live.len() >= MAX_LIVE {
                        continue;
                    }
                    let a = observed.spawn();
                    let b = plain.spawn();
                    prop_assert_eq!(a, b, "same spawn order mints the same handle");
                    live.push(a);
                }
                Op::Deliver(s, m) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = s % live.len();
                    let acts: Vec<String> = observed
                        .deliver(live[idx], ids[m])
                        .iter()
                        .map(|a| a.message().to_string())
                        .collect();
                    let expected: Vec<String> = plain
                        .deliver(live[idx], ids[m])
                        .iter()
                        .map(|a| a.message().to_string())
                        .collect();
                    prop_assert_eq!(acts, expected);
                    prop_assert_eq!(
                        observed.state(live[idx]),
                        plain.state(live[idx])
                    );
                    prop_assert_eq!(
                        observed.is_finished(live[idx]),
                        plain.is_finished(live[idx])
                    );
                }
                Op::DeliverAll(m) => {
                    prop_assert_eq!(observed.deliver_all(ids[m]), plain.deliver_all(ids[m]));
                }
                Op::Reset(s) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = s % live.len();
                    observed.reset(live[idx]);
                    plain.reset(live[idx]);
                }
                Op::Release(s) => {
                    if live.is_empty() {
                        continue;
                    }
                    let handle = live.swap_remove(s % live.len());
                    observed.release(handle);
                    plain.release(handle);
                }
            }
        }
        prop_assert_eq!(observed.steps(), plain.steps());
        prop_assert_eq!(observed.metrics(), plain.metrics());
        prop_assert_eq!(observed.snapshot_all(), plain.snapshot_all());
    }
}
