//! Test-runner types: configuration, case outcomes and the deterministic
//! RNG driving generation.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the (unshrunk,
        // deterministic) shim fast while still exercising each property
        // across a spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed; the test fails with this message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is regenerated.
    Reject(String),
}

/// Result of running one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator. Each test derives its seed from
/// its own name, so runs are replayable and independent of test order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates a generator seeded from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(hash)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Modulo bias is negligible for the small bounds used in tests.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = (0..4)
            .map({
                let mut r = TestRng::from_name("x");
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..4)
            .map({
                let mut r = TestRng::from_name("x");
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..4)
            .map({
                let mut r = TestRng::from_name("y");
                move |_| r.next_u64()
            })
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_bounded() {
        let mut r = TestRng::new(7);
        for _ in 0..100 {
            assert!(r.below(10) < 10);
        }
    }
}
