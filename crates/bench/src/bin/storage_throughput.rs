//! End-to-end commit throughput of the pool-backed storage stack:
//! clients push version updates through the BFT commit protocol over
//! the simulated network, with every peer serving its in-flight
//! attempts from a `stategen-runtime` `Runtime` (typed generational
//! session handles) over the shared compiled commit
//! engine. Reports commits per wall-clock second across replication
//! factors and emits a machine-readable `BENCH_storage.json` at the
//! workspace root so future PRs can track the trajectory.
//!
//! Wall-clock throughput here measures the whole stack — discrete-event
//! simulator, retry/timeout machinery, peer session pools — not just
//! FSM dispatch (see `engine_tiers` for that), which is exactly what a
//! deployment-shaped regression gate wants.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use asa_simnet::SimConfig;
use asa_storage::{run_harness, HarnessConfig, Pid};

/// Client endpoints submitting updates concurrently.
const CLIENTS: usize = 6;

/// Updates submitted per client (commits per run = CLIENTS × this).
const UPDATES_PER_CLIENT: usize = 25;

struct Row {
    replication_factor: u32,
    commits: usize,
    all_committed: bool,
    retries: u32,
    commits_per_sec: f64,
    messages: u64,
    end_time: u64,
}

fn main() {
    let mut rows = Vec::new();
    for r in [4u32, 7, 10] {
        let client_updates: Vec<Vec<Pid>> = (0..CLIENTS)
            .map(|c| {
                (0..UPDATES_PER_CLIENT)
                    .map(|u| Pid::of(format!("r{r}/client{c}/update{u}").as_bytes()))
                    .collect()
            })
            .collect();
        let config = HarnessConfig {
            replication_factor: r,
            client_updates,
            net: SimConfig {
                seed: 7,
                min_delay: 1,
                max_delay: 10,
                ..Default::default()
            },
            deadline: 50_000_000,
            ..Default::default()
        };
        let start = Instant::now();
        let report = run_harness(&config);
        let wall = start.elapsed();
        let commits: usize = report.outcomes.iter().map(Vec::len).sum();
        // With concurrent clients the serialisation guarantee is on the
        // committed *set* (see `equivocator_and_concurrent_clients_r7`
        // in the storage tests); order agreement is only guaranteed for
        // sequential submission.
        assert!(
            report.sets_agree(),
            "correct peers must agree on the committed set"
        );
        rows.push(Row {
            replication_factor: r,
            commits,
            all_committed: report.all_committed,
            retries: report.total_retries(),
            commits_per_sec: commits as f64 / wall.as_secs_f64(),
            messages: report.stats.delivered,
            end_time: report.end_time,
        });
    }

    println!(
        "storage commit throughput — {CLIENTS} clients x {UPDATES_PER_CLIENT} updates, \
         pool-backed peers"
    );
    println!(
        "{:<4} {:>8} {:>10} {:>8} {:>14} {:>10} {:>12}",
        "r", "commits", "complete", "retries", "commits/sec", "messages", "virtual end"
    );
    for row in &rows {
        println!(
            "{:<4} {:>8} {:>10} {:>8} {:>14.0} {:>10} {:>12}",
            row.replication_factor,
            row.commits,
            row.all_committed,
            row.retries,
            row.commits_per_sec,
            row.messages,
            row.end_time
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"updates_per_client\": {UPDATES_PER_CLIENT},");
    let _ = writeln!(
        json,
        "  \"hardware_threads\": {},",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    json.push_str("  \"runs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"replication_factor\": {}, \"commits\": {}, \"all_committed\": {}, \
             \"retries\": {}, \"commits_per_sec\": {:.1}, \"messages_delivered\": {}, \
             \"virtual_end_time\": {}}}{}",
            row.replication_factor,
            row.commits,
            row.all_committed,
            row.retries,
            row.commits_per_sec,
            row.messages,
            row.end_time,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_storage.json");
    std::fs::write(&path, &json).expect("write BENCH_storage.json");
    println!("wrote {}", path.display());
}
