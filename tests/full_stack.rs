//! Cross-crate integration: the whole stack exercised together through
//! the facade — generation, rendering, generated code, simulation,
//! storage and routing.

use stategen::chord::{Key, Overlay};
use stategen::commit::{CommitConfig, CommitModel, ReferenceCommit};
use stategen::fsm::{
    generate, merge_equivalent_states, validate_machine, FsmInstance, MergeStrategy, ProtocolEngine,
};
use stategen::generated::GeneratedCommitR7;
use stategen::render::{render_dot, render_mermaid, render_xml, DotOptions};
use stategen::simnet::SimConfig;
use stategen::storage::{
    peer_set, pid_key, run_harness, DataBlock, DataService, HarnessConfig, NodeBehaviour,
    PeerBehaviour, Pid,
};

/// Generate → validate → render: every artefact is well-formed for every
/// small family member.
#[test]
fn generate_validate_render() {
    for r in [4u32, 7] {
        let g = generate(&CommitModel::new(CommitConfig::new(r).unwrap())).unwrap();
        let report = validate_machine(&g.machine);
        assert!(report.is_valid(), "r={r}: {:?}", report.diagnostics);

        let dot = render_dot(&g.machine, &DotOptions::default());
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert!(dot.contains(&format!("digraph \"commit@r={r}\"")));

        let xml = render_xml(&g.machine);
        assert!(xml.contains(&format!("states=\"{}\"", g.machine.state_count())));
        assert!(xml.trim_end().ends_with("</statemachine>"));

        let mermaid = render_mermaid(&g.machine);
        assert!(mermaid.starts_with("stateDiagram-v2"));
        assert_eq!(
            mermaid.matches(" --> ").count(),
            // one edge per transition + [*] start edge + final edge
            g.machine.transition_count() + 2
        );
    }
}

/// The build-time generated code, the interpreter and the hand-written
/// algorithm walk a nontrivial r = 7 trace in lock-step.
#[test]
fn generated_code_in_the_stack() {
    let config = CommitConfig::new(7).unwrap();
    let machine = generate(&CommitModel::new(config)).unwrap().machine;
    let mut generated = GeneratedCommitR7::new();
    let mut interpreted = FsmInstance::new(&machine);
    let mut reference = ReferenceCommit::new(config);
    let trace = [
        "vote", "update", "vote", "not_free", "vote", "vote", "free", "commit", "vote", "commit",
        "commit",
    ];
    for m in trace {
        let a = generated.deliver(m).unwrap();
        let b = interpreted.deliver(m).unwrap();
        let c = reference.deliver(m).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
    assert!(generated.is_finished());
    assert!(interpreted.is_finished());
    assert!(reference.is_finished());
}

/// Storage over routing: blocks placed via the overlay's ownership are
/// found again after overlay churn plus repair.
#[test]
fn storage_over_churning_overlay() {
    let overlay = Overlay::with_nodes((0..64u64).map(|i| Key::hash(&i.to_be_bytes())), 4);
    let mut service = DataService::new(overlay, 4, 99);
    let blocks: Vec<DataBlock> = (0..10)
        .map(|i| DataBlock::new(format!("payload {i}").into_bytes()))
        .collect();
    let mut pids = Vec::new();
    for b in &blocks {
        pids.push(service.store(b).unwrap());
    }
    // Knock out one replica holder per block (fail-stop), then verify
    // retrieval still succeeds from the remaining replicas.
    for pid in &pids {
        let peers = peer_set(service.overlay(), pid_key(pid), 4).unwrap();
        service.set_behaviour(peers[0], NodeBehaviour::FailStop);
    }
    for (pid, block) in pids.iter().zip(&blocks) {
        assert_eq!(&service.retrieve(*pid).unwrap(), block);
    }
}

/// The version-history harness driven by the facade: Byzantine peer,
/// lossy network, retries — safety and liveness hold.
#[test]
fn version_history_full_stack() {
    let config = HarnessConfig {
        replication_factor: 7,
        behaviours: vec![PeerBehaviour::Equivocator, PeerBehaviour::Silent],
        client_updates: vec![vec![Pid::of(b"fs-1"), Pid::of(b"fs-2")]],
        timeout: 3_000,
        net: SimConfig {
            seed: 7,
            min_delay: 1,
            max_delay: 15,
            drop_probability: 0.02,
            ..Default::default()
        },
        ..Default::default()
    };
    let report = run_harness(&config);
    assert!(
        report.all_committed,
        "updates commit despite 1 equivocator + 1 crash + loss"
    );
    assert!(report.sets_agree());
    let history = report.read_consistent(2).expect("f+1 consistent read");
    assert_eq!(history.len(), 2);
}

/// Merging the generated machine again is a no-op at every size
/// (the pipeline reaches a fixpoint).
#[test]
fn merge_fixpoint_stability() {
    for r in [4u32, 7, 13] {
        let g = generate(&CommitModel::new(CommitConfig::new(r).unwrap())).unwrap();
        let (again, _) = merge_equivalent_states(&g.machine, MergeStrategy::ToFixpoint);
        assert_eq!(again.state_count(), g.machine.state_count(), "r={r}");
    }
}

/// The facade prelude suffices for the quickstart workflow.
#[test]
fn prelude_workflow() {
    use stategen::prelude::*;
    let generated = generate(&CommitModel::new(CommitConfig::new(4).unwrap())).unwrap();
    let text = TextRenderer::new().render(&generated.machine);
    assert!(text.contains("machine: commit@r=4"));
    let mut instance = FsmInstance::new(&generated.machine);
    instance.deliver("update").unwrap();
    assert_eq!(instance.state_name(), "T/0/T/0/F/T/T");
}
