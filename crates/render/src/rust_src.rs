//! Rust source renderer: the paper's "source-level protocol
//! implementation" artefact (§3.5, Fig 16), as a compilable Rust module.
//!
//! The generated module mirrors the structure of the paper's generated
//! Java: one handler function per message, each a `match` (switch) over
//! all states, with phase transitions performing their actions. States are
//! an enum whose variants are named by the encoded variable values, as in
//! Fig 16's `F-0-F-0-F-F-F` tokens. Generated commentary is attached as
//! doc comments (paper: "Commentary on states and transitions ... is also
//! included in the generated code").
//!
//! The module is self-contained (no dependencies), so it can be written
//! into a code base once (paper §4.2 "one-off generation"), or emitted by
//! a build script — the `stategen-generated` crate does the latter and
//! cross-checks the compiled code against the interpreted machine.

use stategen_core::{StateMachine, StateRole};

use crate::codebuf::CodeBuffer;

/// A legal Rust identifier for a state name: `T/2/F/0/F/F/F` →
/// `T_2_F_0_F_F_F` (a leading digit gets an `S_` prefix).
pub fn rust_ident(name: &str) -> String {
    let mut ident: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        ident.insert_str(0, "S_");
    }
    ident
}

/// Renders `machine` as a self-contained Rust module.
///
/// The module exposes:
///
/// * `pub enum State` — one variant per state, doc-commented with the
///   state's generated description;
/// * `pub const START: State`, `pub const MACHINE_NAME: &str`,
///   `pub const MESSAGES: &[&str]`;
/// * `pub fn state_name(State) -> &'static str`;
/// * `pub fn is_final(State) -> bool`;
/// * `pub fn receive_<message>(State) -> Option<(State, &'static [&'static str])>`
///   per message — `None` when the message is not applicable in the state
///   (the generated Java simply has no `case` arm);
/// * `pub fn receive(State, &str) -> Option<(State, &'static [&'static str])>`
///   — name-based dispatcher (`None` also for unknown messages).
pub fn render_rust_module(machine: &StateMachine) -> String {
    let idents: Vec<String> = unique_idents(machine);
    let mut b = CodeBuffer::new();

    // Plain `//` comments and per-item attributes keep the module valid
    // both as a standalone file and when `include!`d into a module body.
    b.add_ln([
        "// Generated from machine `",
        machine.name(),
        "`. Do not edit.",
    ]);
    b.blank();

    // -- State enum. -------------------------------------------------------
    b.add_ln([
        "/// States of `",
        machine.name(),
        "`, named by their encoded variable values.",
    ]);
    b.add_ln(["#[allow(non_camel_case_types)]"]);
    b.add_ln(["#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]"]);
    b.add(["pub enum State"]);
    b.enter_block();
    for (state, ident) in machine.states().iter().zip(&idents) {
        b.add_ln(["/// `", state.name(), "`"]);
        for line in state.annotations() {
            b.add_ln(["/// ", line]);
        }
        b.add_ln([ident.as_str(), ","]);
    }
    b.exit_block();
    b.blank();

    // -- Constants. ----------------------------------------------------------
    b.add_ln(["/// Name of the machine this module was generated from."]);
    b.add_ln(["pub const MACHINE_NAME: &str = \"", machine.name(), "\";"]);
    b.blank();
    b.add_ln(["/// The machine's message alphabet."]);
    let quoted: Vec<String> = machine
        .messages()
        .iter()
        .map(|m| format!("\"{m}\""))
        .collect();
    b.add_ln(["pub const MESSAGES: &[&str] = &[", &quoted.join(", "), "];"]);
    b.blank();
    b.add_ln(["/// The start state."]);
    b.add_ln([
        "pub const START: State = State::",
        &idents[machine.start().index()],
        ";",
    ]);
    b.blank();

    // -- state_name. -----------------------------------------------------------
    b.add_ln(["/// The display name of a state."]);
    b.add(["pub fn state_name(state: State) -> &'static str"]);
    b.enter_block();
    b.add(["match state"]);
    b.enter_block();
    for (state, ident) in machine.states().iter().zip(&idents) {
        b.add_ln(["State::", ident, " => \"", state.name(), "\","]);
    }
    b.exit_block();
    b.exit_block();
    b.blank();

    // -- is_final. ---------------------------------------------------------------
    b.add_ln(["/// `true` once the protocol instance has completed."]);
    b.add(["pub fn is_final(state: State) -> bool"]);
    b.enter_block();
    let finals: Vec<&str> = machine
        .states()
        .iter()
        .zip(&idents)
        .filter(|(s, _)| s.role() == StateRole::Finish)
        .map(|(_, i)| i.as_str())
        .collect();
    if finals.is_empty() {
        b.add_ln(["let _ = state;"]);
        b.add_ln(["false"]);
    } else {
        let pats: Vec<String> = finals.iter().map(|i| format!("State::{i}")).collect();
        b.add_ln(["matches!(state, ", &pats.join(" | "), ")"]);
    }
    b.exit_block();
    b.blank();

    // -- Per-message handlers (the Fig 16 switch, as a match). ---------------------
    for m in machine.messages() {
        let mid = machine.message_id(m).expect("message belongs to machine");
        b.add_ln([
            "/// Handles a `",
            m,
            "` message: returns the new state and the",
        ]);
        b.add_ln(["/// messages to send, or `None` when not applicable in `state`."]);
        b.add([
            "pub fn receive_",
            &fn_suffix(m),
            "(state: State) -> Option<(State, &'static [&'static str])>",
        ]);
        b.enter_block();
        b.add(["match state"]);
        b.enter_block();
        let mut any = false;
        for (state, ident) in machine.states().iter().zip(&idents) {
            let Some(t) = state.transition(mid) else {
                continue;
            };
            any = true;
            let actions: Vec<String> = t
                .actions()
                .iter()
                .map(|a| format!("\"{}\"", a.message()))
                .collect();
            b.add_ln([
                "State::",
                ident,
                " => Some((State::",
                &idents[t.target().index()],
                ", &[",
                &actions.join(", "),
                "])),",
            ]);
        }
        if any {
            b.add_ln(["_ => None,"]);
        } else {
            b.add_ln(["_ => None, // message never applicable"]);
        }
        b.exit_block();
        b.exit_block();
        b.blank();
    }

    // -- Dispatcher. -------------------------------------------------------------------
    b.add_ln(["/// Dispatches a message by name; `None` for unknown or inapplicable"]);
    b.add_ln(["/// messages."]);
    b.add([
        "pub fn receive(state: State, message: &str) -> Option<(State, &'static [&'static str])>",
    ]);
    b.enter_block();
    b.add(["match message"]);
    b.enter_block();
    for m in machine.messages() {
        b.add_ln(["\"", m, "\" => receive_", &fn_suffix(m), "(state),"]);
    }
    b.add_ln(["_ => None,"]);
    b.exit_block();
    b.exit_block();
    b.into_string()
}

/// Snake-case function suffix for a message name.
fn fn_suffix(message: &str) -> String {
    message
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Identifiers for all states, deduplicated with numeric suffixes.
fn unique_idents(machine: &StateMachine) -> Vec<String> {
    let mut seen: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    machine
        .states()
        .iter()
        .map(|s| {
            let base = rust_ident(s.name());
            let n = seen.entry(base.clone()).or_insert(0);
            *n += 1;
            if *n == 1 {
                base
            } else {
                format!("{base}__{n}")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stategen_core::{Action, StateMachineBuilder};

    fn toy_machine() -> StateMachine {
        let mut b = StateMachineBuilder::new("toy", ["vote", "not_free"]);
        let s0 = b.add_state("F/0");
        let s1 = b.add_state("T/1");
        let fin = b.add_state_full("T/2", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "vote", s1, vec![Action::send("commit")]);
        b.add_transition(s1, "vote", fin, vec![]);
        b.add_transition(s1, "not_free", s0, vec![]);
        b.build(s0)
    }

    #[test]
    fn module_contains_expected_items() {
        let out = render_rust_module(&toy_machine());
        assert!(out.contains("pub enum State {"));
        assert!(out.contains("F_0,"));
        assert!(out.contains("pub const START: State = State::F_0;"));
        assert!(out.contains("pub const MESSAGES: &[&str] = &[\"vote\", \"not_free\"];"));
        assert!(out.contains("pub fn receive_vote(state: State)"));
        assert!(out.contains("pub fn receive_not_free(state: State)"));
        assert!(out.contains("State::F_0 => Some((State::T_1, &[\"commit\"])),"));
        assert!(out.contains("matches!(state, State::T_2)"));
    }

    #[test]
    fn ident_sanitisation() {
        assert_eq!(rust_ident("T/2/F/0/F/F/F"), "T_2_F_0_F_F_F");
        assert_eq!(rust_ident("1/0/1/0"), "S_1_0_1_0");
        assert_eq!(rust_ident("idle-free"), "idle_free");
    }

    #[test]
    fn duplicate_names_deduplicated() {
        let mut b = StateMachineBuilder::new("dup", ["m"]);
        let s0 = b.add_state("a-b");
        let s1 = b.add_state("a/b");
        b.add_transition(s0, "m", s1, vec![]);
        let m = b.build(s0);
        let out = render_rust_module(&m);
        assert!(out.contains("a_b,"));
        assert!(out.contains("a_b__2,"));
    }

    #[test]
    fn balanced_braces() {
        let out = render_rust_module(&toy_machine());
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    /// The generated module, interpreted textually, matches the machine:
    /// every transition appears exactly once in a handler.
    #[test]
    fn handler_arm_count_matches_transitions() {
        let m = toy_machine();
        let out = render_rust_module(&m);
        let arms = out.matches("=> Some((State::").count();
        assert_eq!(arms, m.transition_count());
    }
}
