//! Build-time state-machine generation (paper §4.2/§4.3).
//!
//! The paper's deployed policy is "executed the abstract model with the
//! default replication factor, generated source code from the resulting
//! FSM, and copied that into the code-base". A Cargo build script is the
//! modern equivalent of that one-off generation step: the abstract model
//! runs here, the renderer emits Rust modules into `OUT_DIR`, and the
//! crate compiles them like any other source.

use std::env;
use std::fs;
use std::path::PathBuf;

use stategen_commit::{CommitConfig, CommitModel};
use stategen_core::generate;
use stategen_render::render_rust_module;

fn main() {
    println!("cargo::rerun-if-changed=build.rs");
    let out_dir = PathBuf::from(env::var("OUT_DIR").expect("OUT_DIR is set by cargo"));
    for r in [4u32, 7] {
        let config = CommitConfig::new(r).expect("valid replication factor");
        let generated = generate(&CommitModel::new(config)).expect("generation succeeds");
        let module = render_rust_module(&generated.machine);
        let path = out_dir.join(format!("commit_r{r}.rs"));
        fs::write(&path, module).expect("write generated module");
    }
}
