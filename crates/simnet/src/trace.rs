//! Event tracing: an optional, bounded record of everything the
//! simulator does, for debugging protocol runs and asserting determinism.

use crate::sim::{NodeId, SimTime};

/// What happened at one traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was delivered to a node's handler.
    Delivered {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
    },
    /// A message was dropped by the network.
    Dropped {
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// A duplicate copy was scheduled.
    Duplicated {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
    },
    /// A message addressed to a crashed node was discarded.
    ToCrashed {
        /// Sender.
        from: NodeId,
        /// Crashed recipient.
        to: NodeId,
    },
    /// A message was held back past later sends (reordering injection).
    Reordered {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
    },
    /// A node fail-stopped.
    Crashed {
        /// The node that went down.
        node: NodeId,
    },
    /// A crashed node came back up.
    Restarted {
        /// The node that recovered.
        node: NodeId,
    },
    /// A timer fired.
    Timer {
        /// The node whose timer fired.
        node: NodeId,
        /// The timer tag.
        tag: u64,
    },
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded in-memory event trace. Recording stops silently at the
/// capacity (the counters in [`SimStats`](crate::SimStats) remain exact).
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    truncated: bool,
}

impl Trace {
    /// Creates a trace that keeps at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            truncated: false,
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// `true` if events were discarded after the capacity was reached.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub(crate) fn record(&mut self, at: SimTime, kind: TraceKind) {
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent { at, kind });
        } else {
            self.truncated = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_recording() {
        let mut t = Trace::with_capacity(2);
        t.record(
            1,
            TraceKind::Timer {
                node: NodeId(0),
                tag: 7,
            },
        );
        assert_eq!(t.len(), 1);
        assert!(!t.is_truncated());
        t.record(
            2,
            TraceKind::Timer {
                node: NodeId(0),
                tag: 8,
            },
        );
        t.record(
            3,
            TraceKind::Timer {
                node: NodeId(0),
                tag: 9,
            },
        );
        assert_eq!(t.len(), 2);
        assert!(t.is_truncated());
        assert_eq!(t.events()[0].at, 1);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::with_capacity(8);
        assert!(t.is_empty());
        assert_eq!(t.events(), &[]);
    }
}
