//! Cross-implementation equivalence (paper §3.2's spectrum):
//!
//! * the generated FSM (interpreted) — many states, no variables;
//! * the hand-written reference algorithm — one state, many variables;
//! * the EFSM — few states, counter variables;
//!
//! must all emit identical action traces and agree on completion for any
//! message sequence, for every family member. This is the property that
//! makes the generative approach trustworthy: the generated artefacts
//! really implement the algorithm.
//!
//! The compiled checks additionally drive the `stategen-runtime` facade
//! (`Spec → Engine → Runtime`) in lock-step with the direct engines, so
//! the owned pipeline surface is proven observationally identical to
//! the borrowed tiers it wraps.

use std::sync::OnceLock;

use proptest::prelude::*;

use stategen_commit::{
    commit_efsm, commit_efsm_instance, commit_efsm_params, CommitConfig, CommitModel,
    ReferenceCommit, MESSAGE_NAMES,
};
use stategen_core::{
    generate, CompiledEfsm, CompiledInstance, CompiledMachine, Efsm, EfsmSessionPool, FsmInstance,
    ProtocolEngine, SessionPool, StateMachine,
};
use stategen_runtime::{Engine, Spec};

/// Family members exercised by the equivalence suites: every machine up
/// to r = 6, plus two larger representatives.
const FAMILY: [u32; 7] = [2, 3, 4, 5, 6, 7, 13];

fn machine(r: u32) -> &'static StateMachine {
    static MACHINES: OnceLock<Vec<(u32, StateMachine)>> = OnceLock::new();
    let machines = MACHINES.get_or_init(|| {
        FAMILY
            .iter()
            .map(|&r| {
                let model = CommitModel::new(CommitConfig::new(r).unwrap());
                (r, generate(&model).unwrap().machine)
            })
            .collect()
    });
    &machines
        .iter()
        .find(|(mr, _)| *mr == r)
        .expect("prebuilt r")
        .1
}

fn compiled(r: u32) -> &'static CompiledMachine {
    static COMPILED: OnceLock<Vec<(u32, CompiledMachine)>> = OnceLock::new();
    let compiled = COMPILED.get_or_init(|| {
        FAMILY
            .iter()
            .map(|&r| (r, CompiledMachine::compile(machine(r))))
            .collect()
    });
    &compiled
        .iter()
        .find(|(cr, _)| *cr == r)
        .expect("prebuilt r")
        .1
}

fn efsm() -> &'static Efsm {
    static EFSM: OnceLock<Efsm> = OnceLock::new();
    EFSM.get_or_init(commit_efsm)
}

fn compiled_efsm() -> &'static CompiledEfsm {
    static COMPILED: OnceLock<CompiledEfsm> = OnceLock::new();
    COMPILED.get_or_init(|| CompiledEfsm::compile(efsm()).expect("commit EFSM compiles"))
}

fn facade_engine(r: u32) -> &'static Engine {
    static ENGINES: OnceLock<Vec<(u32, Engine)>> = OnceLock::new();
    let engines = ENGINES.get_or_init(|| {
        FAMILY
            .iter()
            .map(|&r| {
                (
                    r,
                    Engine::compile(Spec::machine(machine(r).clone())).unwrap(),
                )
            })
            .collect()
    });
    &engines
        .iter()
        .find(|(er, _)| *er == r)
        .expect("prebuilt r")
        .1
}

fn facade_efsm_engine(r: u32) -> &'static Engine {
    static ENGINES: OnceLock<Vec<(u32, Engine)>> = OnceLock::new();
    let engines = ENGINES.get_or_init(|| {
        FAMILY
            .iter()
            .map(|&r| {
                let config = CommitConfig::new(r).unwrap();
                let spec = Spec::efsm(commit_efsm(), commit_efsm_params(&config));
                (r, Engine::compile(spec).unwrap())
            })
            .collect()
    });
    &engines
        .iter()
        .find(|(er, _)| *er == r)
        .expect("prebuilt r")
        .1
}

/// Drives the interpreted EFSM, the compiled-bytecode EFSM and a batched
/// EFSM session with the same messages, checking actions, variables and
/// completion agree after every delivery (the bytecode tier must be
/// observationally indistinguishable from the enum-tree interpreter).
fn check_compiled_efsm_equivalence(r: u32, messages: &[usize]) {
    let config = CommitConfig::new(r).unwrap();
    let compiled = compiled_efsm();
    let mut interp = commit_efsm_instance(efsm(), &config);
    let mut single = compiled.instance(commit_efsm_params(&config));
    let mut pool = EfsmSessionPool::new(compiled, commit_efsm_params(&config), 2);
    let mut facade = facade_efsm_engine(r).runtime();
    let facade_session = facade.spawn();
    for (step, &mi) in messages.iter().enumerate() {
        let name = MESSAGE_NAMES[mi % MESSAGE_NAMES.len()];
        let a_interp = interp.deliver(name).unwrap();
        let a_single = single.deliver(name).unwrap();
        let mid = compiled.message_id(name).unwrap();
        let a_pool0 = pool.deliver(0, mid);
        assert_eq!(
            a_interp,
            a_single,
            "r={r} step {step} ({name}): interpreted {a_interp:?} vs compiled {a_single:?} \
             (interp state {}, compiled state {})",
            interp.state_name(),
            single.state_name_str()
        );
        assert_eq!(
            a_interp, a_pool0,
            "r={r} step {step} ({name}): pool session diverged"
        );
        pool.deliver(1, mid);
        let facade_mid = facade.message_id(name).unwrap();
        assert_eq!(
            a_interp,
            facade.deliver(facade_session, facade_mid),
            "r={r} step {step} ({name}): facade session diverged"
        );
        assert_eq!(interp.vars(), single.vars(), "r={r} step {step} ({name})");
        assert_eq!(single.vars(), pool.vars(0), "r={r} step {step} ({name})");
        assert_eq!(pool.vars(0), pool.vars(1), "r={r} step {step} ({name})");
        assert_eq!(
            single.vars(),
            facade.vars(facade_session),
            "r={r} step {step} ({name})"
        );
        assert_eq!(
            interp.state_name(),
            single.state_name(),
            "r={r} step {step} ({name})"
        );
        assert_eq!(
            single.current_state(),
            pool.state(0),
            "r={r} step {step} ({name})"
        );
        assert_eq!(
            single.state_name_str(),
            facade.state_name(facade_session),
            "r={r} step {step} ({name})"
        );
        assert_eq!(
            interp.is_finished(),
            single.is_finished(),
            "r={r} step {step} ({name})"
        );
        assert_eq!(
            single.is_finished(),
            pool.is_finished(0),
            "r={r} step {step} ({name})"
        );
        assert_eq!(
            single.is_finished(),
            facade.is_finished(facade_session),
            "r={r} step {step} ({name})"
        );
    }
}

/// Drives all three engines with the same messages, checking actions and
/// completion agree after every delivery.
fn check_equivalence(r: u32, messages: &[usize]) {
    let config = CommitConfig::new(r).unwrap();
    let mut fsm = FsmInstance::new(machine(r));
    let mut reference = ReferenceCommit::new(config);
    let mut efsm_i = commit_efsm_instance(efsm(), &config);
    for (step, &mi) in messages.iter().enumerate() {
        let name = MESSAGE_NAMES[mi % MESSAGE_NAMES.len()];
        let a_fsm = fsm.deliver(name).unwrap();
        let a_ref = reference.deliver(name).unwrap();
        let a_efsm = efsm_i.deliver(name).unwrap();
        assert_eq!(
            a_fsm,
            a_ref,
            "r={r} step {step} ({name}): FSM {a_fsm:?} vs reference {a_ref:?} \
             (fsm state {}, ref state {})",
            fsm.state_name(),
            reference.state_name()
        );
        assert_eq!(
            a_fsm,
            a_efsm,
            "r={r} step {step} ({name}): FSM {a_fsm:?} vs EFSM {a_efsm:?} \
             (fsm state {}, efsm state {})",
            fsm.state_name(),
            efsm_i.state_name()
        );
        assert_eq!(
            fsm.is_finished(),
            reference.is_finished(),
            "r={r} step {step} ({name})"
        );
        assert_eq!(
            fsm.is_finished(),
            efsm_i.is_finished(),
            "r={r} step {step} ({name})"
        );
    }
}

/// Drives the interpreted engine, the compiled engine and two batched
/// sessions with the same messages, checking actions, state and
/// completion agree after every delivery (the compiled tier must be
/// observationally indistinguishable from the machine it flattened).
fn check_compiled_equivalence(r: u32, messages: &[usize]) {
    let compiled = compiled(r);
    let mut fsm = FsmInstance::new(machine(r));
    let mut single = CompiledInstance::new(compiled);
    let mut pool = SessionPool::new(compiled, 2);
    let mut facade = facade_engine(r).runtime();
    let facade_session = facade.spawn();
    for (step, &mi) in messages.iter().enumerate() {
        let name = MESSAGE_NAMES[mi % MESSAGE_NAMES.len()];
        let a_fsm = fsm.deliver(name).unwrap();
        let a_single = single.deliver(name).unwrap();
        let mid = compiled.message_id(name).unwrap();
        let a_pool0 = pool.deliver(0, mid);
        assert_eq!(
            a_fsm,
            a_single,
            "r={r} step {step} ({name}): FSM {a_fsm:?} vs compiled {a_single:?} \
             (fsm state {}, compiled state {})",
            fsm.state_name_str(),
            single.state_name_str()
        );
        assert_eq!(
            a_fsm, a_pool0,
            "r={r} step {step} ({name}): pool session diverged"
        );
        pool.deliver(1, mid);
        let facade_mid = facade.message_id(name).unwrap();
        assert_eq!(
            a_fsm,
            facade.deliver(facade_session, facade_mid),
            "r={r} step {step} ({name}): facade session diverged"
        );
        assert_eq!(
            fsm.state_name_str(),
            single.state_name_str(),
            "r={r} step {step} ({name})"
        );
        assert_eq!(
            single.current_state(),
            pool.state(0),
            "r={r} step {step} ({name})"
        );
        assert_eq!(pool.state(0), pool.state(1), "r={r} step {step} ({name})");
        assert_eq!(
            single.current_state(),
            facade.state(facade_session),
            "r={r} step {step}"
        );
        assert_eq!(
            single.state_name_str(),
            facade.state_name(facade_session),
            "r={r} step {step} ({name})"
        );
        assert_eq!(
            fsm.is_finished(),
            single.is_finished(),
            "r={r} step {step} ({name})"
        );
        assert_eq!(
            single.is_finished(),
            pool.is_finished(0),
            "r={r} step {step} ({name})"
        );
        assert_eq!(
            single.is_finished(),
            facade.is_finished(facade_session),
            "r={r} step {step} ({name})"
        );
        assert_eq!(fsm.steps(), single.steps(), "r={r} step {step} ({name})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn trace_equivalence_r4(messages in prop::collection::vec(0usize..5, 0..80)) {
        check_equivalence(4, &messages);
    }

    #[test]
    fn trace_equivalence_r7(messages in prop::collection::vec(0usize..5, 0..120)) {
        check_equivalence(7, &messages);
    }

    #[test]
    fn trace_equivalence_r13(messages in prop::collection::vec(0usize..5, 0..200)) {
        check_equivalence(13, &messages);
    }

    /// Seeded random traces through every family member up to r = 6,
    /// cross-checking the interpreted, compiled and batched engines.
    #[test]
    fn compiled_trace_equivalence_to_r6(r in 2u32..=6, messages in prop::collection::vec(0usize..5, 0..200)) {
        check_compiled_equivalence(r, &messages);
    }

    #[test]
    fn compiled_trace_equivalence_r13(messages in prop::collection::vec(0usize..5, 0..200)) {
        check_compiled_equivalence(13, &messages);
    }

    /// Seeded random traces cross-checking the interpreted EFSM against
    /// the compiled guard/update bytecode (single instance and batched
    /// pool) for every family member up to r = 6.
    #[test]
    fn compiled_efsm_trace_equivalence_to_r6(r in 2u32..=6, messages in prop::collection::vec(0usize..5, 0..200)) {
        check_compiled_efsm_equivalence(r, &messages);
    }

    #[test]
    fn compiled_efsm_trace_equivalence_r13(messages in prop::collection::vec(0usize..5, 0..200)) {
        check_compiled_efsm_equivalence(13, &messages);
    }
}

/// Exhaustive equivalence over all short message sequences for r = 4:
/// every sequence of up to 6 messages (5^6 = 15625 sequences).
#[test]
fn exhaustive_short_traces_r4() {
    let mut sequence = Vec::new();
    fn recurse(sequence: &mut Vec<usize>, depth: usize) {
        check_equivalence(4, sequence);
        check_compiled_equivalence(4, sequence);
        check_compiled_efsm_equivalence(4, sequence);
        if depth == 0 {
            return;
        }
        for m in 0..5 {
            sequence.push(m);
            recurse(sequence, depth - 1);
            sequence.pop();
        }
    }
    recurse(&mut sequence, 6);
}

/// A canonical happy-path trace: update, two votes, two commits.
#[test]
fn canonical_commit_trace() {
    let config = CommitConfig::new(4).unwrap();
    let mut fsm = FsmInstance::new(machine(4));
    let mut reference = ReferenceCommit::new(config);
    for name in ["update", "vote", "vote", "commit", "commit"] {
        let a = fsm.deliver(name).unwrap();
        let b = reference.deliver(name).unwrap();
        assert_eq!(a, b);
    }
    assert!(fsm.is_finished());
    assert!(reference.is_finished());
}
