//! Property tests for the endpoint retry schemes (paper §2.2): the
//! exponential back-off's jittered delay is always within `[base, cap]`,
//! grows monotonically in the attempt number until the cap flattens the
//! curve, and is fully determined by the RNG seed.

use asa_simnet::SimRng;
use asa_storage::RetryScheme;
use proptest::prelude::*;

proptest! {
    #[test]
    fn exponential_delay_within_base_and_cap(
        base in 1u64..10_000,
        span in 0u64..1_000_000,
        attempt in 0u32..80,
        seed in any::<u64>(),
    ) {
        let cap = base + span;
        let s = RetryScheme::Exponential { base, max: cap };
        let d = s.delay(attempt, &mut SimRng::new(seed));
        prop_assert!(d >= base, "delay {d} below base {base}");
        prop_assert!(d <= cap, "delay {d} above cap {cap}");
    }

    /// Worst-case jitter of attempt n stays at or below best-case jitter
    /// of attempt n + 1 while the raw delay is under the cap: the
    /// back-off curve is monotone, not just monotone in expectation.
    #[test]
    fn exponential_monotone_before_the_cap(
        base in 1u64..1_000,
        attempt in 0u32..20,
        seeds in prop::collection::vec(any::<u64>(), 8),
    ) {
        let cap = u64::MAX; // never flattens in this range
        let s = RetryScheme::Exponential { base, max: cap };
        let max_now = seeds
            .iter()
            .map(|&seed| s.delay(attempt, &mut SimRng::new(seed)))
            .max()
            .unwrap();
        let min_next = seeds
            .iter()
            .map(|&seed| s.delay(attempt + 1, &mut SimRng::new(seed)))
            .min()
            .unwrap();
        // 1.25 * base * 2^n <= 0.75 * base * 2^(n+1), with integer
        // truncation only widening the gap.
        prop_assert!(
            max_now <= min_next,
            "attempt {attempt}: max {max_now} > next min {min_next}"
        );
    }

    #[test]
    fn delays_are_seed_deterministic(
        base in 1u64..10_000,
        span in 0u64..100_000,
        attempt in 0u32..64,
        seed in any::<u64>(),
    ) {
        for scheme in [
            RetryScheme::Fixed { delay: base },
            RetryScheme::Random { min: base, max: base + span },
            RetryScheme::Exponential { base, max: base + span },
        ] {
            let a = scheme.delay(attempt, &mut SimRng::new(seed));
            let b = scheme.delay(attempt, &mut SimRng::new(seed));
            prop_assert_eq!(a, b, "{:?}", scheme);
        }
    }
}
