//! A hierarchical session-lifecycle statechart wrapping the commit
//! protocol with suspend/resume and failure superstates.
//!
//! The paper's flat commit machine captures one protocol *attempt*; a
//! deployed peer wraps attempts in a connection lifecycle — sessions
//! come up, suspend, fail and recover without losing their place in the
//! protocol. That overlay is naturally hierarchical: `suspend`/`fail`
//! apply from *anywhere* inside the established session (inherited
//! transitions), and `resume`/`recover` return to wherever the session
//! was (shallow history). Authored as a
//! [`HierarchicalMachine`] and
//! flattened, it runs on every existing execution tier unchanged.
//!
//! ```text
//! Connecting ──connect──▶ Established ⟨history⟩
//!                          ├── Idle (initial)
//!                          └── Commit ── Voting (initial) ── Deciding
//!   Established ──suspend──▶ Suspended ──resume──▶ H(Established)
//!   Established ──fail──▶ Failed{Probing} ──recover──▶ H(Established)
//!   … ──close──▶ Closed (final)
//! ```
//!
//! Shallow history restores the *direct* child of `Established`: a
//! session suspended while deep in `Commit.Deciding` resumes in
//! `Commit` and re-enters through its initial child `Voting` — the
//! attempt restarts from the vote request, which is exactly the commit
//! protocol's retry semantics (an interrupted attempt is re-proposed,
//! not resumed mid-quorum).

use stategen_core::efsm::{CmpOp, Guard, LinExpr, Update};
use stategen_core::{Action, HierarchicalMachine, HsmBuilder};

/// Builds the hierarchical session-lifecycle machine.
///
/// Alphabet: `connect`, `update`, `vote`, `commit`, `abort`, `ping`,
/// `suspend`, `resume`, `fail`, `recover`, `close`.
///
/// # Examples
///
/// ```
/// use stategen_core::{CompiledMachine, ProtocolEngine};
/// use stategen_models::session_lifecycle;
///
/// let hsm = session_lifecycle();
/// let mut session = hsm.instance();
/// session.deliver_ref("connect").unwrap();
/// session.deliver_ref("update").unwrap();
/// session.deliver_ref("suspend").unwrap();
/// session.deliver_ref("resume").unwrap(); // history: back into Commit
/// assert_eq!(session.state_name(), "Established.Commit.Voting~Established=Commit");
///
/// // The same statechart, flattened and compiled, serves traffic.
/// let compiled = CompiledMachine::compile(&hsm.flatten());
/// let mut fast = compiled.instance();
/// for m in ["connect", "update", "suspend", "resume"] {
///     fast.deliver_ref(m).unwrap();
/// }
/// assert_eq!(fast.state_name(), session.state_name());
/// ```
pub fn session_lifecycle() -> HierarchicalMachine {
    let mut b = HsmBuilder::new(
        "session-lifecycle",
        [
            "connect", "update", "vote", "commit", "abort", "ping", "suspend", "resume", "fail",
            "recover", "close",
        ],
    );
    let connecting = b.add_state("Connecting");

    let established = b.add_state("Established");
    let idle = b.add_child(established, "Idle");
    let commit = b.add_child(established, "Commit");
    let voting = b.add_child(commit, "Voting");
    let deciding = b.add_child(commit, "Deciding");
    b.enable_history(established);
    b.on_entry(established, vec![Action::send("online")]);
    b.on_exit(established, vec![Action::send("offline")]);
    b.on_entry(commit, vec![Action::send("attempt_begin")]);
    b.on_exit(commit, vec![Action::send("attempt_end")]);
    b.on_entry(voting, vec![Action::send("vote_req")]);
    b.on_entry(deciding, vec![Action::send("commit_req")]);

    let suspended = b.add_state("Suspended");
    let failed = b.add_state("Failed");
    let probing = b.add_child(failed, "Probing");
    b.on_entry(failed, vec![Action::send("alarm")]);
    b.on_entry(probing, vec![Action::send("probe")]);

    let closed = b.add_state("Closed");
    b.mark_final(closed);

    // Connection bring-up.
    b.add_transition(
        connecting,
        "connect",
        established,
        vec![Action::send("ack")],
    );

    // The wrapped commit attempt: Idle -> Commit{Voting -> Deciding} -> Idle.
    b.add_transition(idle, "update", commit, vec![]);
    b.add_transition(voting, "vote", deciding, vec![]);
    b.add_transition(deciding, "commit", idle, vec![Action::send("committed")]);
    // Declared on Commit: aborting applies in Voting and Deciding alike.
    b.add_transition(commit, "abort", idle, vec![Action::send("aborted")]);

    // Liveness check: answered from anywhere in the session without
    // disturbing the configuration (internal transition).
    b.add_internal_transition(established, "ping", vec![Action::send("pong")]);

    // Suspend/resume overlay: inherited from any depth, resumed via
    // shallow history.
    b.add_transition(established, "suspend", suspended, vec![]);
    b.add_history_transition(suspended, "resume", established, vec![]);

    // Failure/recovery overlay.
    b.add_transition(established, "fail", failed, vec![]);
    b.add_history_transition(
        probing,
        "recover",
        established,
        vec![Action::send("recovered")],
    );

    // Teardown, from every lifecycle phase.
    b.add_transition(connecting, "close", closed, vec![]);
    b.add_transition(established, "close", closed, vec![Action::send("bye")]);
    b.add_transition(suspended, "close", closed, vec![]);
    b.add_transition(failed, "close", closed, vec![]);

    b.build(connecting)
}

/// The guarded session lifecycle: [`session_lifecycle`] plus a *retry
/// budget* — the worked model proving the guarded statechart pipeline
/// end-to-end (`HsmBuilder` → `flatten_ir` → compiled-EFSM tier).
///
/// The statechart declares one parameter, `max_retries`, and one
/// variable, `retries`:
///
/// * aborting a commit attempt *below* the budget returns to `Idle` and
///   increments `retries` — the ordinary retry loop;
/// * aborting once the budget is spent (`retries + 1 >= max_retries`)
///   suspends the session into the `Failed` superstate instead (the
///   failure overlay's entry actions — `alarm`, `probe` — fire via the
///   synthesized exit/entry sequences), still incrementing `retries`;
/// * a successful commit resets the budget (`retries := 0`), exercising
///   the staged `Set` update path through every tier;
/// * recovery (`recover`, via shallow history) also restores a fresh
///   budget — the reset keeps `retries` provably bounded, which the
///   semantic analyzer (`stategen-analysis`) verifies: without it the
///   abort→fail→recover cycle grows the register without limit and the
///   `possible-overflow` lint fires.
///
/// Because the machine carries guards, it has no flat-FSM projection:
/// `Spec::hsm_with_params(session_lifecycle_guarded(), vec![max])`
/// lowers it onto the compiled-EFSM tier, where one compiled machine
/// serves every budget value.
///
/// # Examples
///
/// ```
/// use stategen_core::ProtocolEngine;
/// use stategen_models::session_lifecycle_guarded;
///
/// let hsm = session_lifecycle_guarded();
/// let mut session = hsm.instance_with(vec![2]); // budget: 2 attempts
/// for m in ["connect", "update", "abort", "update"] {
///     session.deliver_ref(m).unwrap();
/// }
/// assert_eq!(session.vars(), &[1]); // one retry consumed
/// session.deliver_ref("abort").unwrap(); // budget spent: escalate
/// assert_eq!(session.state_name(), "Failed.Probing~Established=Commit");
/// ```
pub fn session_lifecycle_guarded() -> HierarchicalMachine {
    let mut b = HsmBuilder::new(
        "session-lifecycle-guarded",
        [
            "connect", "update", "vote", "commit", "abort", "ping", "suspend", "resume", "fail",
            "recover", "close",
        ],
    );
    let max_retries = b.add_param("max_retries");
    let retries = b.add_var("retries");

    let connecting = b.add_state("Connecting");

    let established = b.add_state("Established");
    let idle = b.add_child(established, "Idle");
    let commit = b.add_child(established, "Commit");
    let voting = b.add_child(commit, "Voting");
    let deciding = b.add_child(commit, "Deciding");
    b.enable_history(established);
    b.on_entry(established, vec![Action::send("online")]);
    b.on_exit(established, vec![Action::send("offline")]);
    b.on_entry(commit, vec![Action::send("attempt_begin")]);
    b.on_exit(commit, vec![Action::send("attempt_end")]);
    b.on_entry(voting, vec![Action::send("vote_req")]);
    b.on_entry(deciding, vec![Action::send("commit_req")]);

    let suspended = b.add_state("Suspended");
    let failed = b.add_state("Failed");
    let probing = b.add_child(failed, "Probing");
    b.on_entry(failed, vec![Action::send("alarm")]);
    b.on_entry(probing, vec![Action::send("probe")]);

    let closed = b.add_state("Closed");
    b.mark_final(closed);

    b.add_transition(
        connecting,
        "connect",
        established,
        vec![Action::send("ack")],
    );

    // The wrapped commit attempt; success refunds the retry budget.
    b.add_transition(idle, "update", commit, vec![]);
    b.add_transition(voting, "vote", deciding, vec![]);
    b.add_guarded_transition(
        deciding,
        "commit",
        Guard::always(),
        vec![Update::Set(retries, LinExpr::constant(0))],
        idle,
        vec![Action::send("committed")],
    );
    // Declared on Commit, inherited by Voting and Deciding: abort
    // retries while the budget lasts, and suspends into the failure
    // superstate once `retries >= max_retries` would be exceeded.
    b.add_guarded_transition(
        commit,
        "abort",
        Guard::when(
            LinExpr::var(retries).plus_const(1),
            CmpOp::Lt,
            LinExpr::param(max_retries),
        ),
        vec![Update::Inc(retries)],
        idle,
        vec![Action::send("aborted")],
    );
    b.add_guarded_transition(
        commit,
        "abort",
        Guard::when(
            LinExpr::var(retries).plus_const(1),
            CmpOp::Ge,
            LinExpr::param(max_retries),
        ),
        vec![Update::Inc(retries)],
        failed,
        vec![Action::send("aborted")],
    );

    b.add_internal_transition(established, "ping", vec![Action::send("pong")]);

    b.add_transition(established, "suspend", suspended, vec![]);
    b.add_history_transition(suspended, "resume", established, vec![]);

    b.add_transition(established, "fail", failed, vec![]);
    // Recovery restores a *fresh* budget (`retries := 0`): without the
    // reset, abort→fail→recover cycles would grow `retries` without
    // bound — exactly what the analyzer's `possible-overflow` lint
    // flagged on the original formulation of this model.
    b.add_guarded_history_transition(
        probing,
        "recover",
        Guard::always(),
        vec![Update::Set(retries, LinExpr::constant(0))],
        established,
        vec![Action::send("recovered")],
    );

    b.add_transition(connecting, "close", closed, vec![]);
    b.add_transition(established, "close", closed, vec![Action::send("bye")]);
    b.add_transition(suspended, "close", closed, vec![]);
    b.add_transition(failed, "close", closed, vec![]);

    b.build(connecting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stategen_core::{
        validate_machine, CompiledMachine, FsmInstance, ProtocolEngine, SessionPool,
    };

    #[test]
    fn structure() {
        let hsm = session_lifecycle();
        assert_eq!(hsm.state_count(), 10);
        assert_eq!(hsm.composite_count(), 3); // Established, Commit, Failed
        assert_eq!(hsm.history_count(), 1);
        assert_eq!(hsm.messages().len(), 11);
    }

    #[test]
    fn happy_path_commit() {
        let hsm = session_lifecycle();
        let mut s = hsm.instance();
        assert_eq!(
            s.deliver_ref("connect").unwrap(),
            [Action::send("ack"), Action::send("online")]
        );
        assert_eq!(s.state_name(), "Established.Idle");
        assert_eq!(
            s.deliver_ref("update").unwrap(),
            [Action::send("attempt_begin"), Action::send("vote_req")]
        );
        assert_eq!(s.deliver_ref("vote").unwrap(), [Action::send("commit_req")]);
        assert_eq!(
            s.deliver_ref("commit").unwrap(),
            [Action::send("attempt_end"), Action::send("committed")]
        );
        // Established was never exited, so its shallow history still
        // remembers its initial child: no `~` decoration.
        assert_eq!(s.state_name(), "Established.Idle");
    }

    #[test]
    fn suspend_resume_restores_commit_attempt() {
        let hsm = session_lifecycle();
        let mut s = hsm.instance();
        for m in ["connect", "update", "vote"] {
            s.deliver_ref(m).unwrap();
        }
        assert_eq!(s.state_name(), "Established.Commit.Deciding");
        s.deliver_ref("suspend").unwrap();
        assert_eq!(s.state_name(), "Suspended~Established=Commit");
        // Shallow history restores Commit, which re-enters through its
        // initial child: the interrupted attempt restarts at Voting.
        assert_eq!(
            s.deliver_ref("resume").unwrap(),
            [
                Action::send("online"),
                Action::send("attempt_begin"),
                Action::send("vote_req"),
            ]
        );
        assert_eq!(
            s.state_name(),
            "Established.Commit.Voting~Established=Commit"
        );
    }

    #[test]
    fn fail_recover_and_ping() {
        let hsm = session_lifecycle();
        let mut s = hsm.instance();
        s.deliver_ref("connect").unwrap();
        assert_eq!(s.deliver_ref("ping").unwrap(), [Action::send("pong")]);
        assert_eq!(s.state_name(), "Established.Idle"); // internal: no move
        assert_eq!(
            s.deliver_ref("fail").unwrap(),
            [
                Action::send("offline"),
                Action::send("alarm"),
                Action::send("probe")
            ]
        );
        assert_eq!(s.state_name(), "Failed.Probing");
        assert_eq!(
            s.deliver_ref("recover").unwrap(),
            [Action::send("recovered"), Action::send("online")]
        );
        assert_eq!(s.state_name(), "Established.Idle");
        s.deliver_ref("close").unwrap();
        assert!(s.is_finished());
    }

    #[test]
    fn flattened_machine_validates_and_matches_reference() {
        let hsm = session_lifecycle();
        let flat = hsm.flatten();
        let report = validate_machine(&flat);
        assert!(report.is_valid(), "{:?}", report.diagnostics);
        let mut reference = hsm.instance();
        let mut interp = FsmInstance::new(&flat);
        let trace = [
            "connect", "update", "ping", "vote", "suspend", "resume", "vote", "fail", "recover",
            "commit", "abort", "update", "commit", "close", "connect",
        ];
        for m in trace {
            let want = reference.deliver_ref(m).unwrap().to_vec();
            assert_eq!(interp.deliver_ref(m).unwrap(), want.as_slice(), "at {m}");
            assert_eq!(reference.state_name(), interp.state_name(), "at {m}");
        }
        assert!(interp.is_finished());
    }

    #[test]
    fn guarded_lifecycle_retries_then_escalates() {
        let hsm = session_lifecycle_guarded();
        assert!(hsm.is_guarded());
        assert_eq!(hsm.params(), ["max_retries"]);
        assert_eq!(hsm.variables(), ["retries"]);
        let mut s = hsm.instance_with(vec![2]);
        for m in ["connect", "update"] {
            s.deliver_ref(m).unwrap();
        }
        // First abort: below budget, back to Idle.
        assert_eq!(
            s.deliver_ref("abort").unwrap(),
            [Action::send("attempt_end"), Action::send("aborted")]
        );
        // Established itself was never exited, so its shallow history
        // still remembers the initial child: no `~` decoration yet.
        assert_eq!(s.state_name(), "Established.Idle");
        assert_eq!(s.vars(), &[1]);
        // Second attempt's abort: budget spent — exit through Commit and
        // Established into the failure superstate, whose entry actions
        // (alarm, probe) fire via the synthesized sequences.
        s.deliver_ref("update").unwrap();
        assert_eq!(
            s.deliver_ref("abort").unwrap(),
            [
                Action::send("attempt_end"),
                Action::send("offline"),
                Action::send("aborted"),
                Action::send("alarm"),
                Action::send("probe"),
            ]
        );
        assert_eq!(s.state_name(), "Failed.Probing~Established=Commit");
        assert_eq!(s.vars(), &[2]);
        // Recovery restores the remembered Commit child via history.
        assert_eq!(
            s.deliver_ref("recover").unwrap(),
            [
                Action::send("recovered"),
                Action::send("online"),
                Action::send("attempt_begin"),
                Action::send("vote_req"),
            ]
        );
    }

    #[test]
    fn guarded_lifecycle_commit_refunds_the_budget() {
        let hsm = session_lifecycle_guarded();
        let mut s = hsm.instance_with(vec![3]);
        for m in ["connect", "update", "abort", "update", "vote", "commit"] {
            s.deliver_ref(m).unwrap();
        }
        // The successful commit reset the spent retry (Set update).
        assert_eq!(s.vars(), &[0]);
        assert_eq!(s.state_name(), "Established.Idle");
    }

    #[test]
    fn guarded_lifecycle_is_parameter_generic() {
        // One statechart, every budget: the point of the guarded tier.
        let hsm = session_lifecycle_guarded();
        for max in 1..5 {
            let mut s = hsm.instance_with(vec![max]);
            s.deliver_ref("connect").unwrap();
            let mut aborts = 0;
            loop {
                s.deliver_ref("update").unwrap();
                s.deliver_ref("abort").unwrap();
                aborts += 1;
                if s.state_name().starts_with("Failed") {
                    break;
                }
            }
            assert_eq!(aborts, max, "escalates exactly at the budget");
        }
    }

    #[test]
    fn flattened_machine_serves_a_session_pool() {
        let hsm = session_lifecycle();
        let compiled = CompiledMachine::compile(&hsm.flatten());
        let mut pool = SessionPool::new(&compiled, 1000);
        for m in ["connect", "update", "vote", "commit", "close"] {
            let mid = compiled.message_id(m).unwrap();
            assert_eq!(pool.deliver_all(mid), 1000, "at {m}");
        }
        assert!(pool.all_finished());
    }
}
