//! Deployable machine artifacts: a versioned, checksummed, canonical
//! binary encoding of a lowered machine ([`FlatIr`]) plus its bound
//! parameter values.
//!
//! This is the source paper's deployment story at fleet scale: generate
//! and verify a protocol machine once, [`Artifact::save`] it, ship the
//! bytes to every peer, and [`Artifact::load`] +
//! `Engine::from_artifact` there — no model, no generator, no
//! recompilation of the *spec* on the serving host, and zero
//! allocations per delivered message once loaded. The full byte layout,
//! versioning policy and loader trust model are specified in
//! `docs/ARTIFACT_FORMAT.md` at the repository root.
//!
//! # Layout (format version 1, little-endian)
//!
//! A 16-byte header (magic, format version, flags), seven
//! length-prefixed sections in fixed order — name, messages, params,
//! variables, interned action arena, states/transitions (with guard and
//! update expressions), parameter binding — and a 16-byte footer
//! (content fingerprint + whole-file checksum). Every section starts at
//! an 8-byte-aligned offset, carries its payload length up front and an
//! FNV-1a checksum of its payload behind it, so a corrupt region is
//! attributable to a section; the footer checksum covers the entire
//! file up to itself.
//!
//! # Trust model
//!
//! [`Artifact::load`] treats its input as hostile. Every count is
//! capped against the physically remaining input before any reservation
//! (a 40-byte file cannot declare a million states, whatever its length
//! fields say), every index — message, target state, variable,
//! parameter, operator, action-arena reference — is bounds-checked
//! before the machine is built, strings are UTF-8-validated, and the
//! decoded machine must hash to the content fingerprint the footer
//! declares. Finally the accepted bytes must be *canonical*: load
//! re-encodes the decoded machine and requires byte identity, so
//! `save(load(b)) == b` holds for every accepted `b` and an artifact's
//! bytes are a content address for its behaviour. `load` never panics
//! and never allocates more than O(input length) on any input.
//!
//! What `load` does *not* bound is the cost of *compiling* an accepted
//! artifact: a dense transition table is `states × messages` cells, a
//! property of the (honestly encoded) machine itself. Deployments that
//! accept artifacts from untrusted authors should gate on
//! [`Artifact::ir`]'s state/message counts before handing the artifact
//! to an engine.

use std::collections::HashMap;

use crate::efsm::{CmpOp, Efsm, Guard, LinExpr, Operand, ParamId, Update, VarId};
use crate::error::{ArtifactError, StategenError};
use crate::fingerprint::{fnv1a, fold_params};
use crate::ir::{FlatIr, FlatState, FlatTransition};
use crate::machine::{Action, StateMachine, StateRole};

/// The 8-byte artifact magic (`"STGNARTF"`).
pub const MAGIC: [u8; 8] = *b"STGNARTF";

/// The artifact format version this toolchain reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Header flag bit: the machine uses guards, updates, variables or
/// parameters (it compiles onto the register-machine tier).
const FLAG_GUARDED: u32 = 1;

/// Section tags, in the fixed file order.
const SEC_NAME: u32 = 1;
const SEC_MESSAGES: u32 = 2;
const SEC_PARAMS: u32 = 3;
const SEC_VARIABLES: u32 = 4;
const SEC_ACTIONS: u32 = 5;
const SEC_STATES: u32 = 6;
const SEC_BINDING: u32 = 7;

/// Header (magic + version + flags) and footer (content fingerprint +
/// whole-file checksum) sizes, both 8-aligned.
const HEADER_LEN: usize = 16;
const FOOTER_LEN: usize = 16;

/// A deployable machine: a lowered [`FlatIr`] plus the parameter values
/// it ships bound to (empty for unparameterised machines).
///
/// Construct from a front-end ([`Artifact::from_machine`],
/// [`Artifact::from_efsm`], [`Artifact::new`] for an already-lowered
/// IR), serialize with [`Artifact::save`], reconstitute with
/// [`Artifact::load`], and serve with `Engine::from_artifact` in
/// `stategen-runtime`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    ir: FlatIr,
    params: Vec<i64>,
}

impl Artifact {
    /// Wraps an already-lowered IR with its parameter binding.
    ///
    /// # Errors
    ///
    /// [`StategenError::ParamCountMismatch`] if `params` does not match
    /// the IR's parameter declaration.
    pub fn new(ir: FlatIr, params: Vec<i64>) -> Result<Artifact, StategenError> {
        if params.len() != ir.params().len() {
            return Err(StategenError::ParamCountMismatch {
                expected: ir.params().len(),
                found: params.len(),
            });
        }
        Ok(Artifact { ir, params })
    }

    /// An artifact of a flat (unparameterised) [`StateMachine`].
    pub fn from_machine(machine: &StateMachine) -> Artifact {
        Artifact {
            ir: FlatIr::from_machine(machine),
            params: Vec::new(),
        }
    }

    /// An artifact of an [`Efsm`] with its parameter values bound.
    ///
    /// # Errors
    ///
    /// [`StategenError::ParamCountMismatch`] if `params` does not match
    /// the EFSM's parameter declaration.
    pub fn from_efsm(efsm: &Efsm, params: Vec<i64>) -> Result<Artifact, StategenError> {
        Artifact::new(FlatIr::from_efsm(efsm), params)
    }

    /// The lowered machine.
    pub fn ir(&self) -> &FlatIr {
        &self.ir
    }

    /// The bound parameter values, in declaration order.
    pub fn params(&self) -> &[i64] {
        &self.params
    }

    /// The machine's display name.
    pub fn name(&self) -> &str {
        self.ir.name()
    }

    /// `true` if the machine needs the register-machine tier (see
    /// [`FlatIr::is_guarded`]).
    pub fn is_guarded(&self) -> bool {
        self.ir.is_guarded()
    }

    /// The artifact's behavioural content fingerprint:
    /// [`FlatIr::fingerprint`] with the bound parameter values folded in
    /// (see [`fold_params`]). This is the value stored in the footer,
    /// the value `Engine::fingerprint` reports for an engine compiled
    /// from this artifact, and the value hot-swap compatibility checks
    /// compare — so an operator can compare an artifact on disk against
    /// a running engine without compiling anything.
    pub fn fingerprint(&self) -> u64 {
        fold_params(self.ir.fingerprint(), &self.params)
    }

    /// Serializes to the canonical format-version-1 byte encoding.
    ///
    /// The encoding is a pure function of the machine: saving the same
    /// artifact twice yields identical bytes, and
    /// `save(load(b)) == b` for every `b` that [`Artifact::load`]
    /// accepts.
    pub fn save(&self) -> Vec<u8> {
        encode(&self.ir, &self.params)
    }

    /// Deserializes and fully validates an artifact from bytes that may
    /// be truncated, bit-flipped, spliced, version-skewed or outright
    /// hostile. See the module docs for the trust model; on any invalid
    /// input this returns an error — it never panics and never
    /// allocates more than O(`bytes.len()`).
    ///
    /// # Errors
    ///
    /// Every [`ArtifactError`] variant, naming the failing section.
    pub fn load(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
        let artifact = decode(bytes)?;
        // Canonicality gate: the accepted bytes must be exactly what we
        // would have written. This closes every "decodes fine but
        // re-saves differently" hole (non-zero padding, re-ordered
        // arena, inconsistent flags) in one check, making artifact
        // bytes a content address.
        if encode(&artifact.ir, &artifact.params) != bytes {
            return Err(ArtifactError::NotCanonical);
        }
        Ok(artifact)
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Canonical little-endian writer. Sections are length-prefixed,
/// zero-padded to 8 bytes and followed by an FNV-1a payload checksum.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        debug_assert!(s.len() <= u32::MAX as usize, "string too long for artifact");
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn strs(&mut self, strings: &[String]) {
        self.u32(strings.len() as u32);
        for s in strings {
            self.str(s);
        }
    }

    fn lin(&mut self, expr: &LinExpr) {
        self.i64(expr.constant_part());
        self.u32(expr.terms().len() as u32);
        for &(coeff, operand) in expr.terms() {
            self.i64(coeff);
            match operand {
                Operand::Var(v) => {
                    self.u32(0);
                    self.u32(v.index() as u32);
                }
                Operand::Param(p) => {
                    self.u32(1);
                    self.u32(p.index() as u32);
                }
            }
        }
    }

    /// Writes one section: tag, zero pad word, payload length, payload,
    /// zero padding to 8 bytes, payload checksum.
    fn section(&mut self, tag: u32, body: impl FnOnce(&mut Writer)) {
        self.u32(tag);
        self.u32(0);
        let len_at = self.buf.len();
        self.u64(0); // patched below
        let start = self.buf.len();
        body(self);
        let payload_len = self.buf.len() - start;
        self.buf[len_at..len_at + 8].copy_from_slice(&(payload_len as u64).to_le_bytes());
        while !(self.buf.len() - start).is_multiple_of(8) {
            self.buf.push(0);
        }
        let checksum = fnv1a(&self.buf[start..start + payload_len]);
        self.u64(checksum);
    }
}

/// The interned action arena in canonical (first-occurrence) order over
/// the state/transition walk, plus each transition's index list shape.
fn build_arena(ir: &FlatIr) -> (Vec<String>, HashMap<&str, u32>) {
    let mut arena = Vec::new();
    let mut index: HashMap<&str, u32> = HashMap::new();
    for state in ir.states() {
        for t in state.transitions() {
            for action in t.actions() {
                let msg = action.message();
                if !index.contains_key(msg) {
                    index.insert(msg, arena.len() as u32);
                    arena.push(msg.to_string());
                }
            }
        }
    }
    (arena, index)
}

/// The canonical format-version-1 encoding of `(ir, params)`.
fn encode(ir: &FlatIr, params: &[i64]) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(256),
    };
    w.buf.extend_from_slice(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u32(if ir.is_guarded() { FLAG_GUARDED } else { 0 });

    let (arena, arena_index) = build_arena(ir);
    w.section(SEC_NAME, |w| w.str(ir.name()));
    w.section(SEC_MESSAGES, |w| w.strs(ir.messages()));
    w.section(SEC_PARAMS, |w| w.strs(ir.params()));
    w.section(SEC_VARIABLES, |w| w.strs(ir.variables()));
    w.section(SEC_ACTIONS, |w| w.strs(&arena));
    w.section(SEC_STATES, |w| {
        w.u32(ir.states().len() as u32);
        w.u32(ir.start());
        for state in ir.states() {
            w.str(state.name());
            w.u32(state.role() as u32);
            w.u32(state.transitions().len() as u32);
            for t in state.transitions() {
                w.u32(t.message_index() as u32);
                w.u32(t.target());
                let conds = t.guard().conditions();
                w.u32(conds.len() as u32);
                for cond in conds {
                    w.lin(&cond.lhs);
                    w.u32(cond.op as u32);
                    w.lin(&cond.rhs);
                }
                w.u32(t.updates().len() as u32);
                for update in t.updates() {
                    match update {
                        Update::Set(var, expr) => {
                            w.u32(0);
                            w.u32(var.index() as u32);
                            w.lin(expr);
                        }
                        Update::Inc(var) => {
                            w.u32(1);
                            w.u32(var.index() as u32);
                        }
                    }
                }
                w.u32(t.actions().len() as u32);
                for action in t.actions() {
                    w.u32(arena_index[action.message()]);
                }
            }
        }
    });
    w.section(SEC_BINDING, |w| {
        w.u32(params.len() as u32);
        for &p in params {
            w.i64(p);
        }
    });

    let content = fold_params(ir.fingerprint(), params);
    w.u64(content);
    let checksum = fnv1a(&w.buf);
    w.u64(checksum);
    w.buf
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked little-endian reader over one section's payload.
/// Every read is clamped to the current section, so a lying length
/// field can never make a later field read another section's bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Exclusive end of the readable range (the current section's
    /// payload end).
    limit: usize,
    /// The section currently being decoded, for error attribution.
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn truncated(&self) -> ArtifactError {
        ArtifactError::Truncated {
            section: self.section,
            offset: self.pos,
        }
    }

    fn malformed(&self, detail: &'static str) -> ArtifactError {
        ArtifactError::Malformed {
            section: self.section,
            detail,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if n > self.limit - self.pos {
            return Err(self.truncated());
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ArtifactError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a declared element count, capped against the bytes
    /// physically remaining in the section (each element occupies at
    /// least `min_size` bytes) — the over-allocation guard: a hostile
    /// count can never reserve more memory than the input's own length
    /// justifies.
    fn count(&mut self, min_size: usize) -> Result<usize, ArtifactError> {
        let n = self.u32()? as usize;
        if n > (self.limit - self.pos) / min_size.max(1) {
            return Err(self.malformed("count exceeds remaining input"));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, ArtifactError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(self.malformed("string is not valid UTF-8")),
        }
    }

    fn strs(&mut self, min_len: usize) -> Result<Vec<String>, ArtifactError> {
        let n = self.count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let s = self.str()?;
            if s.len() < min_len {
                return Err(self.malformed("empty name"));
            }
            out.push(s);
        }
        Ok(out)
    }

    fn lin(&mut self, vars: usize, params: usize) -> Result<LinExpr, ArtifactError> {
        let constant = self.i64()?;
        let n_terms = self.count(16)?;
        let mut expr = LinExpr::constant(constant);
        for _ in 0..n_terms {
            let coeff = self.i64()?;
            let kind = self.u32()?;
            let index = self.u32()? as usize;
            let operand = match kind {
                0 if index < vars => LinExpr::var(VarId(index)),
                0 => return Err(self.malformed("expression references undeclared variable")),
                1 if index < params => LinExpr::param(ParamId(index)),
                1 => return Err(self.malformed("expression references undeclared parameter")),
                _ => return Err(self.malformed("unknown operand kind")),
            };
            expr = expr.plus(operand.times(coeff));
        }
        Ok(expr)
    }

    /// Validates the next section's frame (tag, length, checksum) and
    /// scopes subsequent reads to its payload.
    fn enter_section(&mut self, tag: u32, name: &'static str) -> Result<usize, ArtifactError> {
        self.section = name;
        // The frame words live between sections; widen to the file.
        self.limit = self.bytes.len();
        let found_tag = self.u32()?;
        if found_tag != tag {
            return Err(self.malformed("unexpected section tag"));
        }
        let _pad = self.u32()?;
        let len = self.u64()? as usize;
        let start = self.pos;
        // Bound the raw length before any arithmetic on it: a hostile
        // length field must not overflow the padding computation.
        if len > self.bytes.len() - start {
            return Err(self.truncated());
        }
        let padded = len.div_ceil(8) * 8;
        // Payload + padding + trailing checksum must physically fit.
        if padded > self.bytes.len() - start || 8 > self.bytes.len() - start - padded {
            return Err(self.truncated());
        }
        let stored = u64::from_le_bytes(
            self.bytes[start + padded..start + padded + 8]
                .try_into()
                .unwrap(),
        );
        if fnv1a(&self.bytes[start..start + len]) != stored {
            return Err(ArtifactError::ChecksumMismatch { section: name });
        }
        self.limit = start + len;
        Ok(start + len)
    }

    /// Leaves a section: the payload must be fully consumed; skips the
    /// padding and checksum words.
    fn exit_section(&mut self, payload_end: usize) -> Result<(), ArtifactError> {
        if self.pos != payload_end {
            return Err(self.malformed("section payload longer than its contents"));
        }
        self.pos = payload_end.div_ceil(8) * 8 + 8;
        self.limit = self.bytes.len();
        Ok(())
    }

    /// Runs `body` inside a validated section frame.
    fn section<T>(
        &mut self,
        tag: u32,
        name: &'static str,
        body: impl FnOnce(&mut Self) -> Result<T, ArtifactError>,
    ) -> Result<T, ArtifactError> {
        let end = self.enter_section(tag, name)?;
        let value = body(self)?;
        self.exit_section(end)?;
        Ok(value)
    }
}

/// Full structural decode (everything except the final canonicality
/// re-encode, which [`Artifact::load`] performs on the result).
fn decode(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
    if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
        return Err(ArtifactError::NotAnArtifact);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(ArtifactError::Truncated {
            section: "footer",
            offset: bytes.len(),
        });
    }
    let body_end = bytes.len() - FOOTER_LEN;
    let declared_fp = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().unwrap());
    let stored_checksum = u64::from_le_bytes(bytes[body_end + 8..].try_into().unwrap());
    if fnv1a(&bytes[..bytes.len() - 8]) != stored_checksum {
        return Err(ArtifactError::ChecksumMismatch { section: "file" });
    }

    let mut r = Reader {
        bytes,
        pos: HEADER_LEN,
        limit: bytes.len(),
        section: "header",
    };

    let name = r.section(SEC_NAME, "name", |r| r.str())?;
    let messages = r.section(SEC_MESSAGES, "messages", |r| {
        let messages = r.strs(1)?;
        if messages.len() > usize::from(u16::MAX) + 1 {
            return Err(r.malformed("more than 65536 messages"));
        }
        Ok(messages)
    })?;
    let message_lookup = FlatIr::build_lookup(&messages);
    if message_lookup.len() != messages.len() {
        return Err(ArtifactError::Malformed {
            section: "messages",
            detail: "duplicate message name",
        });
    }
    let param_names = r.section(SEC_PARAMS, "params", |r| r.strs(1))?;
    let variables = r.section(SEC_VARIABLES, "variables", |r| r.strs(1))?;
    let arena = r.section(SEC_ACTIONS, "actions", |r| r.strs(1))?;

    let (states, start) = r.section(SEC_STATES, "states", |r| {
        let n_states = r.count(12)?;
        if n_states == 0 {
            return Err(r.malformed("machine has no states"));
        }
        let start = r.u32()?;
        if start as usize >= n_states {
            return Err(r.malformed("start state out of range"));
        }
        let mut states = Vec::with_capacity(n_states);
        for _ in 0..n_states {
            let state_name = r.str()?;
            let role = match r.u32()? {
                0 => StateRole::Normal,
                1 => StateRole::Finish,
                _ => return Err(r.malformed("unknown state role")),
            };
            let n_trans = r.count(20)?;
            let mut transitions = Vec::with_capacity(n_trans);
            for _ in 0..n_trans {
                let message = r.u32()?;
                if message as usize >= messages.len() {
                    return Err(r.malformed("transition trigger out of range"));
                }
                let target = r.u32()?;
                if target as usize >= n_states {
                    return Err(r.malformed("transition target out of range"));
                }
                let n_conds = r.count(28)?;
                let mut guard = Guard::always();
                for _ in 0..n_conds {
                    let lhs = r.lin(variables.len(), param_names.len())?;
                    let op = match r.u32()? {
                        0 => CmpOp::Lt,
                        1 => CmpOp::Le,
                        2 => CmpOp::Eq,
                        3 => CmpOp::Ne,
                        4 => CmpOp::Ge,
                        5 => CmpOp::Gt,
                        _ => return Err(r.malformed("unknown comparison operator")),
                    };
                    let rhs = r.lin(variables.len(), param_names.len())?;
                    guard = guard.and(lhs, op, rhs);
                }
                let n_updates = r.count(8)?;
                let mut updates = Vec::with_capacity(n_updates);
                for _ in 0..n_updates {
                    let tag = r.u32()?;
                    let var = r.u32()? as usize;
                    if var >= variables.len() {
                        return Err(r.malformed("update targets undeclared variable"));
                    }
                    updates.push(match tag {
                        0 => Update::Set(VarId(var), r.lin(variables.len(), param_names.len())?),
                        1 => Update::Inc(VarId(var)),
                        _ => return Err(r.malformed("unknown update tag")),
                    });
                }
                let n_actions = r.count(4)?;
                let mut actions = Vec::with_capacity(n_actions);
                for _ in 0..n_actions {
                    let idx = r.u32()? as usize;
                    let Some(msg) = arena.get(idx) else {
                        return Err(r.malformed("action arena reference out of range"));
                    };
                    actions.push(Action::send(msg));
                }
                transitions.push(FlatTransition {
                    message: message as u16,
                    guard,
                    updates,
                    actions,
                    target,
                });
            }
            states.push(FlatState {
                name: state_name,
                role,
                transitions,
            });
        }
        Ok((states, start))
    })?;

    let params = r.section(SEC_BINDING, "binding", |r| {
        let n = r.count(8)?;
        if n != param_names.len() {
            return Err(r.malformed("binding arity differs from parameter declaration"));
        }
        let mut params = Vec::with_capacity(n);
        for _ in 0..n {
            params.push(r.i64()?);
        }
        Ok(params)
    })?;

    let ir = FlatIr {
        name,
        message_lookup,
        messages,
        params: param_names,
        variables,
        states,
        start,
    };
    let actual = fold_params(ir.fingerprint(), &params);
    if actual != declared_fp {
        return Err(ArtifactError::FingerprintMismatch {
            declared: declared_fp,
            actual,
        });
    }
    Ok(Artifact { ir, params })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efsm::EfsmBuilder;
    use crate::machine::StateMachineBuilder;

    fn counter_efsm() -> Efsm {
        let mut b = EfsmBuilder::new("counter", ["tick"]);
        let limit = b.add_param("limit");
        let n = b.add_var("n");
        let counting = b.add_state("counting");
        let done = b.add_state("done");
        b.add_transition(
            counting,
            "tick",
            Guard::when(
                LinExpr::var(n).plus_const(1),
                CmpOp::Lt,
                LinExpr::param(limit),
            ),
            vec![Update::Inc(n)],
            vec![],
            counting,
        );
        b.add_transition(
            counting,
            "tick",
            Guard::when(
                LinExpr::var(n).plus_const(1),
                CmpOp::Ge,
                LinExpr::param(limit),
            ),
            vec![Update::Inc(n)],
            vec![Action::send("done")],
            done,
        );
        b.build(counting, Some(done))
    }

    fn flat_machine() -> StateMachine {
        let mut b = StateMachineBuilder::new("m", ["a", "b"]);
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let fin = b.add_state_full("fin", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", s1, vec![Action::send("x"), Action::send("y")]);
        b.add_transition(s1, "b", fin, vec![Action::send("x")]);
        b.build(s0)
    }

    #[test]
    fn flat_machine_round_trips() {
        let artifact = Artifact::from_machine(&flat_machine());
        let bytes = artifact.save();
        let loaded = Artifact::load(&bytes).expect("round trip");
        assert_eq!(loaded, artifact);
        assert_eq!(loaded.fingerprint(), artifact.fingerprint());
        assert_eq!(loaded.save(), bytes);
        assert!(!loaded.is_guarded());
    }

    #[test]
    fn guarded_efsm_round_trips_with_binding() {
        let artifact = Artifact::from_efsm(&counter_efsm(), vec![3]).expect("arity");
        let bytes = artifact.save();
        let loaded = Artifact::load(&bytes).expect("round trip");
        assert_eq!(loaded, artifact);
        assert_eq!(loaded.params(), [3]);
        assert!(loaded.is_guarded());
        // Different bindings fingerprint differently.
        let other = Artifact::from_efsm(&counter_efsm(), vec![4]).expect("arity");
        assert_ne!(other.fingerprint(), artifact.fingerprint());
    }

    #[test]
    fn binding_arity_is_checked_at_construction() {
        assert!(matches!(
            Artifact::from_efsm(&counter_efsm(), vec![]),
            Err(StategenError::ParamCountMismatch {
                expected: 1,
                found: 0
            })
        ));
    }

    #[test]
    fn rejects_garbage_and_version_skew() {
        assert_eq!(Artifact::load(&[]), Err(ArtifactError::NotAnArtifact));
        assert_eq!(
            Artifact::load(b"not an artifact at all, sorry"),
            Err(ArtifactError::NotAnArtifact)
        );
        let mut bytes = Artifact::from_machine(&flat_machine()).save();
        bytes[8] = 99; // format version
        assert_eq!(
            Artifact::load(&bytes),
            Err(ArtifactError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn rejects_every_truncation() {
        let bytes = Artifact::from_machine(&flat_machine()).save();
        for len in 0..bytes.len() {
            assert!(
                Artifact::load(&bytes[..len]).is_err(),
                "truncation at {len} of {} accepted",
                bytes.len()
            );
        }
    }

    #[test]
    fn rejects_every_single_bit_flip() {
        let bytes = Artifact::from_efsm(&counter_efsm(), vec![3])
            .unwrap()
            .save();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Artifact::load(&corrupt).is_err(),
                    "bit {bit} of byte {byte} flipped and still accepted"
                );
            }
        }
    }
}
