//! Graphviz DOT renderer for state-transition diagrams (paper §3.5,
//! Fig 15).
//!
//! The paper renders diagrams by exporting XML into a diagramming tool;
//! DOT is today's lingua franca for the same artefact class. Phase
//! transitions (those that perform actions) are drawn with heavier pens,
//! matching the paper's Fig 8 convention of thin vs. thick arrows.

use std::fmt::Write as _;

use stategen_core::{StateMachine, StateRole};

/// Options for DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Left-to-right layout (`rankdir=LR`). Default true.
    pub left_to_right: bool,
    /// Include the action list on edge labels. Default true.
    pub edge_actions: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            left_to_right: true,
            edge_actions: true,
        }
    }
}

/// Escapes a string for use inside a DOT double-quoted label (shared
/// with the hierarchy-aware renderer in [`crate::hsm`]).
pub(crate) fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the machine as a Graphviz DOT document.
pub fn render_dot(machine: &StateMachine, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(machine.name()));
    if options.left_to_right {
        out.push_str("    rankdir=LR;\n");
    }
    out.push_str("    node [shape=box, style=rounded, fontsize=10, fontname=\"Helvetica\"];\n");
    out.push_str("    edge [fontsize=9, fontname=\"Helvetica\"];\n");
    out.push_str("    __start [shape=point];\n");
    for (id, state) in machine.states_with_ids() {
        let shape = match state.role() {
            StateRole::Finish => ", peripheries=2",
            StateRole::Normal => "",
        };
        let _ = writeln!(
            out,
            "    s{} [label=\"{}\"{}];",
            id.index(),
            escape(state.name()),
            shape
        );
    }
    let _ = writeln!(out, "    __start -> s{};", machine.start().index());
    for (id, state) in machine.states_with_ids() {
        for (mid, t) in state.transitions() {
            let mut label = machine.message_name(mid).to_uppercase();
            if options.edge_actions {
                for a in t.actions() {
                    let _ = write!(label, "\\n->{}", a.message());
                }
            }
            let width = if t.is_phase_transition() {
                ", penwidth=2"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    s{} -> s{} [label=\"{}\"{}];",
                id.index(),
                t.target().index(),
                escape(&label).replace("\\\\n", "\\n"),
                width
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stategen_core::{Action, StateMachineBuilder};

    fn sample() -> StateMachine {
        let mut b = StateMachineBuilder::new("dia\"gram", ["go"]);
        let s0 = b.add_state("A");
        let fin = b.add_state_full("B", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "go", fin, vec![Action::send("x")]);
        b.build(s0)
    }

    #[test]
    fn structure() {
        let out = render_dot(&sample(), &DotOptions::default());
        assert!(out.starts_with("digraph \"dia\\\"gram\" {"));
        assert!(out.contains("__start -> s0;"));
        assert!(out.contains("s0 [label=\"A\"];"));
        assert!(out.contains("s1 [label=\"B\", peripheries=2];"));
        assert!(out.contains("s0 -> s1 [label=\"GO\\n->x\", penwidth=2];"));
        assert!(out.trim_end().ends_with('}'));
    }

    #[test]
    fn actions_can_be_hidden() {
        let options = DotOptions {
            edge_actions: false,
            ..Default::default()
        };
        let out = render_dot(&sample(), &options);
        assert!(out.contains("[label=\"GO\", penwidth=2]"));
    }

    #[test]
    fn no_rankdir_when_disabled() {
        let options = DotOptions {
            left_to_right: false,
            ..Default::default()
        };
        let out = render_dot(&sample(), &options);
        assert!(!out.contains("rankdir"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }
}
