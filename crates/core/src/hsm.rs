//! Hierarchical statecharts and the flattening compiler.
//!
//! The paper's pipeline produces *flat* FSM families, but real protocol
//! specifications — connection lifecycles, failure/recovery overlays on a
//! commit protocol — are naturally hierarchical: composite states with
//! entry/exit actions, transitions inherited from enclosing states,
//! internal (self-absorbing) transitions and shallow history. Devroey et
//! al.'s flattening mapping study names the standard bridge: lower the
//! statechart to an ordinary flat machine, then reuse all flat-FSM
//! tooling unchanged. This module is that bridge:
//!
//! * [`HierarchicalMachine`] / [`HsmBuilder`] — the statechart model: a
//!   forest of states where composites carry an initial child and
//!   optional shallow history, every state carries entry/exit action
//!   lists, and transitions may be internal, cross-level, or target a
//!   composite's history pseudostate — and may carry a
//!   [`Guard`] over declared variables/parameters plus variable
//!   [`Update`]s, making a statechart *parameter-generic* exactly like
//!   an [`Efsm`](crate::Efsm);
//! * [`HierarchicalMachine::flatten_ir`] — the compiler: enumerates the
//!   reachable *configurations* (active leaf × shallow-history memory)
//!   breadth-first and lowers each to one state of the unified flat IR
//!   ([`FlatIr`]), expanding inherited transitions (guards carried
//!   symbolically, in firing priority order), synthesizing the
//!   exit/transition/entry action sequences, and resolving history by
//!   splitting states per remembered child. Unguarded statecharts
//!   project to an ordinary [`StateMachine`]
//!   ([`HierarchicalMachine::flatten`]) and run on every dense-table
//!   tier — [`FsmInstance`](crate::FsmInstance),
//!   [`CompiledMachine`](crate::CompiledMachine) /
//!   [`SessionPool`](crate::SessionPool) and
//!   [`ShardedPool`](crate::ShardedPool) — with zero engine changes
//!   (the compiled tier's action-arena interning folds the synthesized
//!   sequences back together); guarded statecharts compile onto the
//!   register-machine tier
//!   ([`CompiledEfsm::compile_ir`](crate::CompiledEfsm::compile_ir)),
//!   one compiled machine per statechart *family*;
//! * [`HsmInstance`] — a direct interpreter over the statechart, the
//!   reference the flattened machines are property-checked against
//!   (`HsmInstance ≡ FsmInstance(flatten) ≡ CompiledInstance(flatten)`
//!   over random traces). Interpreter and compiler share the
//!   run-to-completion kernel by design — one semantics, two execution
//!   strategies — so the properties pin the *flattening pipeline*
//!   (configuration enumeration, naming, table construction), while
//!   the kernel's semantics are pinned by closed-form unit tests
//!   asserting exact action sequences.
//!
//! # Semantics
//!
//! The run-to-completion step for a configuration `(leaf, memory)` on
//! message `m`:
//!
//! 1. A final leaf absorbs every message (mirroring the flat machines'
//!    absorbing [`StateRole::Finish`] states).
//! 2. The handler is resolved *innermost-first with guard fall-through*:
//!    walking the active leaf's ancestor chain, each state's
//!    declarations for `m` are tried in declaration order, and the
//!    first transition whose guard holds over the live variable
//!    registers fires — inner declarations override inherited outer
//!    ones, and a state whose guards all fail falls through to its
//!    enclosing state. No enabled handler ⇒ the message is ignored.
//!    Updates apply with the EFSM tiers' staged semantics: every update
//!    expression reads the pre-transition variable values.
//! 3. An *internal* transition fires its actions and leaves the
//!    configuration untouched (no exit/entry actions run). It flattens
//!    to a self-loop.
//! 4. An external transition exits from the active leaf up to (but not
//!    including) the lowest common proper ancestor of the handler and
//!    the target — so a self- or ancestor-targeting transition exits and
//!    re-enters its source, the conventional external-transition
//!    reading. Exit actions run innermost-first; each exited composite
//!    with shallow history records its active direct child. The machine
//!    then enters the chain from that ancestor down to the target
//!    (entry actions outermost-first) and keeps descending: a history
//!    target restores the remembered (else initial) child, composites
//!    descend through initial children until a leaf is reached. The
//!    emitted action sequence is `exits ++ transition actions ++
//!    entries`.
//!
//! Entry actions of the *initial* configuration are not emitted: no
//! message delivery triggers them, and the flat model has no notion of
//! machine-start actions. Callers wanting them can read
//! [`HierarchicalMachine::start_entry_actions`].
//!
//! # Example
//!
//! ```
//! use stategen_core::{Action, HsmBuilder, HsmInstance, ProtocolEngine};
//!
//! let mut b = HsmBuilder::new("conn", ["open", "work", "drop", "resume"]);
//! let idle = b.add_state("Idle");
//! let up = b.add_state("Up");
//! let a = b.add_child(up, "A"); // initial child of Up
//! let bb = b.add_child(up, "B");
//! b.enable_history(up);
//! b.on_entry(up, vec![Action::send("hello")]);
//! b.add_transition(idle, "open", up, vec![]);          // enters Up.A
//! b.add_transition(a, "work", bb, vec![]);
//! b.add_transition(up, "drop", idle, vec![]);          // inherited by A and B
//! b.add_history_transition(idle, "resume", up, vec![]); // back to last child
//! let hsm = b.build(idle);
//!
//! let flat = hsm.flatten();
//! assert_eq!(flat.state_count(), 6); // {Idle, Up.A, Up.B} × reachable memories
//!
//! let mut reference = HsmInstance::new(&hsm);
//! for m in ["open", "work", "drop", "resume"] {
//!     reference.deliver_ref(m).unwrap();
//! }
//! assert_eq!(reference.state_name(), "Up.B~Up=B"); // history restored B
//! ```

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;

use crate::efsm::{Guard, LinExpr, Operand, ParamId, Update, VarId};
use crate::error::{HsmError, InterpError};
use crate::interp::ProtocolEngine;
use crate::ir::{FlatIr, FlatState, FlatTransition};
use crate::machine::{Action, MessageId, StateMachine, StateRole};

/// Identifier of a state within a [`HierarchicalMachine`] (index into
/// its state tree, in declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HsmStateId(u32);

impl HsmStateId {
    /// The index into the machine's state table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a hierarchical transition goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsmTarget {
    /// External transition to a state; composites are entered through
    /// their initial children.
    State(HsmStateId),
    /// External transition to the shallow-history pseudostate of a
    /// composite: re-enters the direct child that was active when the
    /// composite was last exited (or its initial child on first entry).
    History(HsmStateId),
    /// Internal transition: actions fire but the configuration is
    /// unchanged and no entry/exit actions run.
    Internal,
}

/// A transition declared on a hierarchical state (and inherited by all
/// of its descendants unless overridden closer to the leaf).
///
/// A transition may carry a [`Guard`] over the machine's variables and
/// parameters and a list of variable [`Update`]s. Guards participate in
/// inheritance and conflict resolution *innermost-first*: the handler
/// search walks the active leaf's ancestor chain and, within each
/// state, that state's transitions for the message in declaration
/// order; the first transition whose guard holds fires, and a state
/// whose guards all fail falls through to its enclosing state's
/// (inherited) transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsmTransition {
    target: HsmTarget,
    guard: Guard,
    updates: Vec<Update>,
    actions: Vec<Action>,
}

impl HsmTransition {
    /// The transition's target.
    pub fn target(&self) -> HsmTarget {
        self.target
    }

    /// The guard that must hold for this transition to fire (the empty
    /// conjunction — always true — for unguarded transitions).
    pub fn guard(&self) -> &Guard {
        &self.guard
    }

    /// Variable updates applied when the transition fires, each reading
    /// the pre-transition variable values (the same staged semantics as
    /// the EFSM tiers).
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Actions (messages sent) when the transition fires, not counting
    /// the entry/exit actions synthesized around them.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }
}

/// One state of a hierarchical machine: a node in the state forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsmState {
    name: String,
    parent: Option<HsmStateId>,
    children: Vec<HsmStateId>,
    initial: Option<HsmStateId>,
    history: bool,
    entry: Vec<Action>,
    exit: Vec<Action>,
    role: StateRole,
    /// Per message, the transitions declared directly on this state in
    /// declaration (priority) order — several iff their guards differ.
    transitions: BTreeMap<u16, Vec<HsmTransition>>,
}

impl HsmState {
    fn new(name: String, parent: Option<HsmStateId>) -> Self {
        HsmState {
            name,
            parent,
            children: Vec::new(),
            initial: None,
            history: false,
            entry: Vec::new(),
            exit: Vec::new(),
            role: StateRole::Normal,
            transitions: BTreeMap::new(),
        }
    }

    /// The state's bare name (path-free; see
    /// [`HierarchicalMachine::path_name`] for the dotted full path).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The enclosing composite, or `None` for top-level states.
    pub fn parent(&self) -> Option<HsmStateId> {
        self.parent
    }

    /// Direct children, in declaration order (empty for leaves).
    pub fn children(&self) -> &[HsmStateId] {
        &self.children
    }

    /// The initial child entered when this composite is targeted
    /// directly (`None` for leaves).
    pub fn initial(&self) -> Option<HsmStateId> {
        self.initial
    }

    /// `true` if this composite records shallow history.
    pub fn has_history(&self) -> bool {
        self.history
    }

    /// `true` if this state has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Actions performed when the state is entered.
    pub fn entry_actions(&self) -> &[Action] {
        &self.entry
    }

    /// Actions performed when the state is exited.
    pub fn exit_actions(&self) -> &[Action] {
        &self.exit
    }

    /// The state's role; final leaves lower to absorbing
    /// [`StateRole::Finish`] flat states.
    pub fn role(&self) -> StateRole {
        self.role
    }

    /// Transitions declared directly on this state, in message-id order
    /// and declaration (priority) order within a message (inherited
    /// transitions are *not* repeated here).
    pub fn transitions(&self) -> impl Iterator<Item = (MessageId, &HsmTransition)> {
        self.transitions
            .iter()
            .flat_map(|(&m, ts)| ts.iter().map(move |t| (MessageId(m), t)))
    }
}

/// A hierarchical statechart: a forest of states with composite nesting,
/// entry/exit actions, inherited/internal/cross-level transitions and
/// shallow history. Built with [`HsmBuilder`]; executed directly by
/// [`HsmInstance`] or lowered to a flat
/// [`StateMachine`] by
/// [`HierarchicalMachine::flatten`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchicalMachine {
    name: String,
    messages: Vec<String>,
    message_lookup: HashMap<String, u16>,
    /// Parameter names, bound when an instance (or compiled binding) is
    /// created — what makes a guarded statechart generic over e.g. a
    /// retry budget or replication factor.
    params: Vec<String>,
    /// Variable names (per-instance registers, initialised to zero).
    variables: Vec<String>,
    states: Vec<HsmState>,
    start: HsmStateId,
    start_leaf: HsmStateId,
    /// Composites with shallow history enabled, in id order; the slot
    /// index is each one's position in a configuration's memory vector.
    history_states: Vec<HsmStateId>,
    /// `history_slot[state] = Some(slot)` iff the state records history.
    history_slot: Vec<Option<usize>>,
}

impl HierarchicalMachine {
    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The message alphabet, in declaration order.
    pub fn messages(&self) -> &[String] {
        &self.messages
    }

    /// Looks up a message id by name in O(1).
    pub fn message_id(&self, name: &str) -> Option<MessageId> {
        self.message_lookup.get(name).copied().map(MessageId)
    }

    /// Parameter names, in declaration order (empty for plain
    /// statecharts).
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Variable names, in declaration order (empty for plain
    /// statecharts).
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// `true` if this statechart uses the extended-machine features —
    /// declared variables or parameters, a non-trivial guard, or an
    /// update on any transition. Guarded statecharts lower onto the
    /// compiled-EFSM tier via [`HierarchicalMachine::flatten_ir`];
    /// unguarded ones keep the dense-table
    /// [`HierarchicalMachine::flatten`] projection.
    ///
    /// This is the author-level predicate (over *declared* transitions);
    /// tier routing after flattening uses [`FlatIr::is_guarded`], the
    /// same definition over the *reachable* lowered candidates. The two
    /// agree whenever the machine declares a variable or parameter (the
    /// normal guarded case — both predicates test the declaration
    /// lists); they can differ only for a machine whose every guard is
    /// variable-free *and* unreachable, where the flattened IR is the
    /// authority.
    pub fn is_guarded(&self) -> bool {
        !self.variables.is_empty()
            || !self.params.is_empty()
            || self.states.iter().any(|s| {
                s.transitions
                    .values()
                    .flatten()
                    .any(|t| !t.guard.conditions().is_empty() || !t.updates.is_empty())
            })
    }

    /// Number of states in the tree (composites and leaves).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of composite (non-leaf) states.
    pub fn composite_count(&self) -> usize {
        self.states.iter().filter(|s| !s.is_leaf()).count()
    }

    /// Number of composites recording shallow history.
    pub fn history_count(&self) -> usize {
        self.history_states.len()
    }

    /// Total transitions declared across all states (before inheritance
    /// expansion), counting each guarded variant.
    pub fn transition_count(&self) -> usize {
        self.states
            .iter()
            .flat_map(|s| s.transitions.values())
            .map(Vec::len)
            .sum()
    }

    /// The state with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this machine.
    pub fn state(&self, id: HsmStateId) -> &HsmState {
        &self.states[id.index()]
    }

    /// Iterates over `(id, state)` pairs in declaration order.
    pub fn states_with_ids(&self) -> impl Iterator<Item = (HsmStateId, &HsmState)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (HsmStateId(i as u32), s))
    }

    /// Top-level states (those without a parent), in declaration order.
    pub fn top_level(&self) -> impl Iterator<Item = HsmStateId> + '_ {
        self.states_with_ids()
            .filter(|(_, s)| s.parent.is_none())
            .map(|(id, _)| id)
    }

    /// The declared start state (possibly a composite).
    pub fn start(&self) -> HsmStateId {
        self.start
    }

    /// The leaf the machine actually starts in, after descending through
    /// initial children from [`HierarchicalMachine::start`].
    pub fn start_leaf(&self) -> HsmStateId {
        self.start_leaf
    }

    /// Entry actions of the initial configuration (outermost-first down
    /// to the start leaf). These are *not* emitted by any delivery — no
    /// message triggers them — so both the direct interpreter and the
    /// flattened machine skip them; callers that need machine-start
    /// actions read them here.
    pub fn start_entry_actions(&self) -> Vec<Action> {
        let mut chain = Vec::new();
        let mut cur = Some(self.start);
        while let Some(s) = cur {
            chain.push(s);
            cur = self.states[s.index()].parent;
        }
        chain.reverse();
        let mut cur = self.start;
        while let Some(init) = self.states[cur.index()].initial {
            chain.push(init);
            cur = init;
        }
        chain
            .iter()
            .flat_map(|s| self.states[s.index()].entry.iter().cloned())
            .collect()
    }

    /// The canonical shallow-history memory of the initial
    /// configuration: every history composite remembers its initial
    /// child.
    pub fn initial_memory(&self) -> Vec<HsmStateId> {
        self.history_states
            .iter()
            .map(|&c| {
                self.states[c.index()]
                    .initial
                    .expect("history composites have children")
            })
            .collect()
    }

    /// The dotted root-to-state path, e.g. `Established.Commit.Voting`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this machine.
    pub fn path_name(&self, id: HsmStateId) -> String {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(s) = cur {
            chain.push(self.states[s.index()].name.as_str());
            cur = self.states[s.index()].parent;
        }
        chain.reverse();
        chain.join(".")
    }

    /// The display name of a configuration: the active leaf's dotted
    /// path, decorated with `~<composite path>=<child>` for every
    /// history composite whose memory differs from its initial child.
    /// The decoration keys on the composite's full path (not its bare
    /// name) so equally named composites in different branches cannot
    /// make distinct configurations collide. Flattened states carry
    /// exactly these names, so the direct interpreter and the flat
    /// engines agree on [`ProtocolEngine::state_name`].
    pub fn config_name(&self, leaf: HsmStateId, memory: &[HsmStateId]) -> String {
        let mut name = self.path_name(leaf);
        for (slot, &comp) in self.history_states.iter().enumerate() {
            let initial = self.states[comp.index()]
                .initial
                .expect("history composite");
            if memory[slot] != initial {
                let _ = write!(
                    name,
                    "~{}={}",
                    self.path_name(comp),
                    self.states[memory[slot].index()].name
                );
            }
        }
        name
    }

    /// The lowest state that is a *proper* ancestor of both `a` and `b`
    /// (`None` at forest top level). For `a == b`, or one an ancestor of
    /// the other, this is the parent of the shallower state — giving
    /// external transitions their exit-and-re-enter reading.
    fn proper_lca(&self, a: HsmStateId, b: HsmStateId) -> Option<HsmStateId> {
        let mut ancestors_of_a = Vec::new();
        let mut cur = self.states[a.index()].parent;
        while let Some(p) = cur {
            ancestors_of_a.push(p);
            cur = self.states[p.index()].parent;
        }
        let mut cur = self.states[b.index()].parent;
        while let Some(p) = cur {
            if ancestors_of_a.contains(&p) {
                return Some(p);
            }
            cur = self.states[p.index()].parent;
        }
        None
    }

    /// The shared handler traversal: walks the ancestor chain from the
    /// active leaf outwards (inner declarations take priority over
    /// inherited outer ones), visiting each state's transitions for
    /// `message` in declaration order until `visit` returns `true`.
    /// Both handler-resolution strategies are built on it —
    /// [`HsmInstance::deliver_id`] stops at the first transition whose
    /// guard holds over the live registers, and
    /// [`HierarchicalMachine::candidates`] collects the whole priority
    /// list symbolically for the flattener — so the firing priority
    /// order has exactly one definition.
    fn walk_handlers<'a>(
        &'a self,
        leaf: HsmStateId,
        message: u16,
        mut visit: impl FnMut(HsmStateId, &'a HsmTransition) -> bool,
    ) {
        let mut cur = Some(leaf);
        while let Some(state) = cur {
            if let Some(ts) = self.states[state.index()].transitions.get(&message) {
                for t in ts {
                    if visit(state, t) {
                        return;
                    }
                }
            }
            cur = self.states[state.index()].parent;
        }
    }

    /// The candidate transitions for `(leaf, message)` in firing
    /// priority order ([`HierarchicalMachine::walk_handlers`] order),
    /// with the never-firing tail pruned: the scan stops after the
    /// first *unconditional* candidate — nothing declared after an
    /// always-true guard can ever fire — and an inherited candidate
    /// whose guard is *identical* to an inner one's is dropped for the
    /// same reason: whenever it would match, the inner declaration
    /// already won (and keeping it would look like a duplicate to the
    /// downstream compilers). At run time the first candidate whose
    /// guard holds wins; a state whose guards all fail falls through to
    /// its enclosing state's transitions.
    fn candidates(&self, leaf: HsmStateId, message: u16) -> Vec<(HsmStateId, &HsmTransition)> {
        let mut found: Vec<(HsmStateId, &HsmTransition)> = Vec::new();
        self.walk_handlers(leaf, message, |state, t| {
            if found.iter().any(|&(_, p)| p.guard == t.guard) {
                return false; // shadowed by an identical inner guard
            }
            found.push((state, t));
            t.guard.conditions().is_empty()
        });
        found
    }

    /// The run-to-completion kernel shared by [`HsmInstance`] and the
    /// flattening compiler: fires `transition` (declared on `handler`,
    /// an ancestor-or-self of the active `leaf`) from the configuration
    /// `(leaf, memory)`, appending the synthesized exit/transition/entry
    /// action sequence to `actions` and updating `memory` in place.
    /// Guard evaluation and variable updates are *not* performed here —
    /// the interpreter evaluates them against live registers, the
    /// flattener carries them symbolically into the IR. Returns the new
    /// active leaf (the same leaf for internal transitions).
    fn apply_transition(
        &self,
        leaf: HsmStateId,
        memory: &mut [HsmStateId],
        handler: HsmStateId,
        transition: &HsmTransition,
        actions: &mut Vec<Action>,
    ) -> HsmStateId {
        let (target, via_history) = match transition.target {
            HsmTarget::Internal => {
                actions.extend(transition.actions.iter().cloned());
                return leaf;
            }
            HsmTarget::State(t) => (t, false),
            HsmTarget::History(t) => (t, true),
        };

        let lca = self.proper_lca(handler, target);

        // Exit from the active leaf up to (but not including) the LCA,
        // innermost-first; exited history composites record their active
        // direct child.
        let mut cur = Some(leaf);
        let mut below: Option<HsmStateId> = None;
        while cur != lca {
            let s = cur.expect("the LCA is a proper ancestor of the active leaf");
            actions.extend(self.states[s.index()].exit.iter().cloned());
            if let (Some(slot), Some(child)) = (self.history_slot[s.index()], below) {
                memory[slot] = child;
            }
            below = Some(s);
            cur = self.states[s.index()].parent;
        }

        actions.extend(transition.actions.iter().cloned());

        // Enter from the LCA down to the target, outermost-first.
        let mut chain = Vec::new();
        let mut cur = Some(target);
        while cur != lca {
            let s = cur.expect("the LCA is a proper ancestor of the target");
            chain.push(s);
            cur = self.states[s.index()].parent;
        }
        for &s in chain.iter().rev() {
            actions.extend(self.states[s.index()].entry.iter().cloned());
        }

        // Descend below the target: history restores the remembered
        // child (already updated if the target itself was just exited),
        // then composites descend through initial children to a leaf.
        let mut cur = target;
        if via_history {
            let slot = self.history_slot[target.index()].expect("validated history target");
            let child = memory[slot];
            actions.extend(self.states[child.index()].entry.iter().cloned());
            cur = child;
        }
        while let Some(init) = self.states[cur.index()].initial {
            actions.extend(self.states[init.index()].entry.iter().cloned());
            cur = init;
        }
        cur
    }

    /// Checks that for every state, message and combination of variable
    /// values in `0..=var_bound` (per variable), at most one of the
    /// state's *own* guarded transitions is enabled — i.e. declaration
    /// priority never actually disambiguates anything. Inherited
    /// transitions are exempt by design: an inner state overriding an
    /// enclosing one is the statechart priority rule, not
    /// nondeterminism. The guard-disjointness companion to
    /// [`Efsm::check_deterministic`](crate::Efsm::check_deterministic).
    ///
    /// # Errors
    ///
    /// Returns a description of the first overlapping pair found.
    ///
    /// # Panics
    ///
    /// Panics if the number of parameters differs from the machine's
    /// declaration.
    pub fn check_guard_determinism(&self, params: &[i64], var_bound: i64) -> Result<(), String> {
        assert_eq!(params.len(), self.params.len(), "wrong parameter count");
        // Sound interval prefilter: a `(state, message)` group needs the
        // bounded enumeration only if some pair of its transitions is
        // *not* provably disjoint by the canonical-difference analysis
        // ([`guards_disjoint`](crate::interval::guards_disjoint)). For
        // the common complementary-guard idiom (`v + 1 < b` vs.
        // `v + 1 >= b`) every pair is proved disjoint and the
        // exponential enumeration is skipped entirely.
        let mut suspect: Vec<(usize, u16)> = Vec::new();
        for (si, state) in self.states.iter().enumerate() {
            for (&mid, ts) in &state.transitions {
                let provably_disjoint = (0..ts.len()).all(|i| {
                    (i + 1..ts.len())
                        .all(|j| crate::interval::guards_disjoint(&ts[i].guard, &ts[j].guard))
                });
                if !provably_disjoint {
                    suspect.push((si, mid));
                }
            }
        }
        if suspect.is_empty() {
            return Ok(());
        }
        // Refinement fallback: enumerate variable values for the groups
        // the intervals could not discharge.
        let nvars = self.variables.len();
        let mut vars = vec![0i64; nvars];
        loop {
            for &(si, mid) in &suspect {
                let state = &self.states[si];
                let ts = &state.transitions[&mid];
                let mut matched: Option<usize> = None;
                for (ti, t) in ts.iter().enumerate() {
                    if !t.guard.eval(&vars, params) {
                        continue;
                    }
                    if let Some(prev) = matched {
                        return Err(format!(
                            "state `{}`, message `{}`: transitions {prev} and {ti} both \
                             enabled at vars {vars:?}",
                            state.name, self.messages[mid as usize]
                        ));
                    }
                    matched = Some(ti);
                }
            }
            // Advance the mixed-radix counter over variable values.
            let mut i = 0;
            loop {
                if i == nvars {
                    return Ok(());
                }
                vars[i] += 1;
                if vars[i] <= var_bound {
                    break;
                }
                vars[i] = 0;
                i += 1;
            }
        }
    }

    /// Lowers the statechart onto the unified flat IR
    /// ([`FlatIr`]) — the one lowering pipeline shared by guarded and
    /// unguarded statecharts.
    ///
    /// Flat states are the machine's *reachable configurations* (active
    /// leaf × shallow-history memory), discovered breadth-first from the
    /// initial configuration — so unreachable corners of the
    /// configuration product (e.g. a history memory that can never be
    /// recorded) are pruned by construction. The enumeration is
    /// *guard-aware*: a candidate transition whose guard is provably
    /// unsatisfiable ([`guard_unsat`](crate::interval::guard_unsat) —
    /// e.g. it conjoins the complementary `v + 1 < b` and `v + 1 ≥ b`)
    /// is skipped, so configurations reachable only through it are
    /// never enumerated. Each flat transition
    /// carries the full synthesized action sequence (exit actions
    /// innermost-first, then the transition's own actions, then entry
    /// actions outermost-first) plus the source transition's guard and
    /// updates, symbolically: a flat `(state, message)` cell lists every
    /// candidate in firing priority order (innermost state first,
    /// declaration order within a state, cut off at the first
    /// unconditional candidate), so the compiled tiers resolve guards
    /// exactly as the direct interpreter does. Compiling the result
    /// interns identical action sequences in the shared arena, so the
    /// expansion costs table cells, not arena bytes.
    ///
    /// Final leaves lower to absorbing [`StateRole::Finish`] states with
    /// no outgoing transitions; flat state names are
    /// [`HierarchicalMachine::config_name`]s, shared with
    /// [`HsmInstance::state_name`]. Unguarded statecharts produce an
    /// unguarded IR that lowers to the dense-table tier
    /// ([`CompiledMachine::compile_ir`](crate::CompiledMachine::compile_ir));
    /// guarded ones lower to the register-machine tier
    /// ([`CompiledEfsm::compile_ir`](crate::CompiledEfsm::compile_ir)).
    pub fn flatten_ir(&self) -> FlatIr {
        let init_mem = self.initial_memory();
        let start_config = (self.start_leaf, init_mem);

        let mut states: Vec<FlatState> = Vec::new();
        let mut index: HashMap<(HsmStateId, Vec<HsmStateId>), u32> = HashMap::new();
        let mut queue = VecDeque::new();
        let add_config = |states: &mut Vec<FlatState>,
                          queue: &mut VecDeque<(HsmStateId, Vec<HsmStateId>)>,
                          index: &mut HashMap<_, u32>,
                          config: (HsmStateId, Vec<HsmStateId>)| {
            if let Some(&id) = index.get(&config) {
                return id;
            }
            let id = states.len() as u32;
            states.push(FlatState {
                name: self.config_name(config.0, &config.1),
                role: self.states[config.0.index()].role,
                transitions: Vec::new(),
            });
            index.insert(config.clone(), id);
            queue.push_back(config);
            id
        };

        let start_id = add_config(&mut states, &mut queue, &mut index, start_config);
        while let Some((leaf, memory)) = queue.pop_front() {
            if self.states[leaf.index()].role == StateRole::Finish {
                continue; // absorbing: no outgoing flat transitions
            }
            let from = index[&(leaf, memory.clone())];
            let mut lowered = Vec::new();
            for m in 0..self.messages.len() as u16 {
                for (handler, t) in self.candidates(leaf, m) {
                    // Guard-aware reachability pruning: a candidate whose
                    // guard is provably unsatisfiable (for every variable
                    // and parameter assignment — see
                    // [`guard_unsat`](crate::interval::guard_unsat)) can
                    // never fire, so neither it nor any configuration
                    // only reachable through it is enumerated.
                    if crate::interval::guard_unsat(&t.guard) {
                        continue;
                    }
                    let mut mem = memory.clone();
                    let mut actions = Vec::new();
                    let new_leaf = self.apply_transition(leaf, &mut mem, handler, t, &mut actions);
                    let to = add_config(&mut states, &mut queue, &mut index, (new_leaf, mem));
                    lowered.push(FlatTransition {
                        message: m,
                        guard: t.guard.clone(),
                        updates: t.updates.clone(),
                        actions,
                        target: to,
                    });
                }
            }
            states[from as usize].transitions = lowered;
        }
        FlatIr {
            name: self.name.clone(),
            messages: self.messages.clone(),
            message_lookup: self.message_lookup.clone(),
            params: self.params.clone(),
            variables: self.variables.clone(),
            states,
            start: start_id,
        }
    }

    /// Lowers an *unguarded* statechart to a flat [`StateMachine`]
    /// running on every existing execution tier unchanged — the trivial
    /// projection of [`HierarchicalMachine::flatten_ir`] (an unguarded
    /// IR carries exactly one candidate per reachable `(configuration,
    /// message)` cell).
    ///
    /// # Panics
    ///
    /// Panics if the statechart is guarded
    /// ([`HierarchicalMachine::is_guarded`]): guarded statecharts have
    /// no flat-FSM projection and lower through
    /// [`HierarchicalMachine::flatten_ir`] onto the compiled-EFSM tier
    /// instead.
    pub fn flatten(&self) -> StateMachine {
        assert!(
            !self.is_guarded(),
            "guarded statechart `{}` has no flat StateMachine projection; \
             lower it with flatten_ir() onto the compiled-EFSM tier",
            self.name
        );
        self.flatten_ir().to_machine()
    }

    /// Creates a direct-interpretation instance positioned at the
    /// initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if the machine declares parameters (bind them with
    /// [`HierarchicalMachine::instance_with`]).
    pub fn instance(&self) -> HsmInstance<'_> {
        HsmInstance::new(self)
    }

    /// Creates a direct-interpretation instance with the given parameter
    /// binding.
    ///
    /// # Panics
    ///
    /// Panics if the number of parameters differs from the machine's
    /// declaration.
    pub fn instance_with(&self, params: Vec<i64>) -> HsmInstance<'_> {
        HsmInstance::with_params(self, params)
    }
}

/// Incremental builder for hierarchical machines.
///
/// States are declared top-down ([`HsmBuilder::add_state`] for top-level
/// states, [`HsmBuilder::add_child`] to nest); the first child added to
/// a state becomes its initial child (overridable with
/// [`HsmBuilder::set_initial`]). Like
/// [`StateMachineBuilder`](crate::StateMachineBuilder), the `add_*`
/// methods panic on invariant violations and have `try_*` twins
/// returning [`HsmError`] for generated or untrusted input;
/// [`HsmBuilder::build`] validates the tree invariants the flattening
/// compiler relies on.
#[derive(Debug)]
pub struct HsmBuilder {
    name: String,
    messages: Vec<String>,
    params: Vec<String>,
    variables: Vec<String>,
    states: Vec<HsmState>,
}

impl HsmBuilder {
    /// Starts a builder for a machine with the given message alphabet.
    ///
    /// # Panics
    ///
    /// Panics if `messages` is empty or contains duplicates.
    pub fn new<I, S>(name: impl Into<String>, messages: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let messages: Vec<String> = messages.into_iter().map(Into::into).collect();
        assert!(
            !messages.is_empty(),
            "machine must declare at least one message"
        );
        for (i, m) in messages.iter().enumerate() {
            assert!(
                !messages[..i].contains(m),
                "duplicate message `{m}` in machine alphabet"
            );
        }
        HsmBuilder {
            name: name.into(),
            messages,
            params: Vec::new(),
            variables: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Declares an instance parameter (bound when an instance or
    /// compiled binding is created); returns its id for use in guards
    /// and updates.
    pub fn add_param(&mut self, name: impl Into<String>) -> ParamId {
        self.params.push(name.into());
        ParamId(self.params.len() - 1)
    }

    /// Declares a variable (per-instance register, initial value zero);
    /// returns its id for use in guards and updates.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.variables.push(name.into());
        VarId(self.variables.len() - 1)
    }

    fn push_state(&mut self, name: String, parent: Option<HsmStateId>) -> HsmStateId {
        let id = HsmStateId(self.states.len() as u32);
        self.states.push(HsmState::new(name, parent));
        if let Some(p) = parent {
            let parent_state = &mut self.states[p.index()];
            parent_state.children.push(id);
            if parent_state.initial.is_none() {
                parent_state.initial = Some(id);
            }
        }
        id
    }

    fn check_id(&self, id: HsmStateId) -> Result<(), HsmError> {
        if id.index() >= self.states.len() {
            return Err(HsmError::StateOutOfRange {
                index: id.index(),
                states: self.states.len(),
            });
        }
        Ok(())
    }

    /// Adds a top-level state; returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> HsmStateId {
        self.push_state(name.into(), None)
    }

    /// Adds a child of `parent` (turning `parent` into a composite);
    /// the first child added becomes the parent's initial child.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    pub fn add_child(&mut self, parent: HsmStateId, name: impl Into<String>) -> HsmStateId {
        self.check_id(parent).unwrap_or_else(|e| panic!("{e}"));
        self.push_state(name.into(), Some(parent))
    }

    /// Overrides the initial child of a composite (validated against its
    /// children at [`HsmBuilder::build`] time).
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn set_initial(&mut self, composite: HsmStateId, child: HsmStateId) {
        self.check_id(composite).unwrap_or_else(|e| panic!("{e}"));
        self.check_id(child).unwrap_or_else(|e| panic!("{e}"));
        self.states[composite.index()].initial = Some(child);
    }

    /// Enables shallow history on a composite: when it is exited, the
    /// active direct child is remembered, and transitions targeting its
    /// history pseudostate re-enter that child.
    ///
    /// # Panics
    ///
    /// Panics if `composite` is out of range.
    pub fn enable_history(&mut self, composite: HsmStateId) {
        self.check_id(composite).unwrap_or_else(|e| panic!("{e}"));
        self.states[composite.index()].history = true;
    }

    /// Appends entry actions to a state (performed whenever the state is
    /// entered, outermost-first along an entry chain).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn on_entry(&mut self, state: HsmStateId, actions: Vec<Action>) {
        self.check_id(state).unwrap_or_else(|e| panic!("{e}"));
        self.states[state.index()].entry.extend(actions);
    }

    /// Appends exit actions to a state (performed whenever the state is
    /// exited, innermost-first along an exit chain).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn on_exit(&mut self, state: HsmStateId, actions: Vec<Action>) {
        self.check_id(state).unwrap_or_else(|e| panic!("{e}"));
        self.states[state.index()].exit.extend(actions);
    }

    /// Marks a leaf as final: its configurations lower to absorbing
    /// [`StateRole::Finish`] flat states.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn mark_final(&mut self, state: HsmStateId) {
        self.check_id(state).unwrap_or_else(|e| panic!("{e}"));
        self.states[state.index()].role = StateRole::Finish;
    }

    fn check_expr(&self, expr: &LinExpr) -> Result<(), HsmError> {
        for &(_, operand) in expr.terms() {
            match operand {
                Operand::Var(v) if v.index() >= self.variables.len() => {
                    return Err(HsmError::VariableOutOfRange {
                        index: v.index(),
                        variables: self.variables.len(),
                    });
                }
                Operand::Param(p) if p.index() >= self.params.len() => {
                    return Err(HsmError::ParamOutOfRange {
                        index: p.index(),
                        params: self.params.len(),
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn check_guard_and_updates(&self, guard: &Guard, updates: &[Update]) -> Result<(), HsmError> {
        for cond in guard.conditions() {
            self.check_expr(&cond.lhs)?;
            self.check_expr(&cond.rhs)?;
        }
        for update in updates {
            match update {
                Update::Set(v, expr) => {
                    self.check_expr(&LinExpr::var(*v))?;
                    self.check_expr(expr)?;
                }
                Update::Inc(v) => self.check_expr(&LinExpr::var(*v))?,
            }
        }
        Ok(())
    }

    fn try_add(
        &mut self,
        from: HsmStateId,
        message: &str,
        target: HsmTarget,
        guard: Guard,
        updates: Vec<Update>,
        actions: Vec<Action>,
    ) -> Result<(), HsmError> {
        let mid = self
            .messages
            .iter()
            .position(|m| m == message)
            .ok_or_else(|| HsmError::UnknownMessage(message.to_string()))? as u16;
        self.check_id(from)?;
        match target {
            HsmTarget::State(t) | HsmTarget::History(t) => self.check_id(t)?,
            HsmTarget::Internal => {}
        }
        self.check_guard_and_updates(&guard, &updates)?;
        let state = &mut self.states[from.index()];
        if let Some(list) = state.transitions.get(&mid) {
            // Identical guards can never both be useful: the second
            // silently loses every race.
            if list.iter().any(|p| p.guard == guard) {
                return Err(HsmError::DuplicateTransition {
                    state: state.name.clone(),
                    message: message.to_string(),
                });
            }
            // A transition declared after an unconditional one on the
            // same message can never fire either (declaration order is
            // firing priority, and an always-true guard always wins).
            if list.iter().any(|p| p.guard.conditions().is_empty()) {
                return Err(HsmError::ShadowedTransition {
                    state: state.name.clone(),
                    message: message.to_string(),
                });
            }
        }
        state
            .transitions
            .entry(mid)
            .or_default()
            .push(HsmTransition {
                target,
                guard,
                updates,
                actions,
            });
        Ok(())
    }

    /// Adds an external transition from `from` on `message` to `to`
    /// (inherited by every descendant of `from` unless overridden).
    ///
    /// # Panics
    ///
    /// Panics if the message is unknown, an id is invalid, or `(from,
    /// message)` already has a transition.
    pub fn add_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        to: HsmStateId,
        actions: Vec<Action>,
    ) {
        self.try_add_transition(from, message, to, actions)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`HsmBuilder::add_transition`].
    ///
    /// # Errors
    ///
    /// [`HsmError::UnknownMessage`], [`HsmError::StateOutOfRange`] or
    /// [`HsmError::DuplicateTransition`].
    pub fn try_add_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        to: HsmStateId,
        actions: Vec<Action>,
    ) -> Result<(), HsmError> {
        self.try_add(
            from,
            message,
            HsmTarget::State(to),
            Guard::always(),
            Vec::new(),
            actions,
        )
    }

    /// Adds a *guarded* external transition: it fires only while `guard`
    /// holds over the machine's variables and parameters, applying
    /// `updates` (each reading the pre-transition variable values) when
    /// it does. Several guarded transitions may share a `(state,
    /// message)` pair; declaration order is firing priority, and a state
    /// whose guards all fail falls through to inherited transitions on
    /// enclosing states.
    ///
    /// # Panics
    ///
    /// As for [`HsmBuilder::add_transition`], plus if the guard or an
    /// update references an undeclared variable or parameter, or the
    /// transition is unreachable (declared after an unconditional one on
    /// the same message).
    pub fn add_guarded_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        guard: Guard,
        updates: Vec<Update>,
        to: HsmStateId,
        actions: Vec<Action>,
    ) {
        self.try_add_guarded_transition(from, message, guard, updates, to, actions)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`HsmBuilder::add_guarded_transition`].
    ///
    /// # Errors
    ///
    /// As for [`HsmBuilder::try_add_transition`], plus
    /// [`HsmError::VariableOutOfRange`] / [`HsmError::ParamOutOfRange`]
    /// for dangling operand ids and [`HsmError::ShadowedTransition`] for
    /// a transition declared after an unconditional one.
    pub fn try_add_guarded_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        guard: Guard,
        updates: Vec<Update>,
        to: HsmStateId,
        actions: Vec<Action>,
    ) -> Result<(), HsmError> {
        self.try_add(from, message, HsmTarget::State(to), guard, updates, actions)
    }

    /// Adds an external transition into the shallow-history pseudostate
    /// of `composite` (which must have history enabled by
    /// [`HsmBuilder::build`] time).
    ///
    /// # Panics
    ///
    /// As for [`HsmBuilder::add_transition`].
    pub fn add_history_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        composite: HsmStateId,
        actions: Vec<Action>,
    ) {
        self.try_add_history_transition(from, message, composite, actions)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`HsmBuilder::add_history_transition`].
    ///
    /// # Errors
    ///
    /// As for [`HsmBuilder::try_add_transition`].
    pub fn try_add_history_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        composite: HsmStateId,
        actions: Vec<Action>,
    ) -> Result<(), HsmError> {
        self.try_add(
            from,
            message,
            HsmTarget::History(composite),
            Guard::always(),
            Vec::new(),
            actions,
        )
    }

    /// Adds a guarded transition into the shallow-history pseudostate of
    /// `composite` (see [`HsmBuilder::add_guarded_transition`] for the
    /// guard/update semantics).
    ///
    /// # Panics
    ///
    /// As for [`HsmBuilder::add_guarded_transition`].
    pub fn add_guarded_history_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        guard: Guard,
        updates: Vec<Update>,
        composite: HsmStateId,
        actions: Vec<Action>,
    ) {
        self.try_add_guarded_history_transition(from, message, guard, updates, composite, actions)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`HsmBuilder::add_guarded_history_transition`].
    ///
    /// # Errors
    ///
    /// As for [`HsmBuilder::try_add_guarded_transition`].
    pub fn try_add_guarded_history_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        guard: Guard,
        updates: Vec<Update>,
        composite: HsmStateId,
        actions: Vec<Action>,
    ) -> Result<(), HsmError> {
        self.try_add(
            from,
            message,
            HsmTarget::History(composite),
            guard,
            updates,
            actions,
        )
    }

    /// Adds an internal transition on `from`: `actions` fire but the
    /// configuration is unchanged and no entry/exit actions run.
    ///
    /// # Panics
    ///
    /// As for [`HsmBuilder::add_transition`].
    pub fn add_internal_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        actions: Vec<Action>,
    ) {
        self.try_add_internal_transition(from, message, actions)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`HsmBuilder::add_internal_transition`].
    ///
    /// # Errors
    ///
    /// As for [`HsmBuilder::try_add_transition`].
    pub fn try_add_internal_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        actions: Vec<Action>,
    ) -> Result<(), HsmError> {
        self.try_add(
            from,
            message,
            HsmTarget::Internal,
            Guard::always(),
            Vec::new(),
            actions,
        )
    }

    /// Adds a guarded internal transition: `actions` fire and `updates`
    /// apply while `guard` holds, with the configuration unchanged and
    /// no entry/exit actions run.
    ///
    /// # Panics
    ///
    /// As for [`HsmBuilder::add_guarded_transition`].
    pub fn add_guarded_internal_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        guard: Guard,
        updates: Vec<Update>,
        actions: Vec<Action>,
    ) {
        self.try_add_guarded_internal_transition(from, message, guard, updates, actions)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`HsmBuilder::add_guarded_internal_transition`].
    ///
    /// # Errors
    ///
    /// As for [`HsmBuilder::try_add_guarded_transition`].
    pub fn try_add_guarded_internal_transition(
        &mut self,
        from: HsmStateId,
        message: &str,
        guard: Guard,
        updates: Vec<Update>,
        actions: Vec<Action>,
    ) -> Result<(), HsmError> {
        self.try_add(from, message, HsmTarget::Internal, guard, updates, actions)
    }

    /// Finalises the machine, validating the tree invariants.
    ///
    /// # Panics
    ///
    /// Panics on any [`HsmError`] reported by [`HsmBuilder::try_build`].
    pub fn build(self, start: HsmStateId) -> HierarchicalMachine {
        self.try_build(start).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Finalises the machine, reporting invariant violations as a
    /// [`HsmError`] — for callers constructing machines from generated
    /// or untrusted input.
    ///
    /// # Errors
    ///
    /// [`HsmError::StateOutOfRange`] if `start` is invalid;
    /// [`HsmError::InvalidStateName`] /
    /// [`HsmError::DuplicateSiblingName`] if a name is empty, contains a
    /// reserved separator, or collides with a sibling;
    /// [`HsmError::InitialNotChild`] if a composite's initial is not its
    /// own child; [`HsmError::HistoryOnLeaf`] /
    /// [`HsmError::FinalNotLeaf`] /
    /// [`HsmError::InvalidHistoryTarget`] for misplaced history or
    /// final markers.
    pub fn try_build(self, start: HsmStateId) -> Result<HierarchicalMachine, HsmError> {
        self.check_id(start)?;

        // Names: non-empty, free of reserved separators, unique among
        // siblings (so configuration names are unambiguous).
        let mut sibling_names: HashMap<(Option<HsmStateId>, &str), ()> = HashMap::new();
        for s in &self.states {
            if s.name.is_empty() || s.name.contains(['.', '~', '=']) {
                return Err(HsmError::InvalidStateName(s.name.clone()));
            }
            if sibling_names
                .insert((s.parent, s.name.as_str()), ())
                .is_some()
            {
                return Err(HsmError::DuplicateSiblingName(s.name.clone()));
            }
        }

        for (i, s) in self.states.iter().enumerate() {
            let id = HsmStateId(i as u32);
            if let Some(init) = s.initial {
                if self.states[init.index()].parent != Some(id) {
                    return Err(HsmError::InitialNotChild {
                        composite: s.name.clone(),
                        initial: self.states[init.index()].name.clone(),
                    });
                }
            }
            if s.history && s.is_leaf() {
                return Err(HsmError::HistoryOnLeaf(s.name.clone()));
            }
            if s.role == StateRole::Finish && !s.is_leaf() {
                return Err(HsmError::FinalNotLeaf(s.name.clone()));
            }
            for t in s.transitions.values().flatten() {
                if let HsmTarget::History(c) = t.target {
                    let target = &self.states[c.index()];
                    if !target.history || target.is_leaf() {
                        return Err(HsmError::InvalidHistoryTarget(target.name.clone()));
                    }
                }
            }
        }

        let message_lookup = self
            .messages
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), i as u16))
            .collect();
        let history_states: Vec<HsmStateId> = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.history)
            .map(|(i, _)| HsmStateId(i as u32))
            .collect();
        let mut history_slot = vec![None; self.states.len()];
        for (slot, &c) in history_states.iter().enumerate() {
            history_slot[c.index()] = Some(slot);
        }
        let mut start_leaf = start;
        while let Some(init) = self.states[start_leaf.index()].initial {
            start_leaf = init;
        }
        Ok(HierarchicalMachine {
            name: self.name,
            messages: self.messages,
            message_lookup,
            params: self.params,
            variables: self.variables,
            states: self.states,
            start,
            start_leaf,
            history_states,
            history_slot,
        })
    }
}

/// One executing instance of a [`HierarchicalMachine`]: the direct
/// interpreter over the statechart, and the semantic reference the
/// flattened machines are property-checked against.
///
/// Each delivery resolves the innermost handler by walking the active
/// leaf's ancestor chain and synthesizes the exit/transition/entry
/// action sequence into an internal scratch buffer (reused across
/// deliveries; [`ProtocolEngine::deliver_ref`] borrows from it). Use it
/// for freshly authored statecharts and debugging; flatten and compile
/// for serving traffic.
#[derive(Debug, Clone)]
pub struct HsmInstance<'h> {
    machine: &'h HierarchicalMachine,
    leaf: HsmStateId,
    memory: Vec<HsmStateId>,
    params: Vec<i64>,
    vars: Vec<i64>,
    /// Pre-transition variable snapshot, reused across deliveries so the
    /// hot path does not allocate.
    old_vars: Vec<i64>,
    steps: u64,
    scratch: Vec<Action>,
}

impl<'h> HsmInstance<'h> {
    /// Creates an instance positioned at the initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if the machine declares parameters; bind them with
    /// [`HsmInstance::with_params`].
    pub fn new(machine: &'h HierarchicalMachine) -> Self {
        HsmInstance::with_params(machine, Vec::new())
    }

    /// Creates an instance positioned at the initial configuration with
    /// the given parameter binding; variables start at zero.
    ///
    /// # Panics
    ///
    /// Panics if the number of parameters differs from the machine's
    /// declaration.
    pub fn with_params(machine: &'h HierarchicalMachine, params: Vec<i64>) -> Self {
        assert_eq!(
            params.len(),
            machine.params().len(),
            "wrong parameter count"
        );
        HsmInstance {
            machine,
            leaf: machine.start_leaf(),
            memory: machine.initial_memory(),
            params,
            vars: vec![0; machine.variables().len()],
            old_vars: vec![0; machine.variables().len()],
            steps: 0,
            scratch: Vec::new(),
        }
    }

    /// The machine this instance executes.
    pub fn machine(&self) -> &'h HierarchicalMachine {
        self.machine
    }

    /// Current variable values, in declaration order.
    pub fn vars(&self) -> &[i64] {
        &self.vars
    }

    /// The bound parameter values.
    pub fn params(&self) -> &[i64] {
        &self.params
    }

    /// The active leaf state.
    pub fn leaf(&self) -> HsmStateId {
        self.leaf
    }

    /// The shallow-history memory, one remembered direct child per
    /// history composite (in [`HierarchicalMachine`] id order).
    pub fn memory(&self) -> &[HsmStateId] {
        &self.memory
    }

    /// Number of transitions taken so far (internal transitions count).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// `true` if `state` is the active leaf or one of its ancestors —
    /// the statechart notion of "being in" a composite state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn is_in(&self, state: HsmStateId) -> bool {
        let mut cur = Some(self.leaf);
        while let Some(s) = cur {
            if s == state {
                return true;
            }
            cur = self.machine.state(s).parent();
        }
        false
    }

    /// Delivers a message by id; returns the synthesized action sequence
    /// (borrowed from an internal scratch buffer valid until the next
    /// delivery).
    ///
    /// The handler is resolved innermost-first with guard fall-through:
    /// walking the active leaf's ancestor chain, the first transition
    /// (declaration order within a state) whose guard holds over the
    /// live variable registers fires; its updates apply with the EFSM
    /// tiers' staged read-pre-transition-values semantics.
    pub fn deliver_id(&mut self, message: MessageId) -> &[Action] {
        self.scratch.clear();
        let machine = self.machine;
        if machine.state(self.leaf).role() == StateRole::Finish {
            return &self.scratch;
        }
        // Innermost handler wins; a state whose guards all fail falls
        // through to the enclosing state's (inherited) transitions.
        let mut fired: Option<(HsmStateId, &HsmTransition)> = None;
        let (vars, params) = (&self.vars, &self.params);
        machine.walk_handlers(self.leaf, message.0, |state, t| {
            if t.guard.eval(vars, params) {
                fired = Some((state, t));
                return true;
            }
            false
        });
        let Some((handler, transition)) = fired else {
            return &self.scratch;
        };
        crate::efsm::apply_staged_updates(
            &transition.updates,
            &mut self.vars,
            &mut self.old_vars,
            &self.params,
        );
        self.leaf = machine.apply_transition(
            self.leaf,
            &mut self.memory,
            handler,
            transition,
            &mut self.scratch,
        );
        self.steps += 1;
        &self.scratch
    }
}

impl ProtocolEngine for HsmInstance<'_> {
    fn deliver_ref(&mut self, message: &str) -> Result<&[Action], InterpError> {
        let id = self
            .machine
            .message_id(message)
            .ok_or_else(|| InterpError::UnknownMessage(message.to_string()))?;
        Ok(self.deliver_id(id))
    }

    fn is_finished(&self) -> bool {
        self.machine.state(self.leaf).role() == StateRole::Finish
    }

    fn state_name(&self) -> Cow<'_, str> {
        Cow::Owned(self.machine.config_name(self.leaf, &self.memory))
    }

    fn reset(&mut self) {
        self.leaf = self.machine.start_leaf();
        self.memory = self.machine.initial_memory();
        self.vars.fill(0);
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledMachine;
    use crate::interp::FsmInstance;

    /// Connection lifecycle: Idle, Up{A, B} with history, Down.
    fn connection() -> HierarchicalMachine {
        let mut b = HsmBuilder::new("conn", ["open", "work", "drop", "resume", "kill"]);
        let idle = b.add_state("Idle");
        let up = b.add_state("Up");
        let a = b.add_child(up, "A");
        let bb = b.add_child(up, "B");
        let down = b.add_state("Down");
        b.mark_final(down);
        b.enable_history(up);
        b.on_entry(up, vec![Action::send("up_in")]);
        b.on_exit(up, vec![Action::send("up_out")]);
        b.on_entry(a, vec![Action::send("a_in")]);
        b.on_exit(a, vec![Action::send("a_out")]);
        b.on_entry(bb, vec![Action::send("b_in")]);
        b.add_transition(idle, "open", up, vec![Action::send("syn")]);
        b.add_transition(a, "work", bb, vec![]);
        b.add_transition(up, "drop", idle, vec![Action::send("fin")]);
        b.add_history_transition(idle, "resume", up, vec![]);
        b.add_transition(up, "kill", down, vec![]);
        b.build(idle)
    }

    #[test]
    fn entry_exit_and_inheritance() {
        let m = connection();
        let mut i = m.instance();
        assert_eq!(i.state_name(), "Idle");
        // open: enter Up then A, transition action first after exits.
        assert_eq!(
            i.deliver_ref("open").unwrap(),
            [
                Action::send("syn"),
                Action::send("up_in"),
                Action::send("a_in")
            ]
        );
        assert_eq!(i.state_name(), "Up.A");
        let up = m
            .states_with_ids()
            .find(|(_, s)| s.name() == "Up")
            .unwrap()
            .0;
        assert!(i.is_in(up));
        assert!(i.is_in(i.leaf()));
        let down = m
            .states_with_ids()
            .find(|(_, s)| s.name() == "Down")
            .unwrap()
            .0;
        assert!(!i.is_in(down));
        // drop is declared on Up, inherited by A: exits A then Up.
        assert_eq!(
            i.deliver_ref("drop").unwrap(),
            [
                Action::send("a_out"),
                Action::send("up_out"),
                Action::send("fin")
            ]
        );
        assert_eq!(i.state_name(), "Idle");
        assert_eq!(i.steps(), 2);
    }

    #[test]
    fn shallow_history_restores_last_child() {
        let m = connection();
        let mut i = m.instance();
        i.deliver_ref("open").unwrap();
        i.deliver_ref("work").unwrap(); // now Up.B
        assert_eq!(i.state_name(), "Up.B");
        i.deliver_ref("drop").unwrap(); // memory: Up -> B
        assert_eq!(i.state_name(), "Idle~Up=B");
        assert_eq!(
            i.deliver_ref("resume").unwrap(),
            [Action::send("up_in"), Action::send("b_in")]
        );
        assert_eq!(i.state_name(), "Up.B~Up=B");
    }

    #[test]
    fn cold_history_enters_initial_child() {
        let m = connection();
        let mut i = m.instance();
        assert_eq!(
            i.deliver_ref("resume").unwrap(),
            [Action::send("up_in"), Action::send("a_in")]
        );
        assert_eq!(i.state_name(), "Up.A");
    }

    #[test]
    fn final_leaf_absorbs() {
        let m = connection();
        let mut i = m.instance();
        i.deliver_ref("open").unwrap();
        i.deliver_ref("kill").unwrap();
        assert!(i.is_finished());
        assert_eq!(i.state_name(), "Down");
        assert!(i.deliver_ref("open").unwrap().is_empty());
        assert_eq!(i.steps(), 2);
    }

    #[test]
    fn inapplicable_and_unknown_messages() {
        let m = connection();
        let mut i = m.instance();
        assert!(i.deliver_ref("work").unwrap().is_empty()); // not applicable in Idle
        assert_eq!(i.steps(), 0);
        assert_eq!(
            i.deliver_ref("zap").map(<[Action]>::to_vec),
            Err(InterpError::UnknownMessage("zap".into()))
        );
    }

    #[test]
    fn internal_transition_keeps_configuration() {
        let mut b = HsmBuilder::new("m", ["ping", "poke"]);
        let top = b.add_state("Top");
        let inner = b.add_child(top, "Inner");
        b.on_entry(inner, vec![Action::send("in")]);
        b.on_exit(inner, vec![Action::send("out")]);
        b.add_internal_transition(top, "ping", vec![Action::send("pong")]);
        let m = b.build(top);
        let mut i = m.instance();
        assert_eq!(i.deliver_ref("ping").unwrap(), [Action::send("pong")]);
        assert_eq!(i.state_name(), "Top.Inner"); // no exit/entry ran
        assert_eq!(i.steps(), 1);
        // Flat form is a self-loop with just the transition actions.
        let flat = m.flatten();
        let mut f = FsmInstance::new(&flat);
        assert_eq!(f.deliver_ref("ping").unwrap(), [Action::send("pong")]);
        assert_eq!(f.state_name(), "Top.Inner");
        assert_eq!(f.steps(), 1);
    }

    #[test]
    fn external_self_transition_exits_and_reenters() {
        let mut b = HsmBuilder::new("m", ["again"]);
        let s = b.add_state("S");
        b.on_entry(s, vec![Action::send("in")]);
        b.on_exit(s, vec![Action::send("out")]);
        b.add_transition(s, "again", s, vec![Action::send("mid")]);
        let m = b.build(s);
        let mut i = m.instance();
        assert_eq!(
            i.deliver_ref("again").unwrap(),
            [Action::send("out"), Action::send("mid"), Action::send("in")]
        );
    }

    #[test]
    fn flatten_matches_reference_on_the_connection_machine() {
        let m = connection();
        let flat = m.flatten();
        let compiled = CompiledMachine::compile(&flat);
        let mut reference = m.instance();
        let mut interp = FsmInstance::new(&flat);
        let mut fast = compiled.instance();
        let trace = [
            "resume", "work", "drop", "open", "work", "drop", "resume", "work", "kill", "open",
        ];
        for msg in trace {
            let want = reference.deliver_ref(msg).unwrap().to_vec();
            assert_eq!(
                interp.deliver_ref(msg).unwrap(),
                want.as_slice(),
                "at {msg}"
            );
            assert_eq!(fast.deliver_ref(msg).unwrap(), want.as_slice(), "at {msg}");
            assert_eq!(reference.state_name(), interp.state_name(), "at {msg}");
            assert_eq!(interp.state_name(), fast.state_name(), "at {msg}");
            assert_eq!(reference.is_finished(), fast.is_finished(), "at {msg}");
        }
        assert_eq!(reference.steps(), interp.steps());
    }

    #[test]
    fn flatten_prunes_unreachable_memories() {
        let m = connection();
        let flat = m.flatten();
        // Configurations: Idle×{A,B}, Up.A×{A,B}, Up.B×{A,B}, Down×{A,B};
        // (Up.A, mem=B) is reachable via resume-then-work from mem=B, and
        // Down merges per-memory. All 8 are reachable here.
        assert_eq!(flat.state_count(), 8);
        assert!(flat.state_by_name("Idle").is_some());
        assert!(flat.state_by_name("Idle~Up=B").is_some());
        assert!(flat.state_by_name("Up.B~Up=B").is_some());
    }

    #[test]
    fn start_entry_actions_are_reported_not_emitted() {
        let m = connection();
        assert!(m.start_entry_actions().is_empty()); // Idle has no entry actions
        let mut b = HsmBuilder::new("m", ["x"]);
        let top = b.add_state("Top");
        let inner = b.add_child(top, "Inner");
        b.on_entry(top, vec![Action::send("t")]);
        b.on_entry(inner, vec![Action::send("i")]);
        let m = b.build(top);
        assert_eq!(
            m.start_entry_actions(),
            [Action::send("t"), Action::send("i")]
        );
        assert_eq!(m.start_leaf(), inner);
    }

    #[test]
    fn builder_validation() {
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        assert_eq!(
            b.try_add_transition(s, "zap", s, vec![]),
            Err(HsmError::UnknownMessage("zap".into()))
        );
        assert_eq!(
            b.try_add_transition(s, "x", HsmStateId(9), vec![]),
            Err(HsmError::StateOutOfRange {
                index: 9,
                states: 1
            })
        );
        b.add_transition(s, "x", s, vec![]);
        assert_eq!(
            b.try_add_transition(s, "x", s, vec![]),
            Err(HsmError::DuplicateTransition {
                state: "S".into(),
                message: "x".into()
            })
        );
        // History transition to a plain leaf is rejected at build time.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        let t = b.add_state("T");
        b.add_history_transition(s, "x", t, vec![]);
        assert_eq!(
            b.try_build(s),
            Err(HsmError::InvalidHistoryTarget("T".into()))
        );
        // History on a leaf.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        b.enable_history(s);
        assert_eq!(b.try_build(s), Err(HsmError::HistoryOnLeaf("S".into())));
        // Final composite.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        b.add_child(s, "C");
        b.mark_final(s);
        assert_eq!(b.try_build(s), Err(HsmError::FinalNotLeaf("S".into())));
        // Initial not a child.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        b.add_child(s, "C");
        let other = b.add_state("Other");
        b.set_initial(s, other);
        assert_eq!(
            b.try_build(s),
            Err(HsmError::InitialNotChild {
                composite: "S".into(),
                initial: "Other".into()
            })
        );
        // Reserved separator in a name.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("A.B");
        assert_eq!(
            b.try_build(s),
            Err(HsmError::InvalidStateName("A.B".into()))
        );
        // Duplicate sibling name.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        b.add_child(s, "C");
        b.add_child(s, "C");
        assert_eq!(
            b.try_build(s),
            Err(HsmError::DuplicateSiblingName("C".into()))
        );
    }

    #[test]
    fn accessors_expose_the_tree() {
        let m = connection();
        assert_eq!(m.name(), "conn");
        assert_eq!(m.state_count(), 5);
        assert_eq!(m.composite_count(), 1);
        assert_eq!(m.history_count(), 1);
        assert_eq!(m.transition_count(), 5);
        let up = m
            .states_with_ids()
            .find(|(_, s)| s.name() == "Up")
            .unwrap()
            .0;
        let state = m.state(up);
        assert!(!state.is_leaf());
        assert!(state.has_history());
        assert_eq!(state.children().len(), 2);
        assert_eq!(state.initial(), Some(state.children()[0]));
        assert_eq!(m.path_name(state.children()[1]), "Up.B");
        assert_eq!(state.entry_actions(), [Action::send("up_in")]);
        assert_eq!(state.exit_actions(), [Action::send("up_out")]);
        assert_eq!(m.top_level().count(), 3);
        let (mid, t) = state.transitions().next().unwrap();
        assert_eq!(m.messages()[mid.index()], "drop");
        assert!(matches!(t.target(), HsmTarget::State(_)));
        assert_eq!(t.actions(), [Action::send("fin")]);
        assert_eq!(m.message_id("open").map(MessageId::index), Some(0));
    }

    #[test]
    fn cousin_history_composites_with_equal_names_stay_distinct() {
        // Two composites both named `W` (legal: not siblings), both with
        // history. Decorations key on the full path, so configurations
        // differing only in which `W`'s memory moved get distinct names
        // — and the flat machine has no duplicate state names.
        let mut b = HsmBuilder::new("cousins", ["go", "swap", "park", "back"]);
        let a = b.add_state("A");
        let aw = b.add_child(a, "W");
        let ap = b.add_child(aw, "p");
        let aq = b.add_child(aw, "q");
        let bb = b.add_state("B");
        let bw = b.add_child(bb, "W");
        let bp = b.add_child(bw, "p");
        let bq = b.add_child(bw, "q");
        b.enable_history(aw);
        b.enable_history(bw);
        let park = b.add_state("Park");
        b.add_transition(ap, "swap", aq, vec![]);
        b.add_transition(bp, "swap", bq, vec![]);
        b.add_transition(a, "go", bp, vec![]);
        b.add_transition(bb, "go", ap, vec![]);
        b.add_transition(a, "park", park, vec![]);
        b.add_transition(bb, "park", park, vec![]);
        b.add_history_transition(park, "back", aw, vec![]);
        let m = b.build(a);

        let mut i = m.instance();
        i.deliver_ref("swap").unwrap(); // A.W.q
        i.deliver_ref("park").unwrap(); // memory: A.W -> q
        assert_eq!(i.state_name(), "Park~A.W=q");
        i.reset();
        i.deliver_ref("go").unwrap(); // B.W.p (A.W memory stays p)
        i.deliver_ref("swap").unwrap(); // B.W.q
        i.deliver_ref("park").unwrap(); // memory: B.W -> q
        assert_eq!(i.state_name(), "Park~B.W=q");

        let flat = m.flatten();
        let mut names: Vec<&str> = flat.states().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "flattened state names must be unique");
        assert!(flat.state_by_name("Park~A.W=q").is_some());
        assert!(flat.state_by_name("Park~B.W=q").is_some());
    }

    #[test]
    fn reset_restores_initial_configuration() {
        let m = connection();
        let mut i = m.instance();
        i.deliver_ref("open").unwrap();
        i.deliver_ref("work").unwrap();
        i.deliver_ref("drop").unwrap();
        assert_eq!(i.state_name(), "Idle~Up=B");
        i.reset();
        assert_eq!(i.state_name(), "Idle");
        assert_eq!(i.steps(), 0);
        assert_eq!(i.memory(), m.initial_memory());
    }

    use crate::efsm::CmpOp;

    /// A guarded statechart: a worker with a retry budget. `fail` in
    /// `Busy` retries (back to `Busy`, incrementing `tries`) while below
    /// the budget, and escalates into the `Down` superstate once the
    /// budget is spent. The budget is an instance parameter.
    fn retrying() -> HierarchicalMachine {
        let mut b = HsmBuilder::new("retrying", ["go", "fail", "done", "reset"]);
        let budget = b.add_param("budget");
        let tries = b.add_var("tries");
        let idle = b.add_state("Idle");
        let up = b.add_state("Up");
        let busy = b.add_child(up, "Busy");
        let down = b.add_state("Down");
        let probe = b.add_child(down, "Probe");
        b.on_entry(up, vec![Action::send("up_in")]);
        b.on_exit(up, vec![Action::send("up_out")]);
        b.on_entry(busy, vec![Action::send("busy_in")]);
        b.on_entry(down, vec![Action::send("alarm")]);
        b.on_entry(probe, vec![Action::send("probe")]);
        b.add_transition(idle, "go", busy, vec![]);
        b.add_guarded_transition(
            busy,
            "fail",
            Guard::when(
                LinExpr::var(tries).plus_const(1),
                CmpOp::Lt,
                LinExpr::param(budget),
            ),
            vec![Update::Inc(tries)],
            busy,
            vec![Action::send("retry")],
        );
        b.add_guarded_transition(
            busy,
            "fail",
            Guard::when(
                LinExpr::var(tries).plus_const(1),
                CmpOp::Ge,
                LinExpr::param(budget),
            ),
            vec![Update::Inc(tries)],
            down,
            vec![Action::send("give_up")],
        );
        b.add_transition(busy, "done", idle, vec![]);
        b.add_transition(down, "reset", idle, vec![]);
        b.build(idle)
    }

    #[test]
    fn guarded_transitions_retry_then_escalate() {
        let m = retrying();
        assert!(m.is_guarded());
        assert_eq!(m.params(), ["budget"]);
        assert_eq!(m.variables(), ["tries"]);
        let mut i = m.instance_with(vec![2]);
        i.deliver_ref("go").unwrap();
        assert_eq!(i.state_name(), "Up.Busy");
        // First failure: below budget — external self-transition on Busy
        // exits and re-enters it.
        assert_eq!(
            i.deliver_ref("fail").unwrap(),
            [Action::send("retry"), Action::send("busy_in"),]
        );
        assert_eq!(i.vars(), &[1]);
        // Second failure: budget spent — escalate into the Down
        // superstate, exiting Up on the way.
        assert_eq!(
            i.deliver_ref("fail").unwrap(),
            [
                Action::send("up_out"),
                Action::send("give_up"),
                Action::send("alarm"),
                Action::send("probe"),
            ]
        );
        assert_eq!(i.state_name(), "Down.Probe");
        assert_eq!(i.vars(), &[2]);
    }

    #[test]
    fn guard_falls_through_to_inherited_transitions() {
        // The inner state declares a guarded transition that is disabled
        // at first; the enclosing composite's unconditional transition
        // handles the message until the guard opens.
        let mut b = HsmBuilder::new("fallthrough", ["tick"]);
        let n = b.add_var("n");
        let top = b.add_state("Top");
        let inner = b.add_child(top, "Inner");
        let fired = b.add_state("Fired");
        b.add_guarded_transition(
            inner,
            "tick",
            Guard::when(LinExpr::var(n), CmpOp::Ge, LinExpr::constant(1)),
            vec![],
            fired,
            vec![Action::send("inner_wins")],
        );
        b.add_guarded_internal_transition(
            top,
            "tick",
            Guard::always(),
            vec![Update::Inc(n)],
            vec![Action::send("outer_counts")],
        );
        let m = b.build(top);
        let mut i = m.instance();
        // n = 0: the inner guard fails, the inherited internal
        // transition fires and increments n.
        assert_eq!(
            i.deliver_ref("tick").unwrap(),
            [Action::send("outer_counts")]
        );
        assert_eq!(i.state_name(), "Top.Inner");
        // n = 1: the inner declaration now wins over the inherited one.
        assert_eq!(i.deliver_ref("tick").unwrap(), [Action::send("inner_wins")]);
        assert_eq!(i.state_name(), "Fired");
    }

    #[test]
    fn updates_read_pre_transition_values() {
        // swap-like: a := b, b := a + 10 across one transition — staged
        // semantics, matching the EFSM tiers.
        let mut b = HsmBuilder::new("swap", ["go"]);
        let x = b.add_var("x");
        let y = b.add_var("y");
        let s = b.add_state("S");
        b.add_guarded_transition(
            s,
            "go",
            Guard::always(),
            vec![
                Update::Set(x, LinExpr::var(y)),
                Update::Set(y, LinExpr::var(x).plus_const(10)),
            ],
            s,
            vec![],
        );
        let m = b.build(s);
        let mut i = m.instance();
        i.deliver_ref("go").unwrap();
        assert_eq!(i.vars(), &[0, 10]);
        i.deliver_ref("go").unwrap();
        assert_eq!(i.vars(), &[10, 10]);
        i.reset();
        assert_eq!(i.vars(), &[0, 0]);
    }

    #[test]
    fn guardedness_predicates_agree_after_flattening() {
        // The author-level predicate and the IR's routing predicate pin
        // the same tier choice for both worked machines.
        let guarded = retrying();
        assert!(guarded.is_guarded());
        assert!(guarded.flatten_ir().is_guarded());
        let plain = connection();
        assert!(!plain.is_guarded());
        assert!(!plain.flatten_ir().is_guarded());
    }

    #[test]
    fn guarded_flatten_ir_enumerates_candidates() {
        let m = retrying();
        let ir = m.flatten_ir();
        assert!(ir.is_guarded());
        assert_eq!(ir.params(), ["budget"]);
        // Configurations: Idle, Up.Busy, Down.Probe.
        assert_eq!(ir.state_count(), 3);
        let busy = ir
            .states()
            .iter()
            .find(|s| s.name() == "Up.Busy")
            .expect("flattened Busy configuration");
        // go is inapplicable; fail has two guarded candidates; done one.
        assert_eq!(busy.transitions().len(), 3);
        let fails: Vec<_> = busy
            .transitions()
            .iter()
            .filter(|t| t.message_index() == 1)
            .collect();
        assert_eq!(fails.len(), 2);
        assert!(fails.iter().all(|t| !t.guard().conditions().is_empty()));
        assert!(fails.iter().all(|t| t.updates().len() == 1));
    }

    #[test]
    fn guard_determinism_check() {
        let m = retrying();
        assert!(m.check_guard_determinism(&[3], 6).is_ok());
        // Overlapping guards on one (state, message) are caught.
        let mut b = HsmBuilder::new("overlap", ["m"]);
        let v = b.add_var("v");
        let s = b.add_state("S");
        let t = b.add_state("T");
        b.add_guarded_transition(
            s,
            "m",
            Guard::when(LinExpr::var(v), CmpOp::Ge, LinExpr::constant(0)),
            vec![],
            t,
            vec![],
        );
        b.add_guarded_transition(
            s,
            "m",
            Guard::when(LinExpr::var(v), CmpOp::Ge, LinExpr::constant(1)),
            vec![],
            s,
            vec![],
        );
        let m = b.build(s);
        let err = m.check_guard_determinism(&[], 2).unwrap_err();
        assert!(err.contains("both enabled"), "{err}");
    }

    #[test]
    fn guarded_builder_validation() {
        // Guards referencing undeclared operands are rejected.
        let mut b = HsmBuilder::new("m", ["x"]);
        let s = b.add_state("S");
        assert_eq!(
            b.try_add_guarded_transition(
                s,
                "x",
                Guard::when(LinExpr::var(VarId(3)), CmpOp::Ge, LinExpr::constant(0)),
                vec![],
                s,
                vec![],
            ),
            Err(HsmError::VariableOutOfRange {
                index: 3,
                variables: 0
            })
        );
        assert_eq!(
            b.try_add_guarded_transition(
                s,
                "x",
                Guard::when(LinExpr::param(ParamId(0)), CmpOp::Ge, LinExpr::constant(0)),
                vec![],
                s,
                vec![],
            ),
            Err(HsmError::ParamOutOfRange {
                index: 0,
                params: 0
            })
        );
        assert_eq!(
            b.try_add_guarded_transition(
                s,
                "x",
                Guard::always(),
                vec![Update::Inc(VarId(0))],
                s,
                vec![],
            ),
            Err(HsmError::VariableOutOfRange {
                index: 0,
                variables: 0
            })
        );
        // A transition after an unconditional one can never fire.
        let mut b = HsmBuilder::new("m", ["x"]);
        let v = b.add_var("v");
        let s = b.add_state("S");
        b.add_transition(s, "x", s, vec![]);
        assert_eq!(
            b.try_add_guarded_transition(
                s,
                "x",
                Guard::when(LinExpr::var(v), CmpOp::Ge, LinExpr::constant(1)),
                vec![],
                s,
                vec![],
            ),
            Err(HsmError::ShadowedTransition {
                state: "S".into(),
                message: "x".into()
            })
        );
    }

    #[test]
    #[should_panic(expected = "no flat StateMachine projection")]
    fn guarded_flatten_panics() {
        retrying().flatten();
    }

    #[test]
    #[should_panic(expected = "wrong parameter count")]
    fn instance_requires_parameter_binding() {
        retrying().instance();
    }
}
