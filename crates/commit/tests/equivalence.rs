//! Cross-implementation equivalence (paper §3.2's spectrum):
//!
//! * the generated FSM (interpreted) — many states, no variables;
//! * the hand-written reference algorithm — one state, many variables;
//! * the EFSM — few states, counter variables;
//!
//! must all emit identical action traces and agree on completion for any
//! message sequence, for every family member. This is the property that
//! makes the generative approach trustworthy: the generated artefacts
//! really implement the algorithm.

use std::sync::OnceLock;

use proptest::prelude::*;

use stategen_commit::{
    commit_efsm, commit_efsm_instance, CommitConfig, CommitModel, ReferenceCommit, MESSAGE_NAMES,
};
use stategen_core::{generate, Efsm, FsmInstance, ProtocolEngine, StateMachine};

fn machine(r: u32) -> &'static StateMachine {
    static MACHINES: OnceLock<Vec<(u32, StateMachine)>> = OnceLock::new();
    let machines = MACHINES.get_or_init(|| {
        [4u32, 7, 13]
            .iter()
            .map(|&r| {
                let model = CommitModel::new(CommitConfig::new(r).unwrap());
                (r, generate(&model).unwrap().machine)
            })
            .collect()
    });
    &machines.iter().find(|(mr, _)| *mr == r).expect("prebuilt r").1
}

fn efsm() -> &'static Efsm {
    static EFSM: OnceLock<Efsm> = OnceLock::new();
    EFSM.get_or_init(commit_efsm)
}

/// Drives all three engines with the same messages, checking actions and
/// completion agree after every delivery.
fn check_equivalence(r: u32, messages: &[usize]) {
    let config = CommitConfig::new(r).unwrap();
    let mut fsm = FsmInstance::new(machine(r));
    let mut reference = ReferenceCommit::new(config);
    let mut efsm_i = commit_efsm_instance(efsm(), &config);
    for (step, &mi) in messages.iter().enumerate() {
        let name = MESSAGE_NAMES[mi % MESSAGE_NAMES.len()];
        let a_fsm = fsm.deliver(name).unwrap();
        let a_ref = reference.deliver(name).unwrap();
        let a_efsm = efsm_i.deliver(name).unwrap();
        assert_eq!(
            a_fsm, a_ref,
            "r={r} step {step} ({name}): FSM {a_fsm:?} vs reference {a_ref:?} \
             (fsm state {}, ref state {})",
            fsm.state_name(),
            reference.state_name()
        );
        assert_eq!(
            a_fsm, a_efsm,
            "r={r} step {step} ({name}): FSM {a_fsm:?} vs EFSM {a_efsm:?} \
             (fsm state {}, efsm state {})",
            fsm.state_name(),
            efsm_i.state_name()
        );
        assert_eq!(fsm.is_finished(), reference.is_finished(), "r={r} step {step} ({name})");
        assert_eq!(fsm.is_finished(), efsm_i.is_finished(), "r={r} step {step} ({name})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn trace_equivalence_r4(messages in prop::collection::vec(0usize..5, 0..80)) {
        check_equivalence(4, &messages);
    }

    #[test]
    fn trace_equivalence_r7(messages in prop::collection::vec(0usize..5, 0..120)) {
        check_equivalence(7, &messages);
    }

    #[test]
    fn trace_equivalence_r13(messages in prop::collection::vec(0usize..5, 0..200)) {
        check_equivalence(13, &messages);
    }
}

/// Exhaustive equivalence over all short message sequences for r = 4:
/// every sequence of up to 6 messages (5^6 = 15625 sequences).
#[test]
fn exhaustive_short_traces_r4() {
    let mut sequence = Vec::new();
    fn recurse(sequence: &mut Vec<usize>, depth: usize) {
        check_equivalence(4, sequence);
        if depth == 0 {
            return;
        }
        for m in 0..5 {
            sequence.push(m);
            recurse(sequence, depth - 1);
            sequence.pop();
        }
    }
    recurse(&mut sequence, 6);
}

/// A canonical happy-path trace: update, two votes, two commits.
#[test]
fn canonical_commit_trace() {
    let config = CommitConfig::new(4).unwrap();
    let mut fsm = FsmInstance::new(machine(4));
    let mut reference = ReferenceCommit::new(config);
    for name in ["update", "vote", "vote", "commit", "commit"] {
        let a = fsm.deliver(name).unwrap();
        let b = reference.deliver(name).unwrap();
        assert_eq!(a, b);
    }
    assert!(fsm.is_finished());
    assert!(reference.is_finished());
}
