//! Batched execution of many protocol instances over one compiled
//! machine.
//!
//! A deployed protocol node does not run *one* state machine — it runs
//! one instance per in-flight protocol execution (the paper's ASA peers
//! hold an FSM instance per commit attempt, §2.2). Scaling that to
//! "millions of users" means the per-instance representation must be
//! tiny and stepping must not allocate. [`SessionPool`] stores sessions
//! as a struct-of-arrays over a shared [`CompiledMachine`]:
//!
//! * `current` — one dense `u32` state id per session;
//! * a finished bitset (one bit per session), maintained incrementally;
//!
//! so a pool of a million sessions is ~4 MB of state, stepping a session
//! is two indexed loads and a store, and delivering a message to every
//! live session walks a contiguous array. No session operation allocates.
//!
//! # Examples
//!
//! ```
//! use stategen_core::{Action, CompiledMachine, SessionPool, StateMachineBuilder};
//!
//! let mut b = StateMachineBuilder::new("ping", ["ping"]);
//! let idle = b.add_state("idle");
//! let done = b.add_state_full("done", None, stategen_core::StateRole::Finish, vec![]);
//! b.add_transition(idle, "ping", done, vec![Action::send("pong")]);
//! let machine = b.build(idle);
//! let compiled = CompiledMachine::compile(&machine);
//!
//! let mut pool = SessionPool::new(&compiled, 3);
//! let ping = compiled.message_id("ping").unwrap();
//! assert_eq!(pool.deliver(1, ping), [Action::send("pong")]);
//! assert_eq!(pool.finished_count(), 1);
//! pool.deliver_all(ping); // steps the remaining live sessions
//! assert!(pool.all_finished());
//! ```

use crate::compiled::CompiledMachine;
use crate::machine::{Action, MessageId};

/// A pool of concurrent protocol sessions executing one
/// [`CompiledMachine`], stored struct-of-arrays and stepped without
/// per-event allocation.
#[derive(Debug, Clone)]
pub struct SessionPool<'m> {
    machine: &'m CompiledMachine,
    current: Vec<u32>,
    finished: Vec<u64>,
    finished_count: usize,
    steps: u64,
}

impl<'m> SessionPool<'m> {
    /// Creates a pool of `count` sessions, all at the start state.
    pub fn new(machine: &'m CompiledMachine, count: usize) -> Self {
        let mut pool = SessionPool {
            machine,
            current: Vec::with_capacity(count),
            finished: vec![0; count.div_ceil(64)],
            finished_count: 0,
            steps: 0,
        };
        for _ in 0..count {
            pool.spawn();
        }
        pool
    }

    /// The machine all sessions execute.
    pub fn machine(&self) -> &'m CompiledMachine {
        self.machine
    }

    /// Number of sessions in the pool.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// `true` if the pool holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Adds a session at the start state; returns its index.
    ///
    /// Amortised O(1); this is the only pool operation that may allocate
    /// (growing the session arrays, never per-event).
    pub fn spawn(&mut self) -> usize {
        let session = self.current.len();
        let start = self.machine.start();
        self.current.push(start);
        if self.finished.len() * 64 < self.current.len() {
            self.finished.push(0);
        }
        if self.machine.is_finish_state(start) {
            self.set_finished(session);
        }
        session
    }

    /// The dense state id of a session.
    ///
    /// # Panics
    ///
    /// Panics if `session` is out of range.
    pub fn state(&self, session: usize) -> u32 {
        self.current[session]
    }

    /// Display name of a session's state, borrowed from the machine.
    ///
    /// # Panics
    ///
    /// Panics if `session` is out of range.
    pub fn state_name(&self, session: usize) -> &'m str {
        self.machine.state_name(self.current[session])
    }

    /// `true` once a session has reached a finish state.
    ///
    /// # Panics
    ///
    /// Panics if `session` is out of range.
    pub fn is_finished(&self, session: usize) -> bool {
        assert!(session < self.current.len(), "session out of range");
        self.finished[session / 64] & (1 << (session % 64)) != 0
    }

    /// Number of finished sessions (maintained incrementally; O(1)).
    pub fn finished_count(&self) -> usize {
        self.finished_count
    }

    /// `true` once every session has finished.
    pub fn all_finished(&self) -> bool {
        self.finished_count == self.current.len()
    }

    /// Total transitions taken across all sessions.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    #[inline]
    fn set_finished(&mut self, session: usize) {
        let word = session / 64;
        let bit = 1u64 << (session % 64);
        if self.finished[word] & bit == 0 {
            self.finished[word] |= bit;
            self.finished_count += 1;
        }
    }

    /// Delivers a message to one session; returns the triggered actions,
    /// borrowed from the machine's interned arena. Finished sessions
    /// absorb every message. No allocation occurs on this path.
    ///
    /// `message` must come from this pool's machine (see
    /// [`CompiledMachine::step`] for the exact contract).
    ///
    /// # Panics
    ///
    /// Panics if `session` is out of range.
    #[inline]
    pub fn deliver(&mut self, session: usize, message: MessageId) -> &'m [Action] {
        let machine = self.machine;
        match machine.step(self.current[session], message) {
            Some((target, actions)) => {
                self.current[session] = target;
                self.steps += 1;
                if machine.is_finish_state(target) {
                    self.set_finished(session);
                }
                actions
            }
            None => &[],
        }
    }

    /// Delivers a message to every session, discarding actions; returns
    /// the number of transitions taken. This is the batch hot loop: a
    /// linear walk over the contiguous state array with no allocation.
    pub fn deliver_all(&mut self, message: MessageId) -> u64 {
        self.deliver_all_with(message, |_, _| {})
    }

    /// Delivers a message to every session, invoking `visit(session,
    /// actions)` for each delivery that triggered a non-empty action
    /// list; returns the number of transitions taken.
    pub fn deliver_all_with<F>(&mut self, message: MessageId, mut visit: F) -> u64
    where
        F: FnMut(usize, &'m [Action]),
    {
        let machine = self.machine;
        let mut transitions = 0;
        for session in 0..self.current.len() {
            if let Some((target, actions)) = machine.step(self.current[session], message) {
                self.current[session] = target;
                transitions += 1;
                if machine.is_finish_state(target) {
                    self.set_finished(session);
                }
                if !actions.is_empty() {
                    visit(session, actions);
                }
            }
        }
        self.steps += transitions;
        transitions
    }

    /// Returns every session to the start state.
    pub fn reset_all(&mut self) {
        let start = self.machine.start();
        self.current.fill(start);
        self.finished.fill(0);
        self.finished_count = 0;
        self.steps = 0;
        if self.machine.is_finish_state(start) {
            for session in 0..self.current.len() {
                self.set_finished(session);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{StateMachine, StateMachineBuilder, StateRole};

    fn finishing_machine() -> StateMachine {
        let mut b = StateMachineBuilder::new("m", ["a", "b"]);
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let fin = b.add_state_full("FINISHED", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", s1, vec![Action::send("x")]);
        b.add_transition(s1, "a", fin, vec![]);
        b.build(s0)
    }

    #[test]
    fn pool_steps_sessions_independently() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let a = compiled.message_id("a").unwrap();
        let mut pool = SessionPool::new(&compiled, 3);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.deliver(0, a), [Action::send("x")]);
        assert_eq!(pool.state_name(0), "s1");
        assert_eq!(pool.state_name(1), "s0");
        pool.deliver(0, a);
        assert!(pool.is_finished(0));
        assert!(!pool.is_finished(1));
        assert_eq!(pool.finished_count(), 1);
        assert_eq!(pool.steps(), 2);
    }

    #[test]
    fn deliver_all_walks_every_live_session() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let a = compiled.message_id("a").unwrap();
        let b = compiled.message_id("b").unwrap();
        let mut pool = SessionPool::new(&compiled, 100);
        assert_eq!(pool.deliver_all(b), 0); // `b` applicable nowhere
        assert_eq!(pool.deliver_all(a), 100);
        assert_eq!(pool.finished_count(), 0);
        assert_eq!(pool.deliver_all(a), 100);
        assert!(pool.all_finished());
        // Finished sessions absorb further messages.
        assert_eq!(pool.deliver_all(a), 0);
        assert_eq!(pool.steps(), 200);
    }

    #[test]
    fn deliver_all_with_visits_phase_transitions() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let a = compiled.message_id("a").unwrap();
        let mut pool = SessionPool::new(&compiled, 5);
        let mut seen = Vec::new();
        pool.deliver_all_with(a, |session, actions| {
            seen.push((session, actions.len()));
        });
        assert_eq!(seen, (0..5).map(|s| (s, 1)).collect::<Vec<_>>());
        // Second hop is a simple transition: no visits.
        let mut visits = 0;
        pool.deliver_all_with(a, |_, _| visits += 1);
        assert_eq!(visits, 0);
    }

    #[test]
    fn spawn_grows_pool_and_reset_restores() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let a = compiled.message_id("a").unwrap();
        let mut pool = SessionPool::new(&compiled, 0);
        assert!(pool.is_empty());
        for _ in 0..70 {
            pool.spawn(); // crosses a bitset word boundary
        }
        assert_eq!(pool.len(), 70);
        pool.deliver_all(a);
        pool.deliver_all(a);
        assert!(pool.all_finished());
        pool.reset_all();
        assert_eq!(pool.finished_count(), 0);
        assert_eq!(pool.state_name(69), "s0");
        assert_eq!(pool.steps(), 0);
    }

    #[test]
    fn matches_single_instance_semantics() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let mut pool = SessionPool::new(&compiled, 1);
        let mut single = compiled.instance();
        for name in ["b", "a", "b", "a", "a"] {
            let id = compiled.message_id(name).unwrap();
            let from_pool = pool.deliver(0, id);
            let from_single = single.deliver_id(id);
            assert_eq!(from_pool, from_single);
            assert_eq!(pool.state(0), single.current_state());
        }
        assert!(pool.is_finished(0));
    }
}
