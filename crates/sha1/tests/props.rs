//! Property-based tests: incremental hashing is chunking-invariant and
//! hex encoding round-trips.

use proptest::prelude::*;

use asa_sha1::{Digest, Sha1};

proptest! {
    #[test]
    fn chunking_invariant(data in prop::collection::vec(any::<u8>(), 0..2048),
                          cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..8)) {
        let oneshot = Sha1::digest(&data);
        let mut boundaries: Vec<usize> = cuts.iter().map(|c| c.index(data.len() + 1)).collect();
        boundaries.push(0);
        boundaries.push(data.len());
        boundaries.sort_unstable();
        boundaries.dedup();
        let mut h = Sha1::new();
        for w in boundaries.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn hex_roundtrip(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let d = Sha1::digest(&data);
        let hex = d.to_hex();
        prop_assert_eq!(hex.len(), 40);
        prop_assert_eq!(Digest::from_hex(&hex), Some(d));
    }

    #[test]
    fn deterministic(data in prop::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(Sha1::digest(&data), Sha1::digest(&data));
    }
}
