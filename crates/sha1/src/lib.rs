//! # asa-sha1
//!
//! SHA-1 (RFC 3174, paper reference 8) implemented from scratch. The ASA
//! storage layer uses it to derive PIDs: "the service endpoint calculates
//! a unique PID for the data using a secure hashing algorithm (SHA1)"
//! (paper §2.1), and to verify retrieved blocks against their PID.
//!
//! SHA-1 is used here exactly as the paper used it in 2007 — as a
//! content-addressing function inside a research storage system — not as
//! a collision-resistant primitive for new security designs.
//!
//! ```
//! use asa_sha1::Sha1;
//!
//! let digest = Sha1::digest(b"abc");
//! assert_eq!(digest.to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A 160-bit SHA-1 digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 20]);

impl Digest {
    /// Renders the digest as 40 lowercase hex digits.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble < 16"));
            s.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble < 16"));
        }
        s
    }

    /// Parses a digest from 40 hex digits.
    ///
    /// Returns `None` when the input is not exactly 40 hex digits.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 40 || !s.is_ascii() {
            return None;
        }
        let bytes = s.as_bytes();
        let mut out = [0u8; 20];
        for (i, slot) in out.iter_mut().enumerate() {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            *slot = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// The first 8 bytes as a big-endian integer — convenient for placing
    /// digests on a 64-bit ring (the Chord key space).
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("slice of 8"))
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental SHA-1 hasher.
///
/// Create with [`Sha1::new`], feed with [`Sha1::update`], finish with
/// [`Sha1::finalize`]; or use the one-shot [`Sha1::digest`].
#[derive(Debug, Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Bytes processed so far (for the length padding).
    length: u64,
    buffer: [u8; 64],
    buffered: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the RFC 3174 initial state.
    pub fn new() -> Self {
        Sha1 {
            h: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            length: 0,
            buffer: [0u8; 64],
            buffered: 0,
        }
    }

    /// One-shot convenience: hashes `data` in a single call.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.process_block(block.try_into().expect("exactly 64 bytes"));
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Applies the RFC 3174 padding and produces the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_length = self.length.wrapping_mul(8);
        // Padding: a single 0x80 byte, zeros, then the 64-bit bit length.
        self.update_padding(&[0x80]);
        while self.buffered != 56 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_length.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// `update` without counting the bytes towards the message length
    /// (used for padding).
    fn update_padding(&mut self, data: &[u8]) {
        for &byte in data {
            self.buffer[self.buffered] = byte;
            self.buffered += 1;
            if self.buffered == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffered = 0;
            }
        }
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(wt)
                .wrapping_add(k);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 3174 test vectors (section 7.3) plus standard extras.
    #[test]
    fn rfc3174_vectors() {
        let cases: [(&[u8], &str); 4] = [
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(Sha1::digest(input).to_hex(), expected);
        }
    }

    #[test]
    fn million_a() {
        // RFC 3174: one million repetitions of 'a'.
        let mut h = Sha1::new();
        for _ in 0..10_000 {
            h.update(&[b'a'; 100]);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 100] {
            let mut h = Sha1::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), Sha1::digest(&data), "chunk size {chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Padding edge cases around the 55/56/64-byte boundaries.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xA5u8; len];
            let mut h = Sha1::new();
            h.update(&data);
            let inc = h.finalize();
            assert_eq!(inc, Sha1::digest(&data), "length {len}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let d = Sha1::digest(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("short"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(40)), None);
    }

    #[test]
    fn display_is_hex() {
        let d = Sha1::digest(b"abc");
        assert_eq!(format!("{d}"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let d = Digest([
            0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ]);
        assert_eq!(d.prefix_u64(), 0x0102030405060708);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Smoke check, not a security claim.
        let a = Sha1::digest(b"block-a");
        let b = Sha1::digest(b"block-b");
        assert_ne!(a, b);
    }
}
