//! Interval abstract interpretation over the EFSM guard language.
//!
//! The semantic analyzer (the `stategen-analysis` crate), the flattener's
//! guard-aware reachability pruning
//! ([`HierarchicalMachine::flatten_ir`](crate::HierarchicalMachine::flatten_ir))
//! and the statechart determinism checker
//! ([`HierarchicalMachine::check_guard_determinism`](crate::HierarchicalMachine::check_guard_determinism))
//! all reason about the same question: *which values can a
//! [`LinExpr`] take, and can a [`Guard`] hold?* This module answers it
//! with the classic interval domain:
//!
//! * an [`Interval`] is a non-empty range `[lo, hi]` of `i64` values,
//!   with `i64::MIN`/`i64::MAX` doubling as −∞/+∞ sentinels;
//! * [`eval_lin`] evaluates a linear expression over interval-valued
//!   variables and parameters (arithmetic saturates *toward the
//!   sentinels*, so losing precision always widens — the over-approximation
//!   direction that keeps the analysis sound);
//! * [`cond_status`] / [`guard_status`] decide a condition or guard
//!   three-valued: definitely [`CondStatus::True`], definitely
//!   [`CondStatus::False`], or [`CondStatus::Unknown`];
//! * [`guard_unsat`] proves a guard unsatisfiable *for every* variable
//!   and parameter assignment, by normalizing each condition to a
//!   canonical difference expression (`lhs − rhs`, terms combined and
//!   sorted) and intersecting the admissible ranges of conditions that
//!   constrain the same difference — this is what catches the
//!   complementary pair `v + 1 < b` ∧ `v + 1 ≥ b` without knowing
//!   anything about `v` or `b`;
//! * [`guards_disjoint`] proves two guards can never hold at once, by
//!   the same canonical-difference reasoning — the sound fast path that
//!   replaces bounded enumeration in the determinism checker.
//!
//! Everything here over-approximates: `True`/`False`/unsat/disjoint
//! answers are proofs (over mathematical integers — see the soundness
//! note in `docs/ANALYSIS.md` for how `i64` overflow is handled by the
//! `possible-overflow` lint), while `Unknown` merely means "not proved
//! either way".

use crate::efsm::{CmpOp, Cond, Guard, LinExpr, Operand};

/// A non-empty range of `i64` values. `lo == i64::MIN` means unbounded
/// below, `hi == i64::MAX` unbounded above; [`Interval::TOP`] is both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound (`i64::MIN` = −∞).
    pub lo: i64,
    /// Inclusive upper bound (`i64::MAX` = +∞).
    pub hi: i64,
}

/// Adds two lower bounds, saturating toward −∞ (a −∞ operand is
/// absorbing; finite overflow saturates, which only ever widens).
fn add_lo(a: i64, b: i64) -> i64 {
    if a == i64::MIN || b == i64::MIN {
        i64::MIN
    } else {
        a.saturating_add(b)
    }
}

/// Adds two upper bounds, saturating toward +∞.
fn add_hi(a: i64, b: i64) -> i64 {
    if a == i64::MAX || b == i64::MAX {
        i64::MAX
    } else {
        a.saturating_add(b)
    }
}

/// Multiplies a bound by a non-zero finite coefficient, mapping the
/// infinity sentinels through the sign of the coefficient.
fn mul_bound(b: i64, k: i64) -> i64 {
    if b == i64::MIN {
        return if k > 0 { i64::MIN } else { i64::MAX };
    }
    if b == i64::MAX {
        return if k > 0 { i64::MAX } else { i64::MIN };
    }
    b.saturating_mul(k)
}

impl Interval {
    /// The full range: every `i64` value (and, abstractly, "unbounded").
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The single value `v`.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` (the domain has no empty interval; emptiness
    /// is `Option::None` at the use sites).
    pub fn range(lo: i64, hi: i64) -> Interval {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// `true` if `v` lies in the range.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` if the range is the full domain.
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// Least upper bound: the smallest interval containing both.
    #[must_use]
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Standard interval widening: any bound that moved since `self`
    /// jumps straight to its infinity, guaranteeing fixpoint
    /// termination on loops that grow a variable every iteration.
    #[must_use]
    pub fn widen(self, newer: Interval) -> Interval {
        Interval {
            lo: if newer.lo < self.lo {
                i64::MIN
            } else {
                self.lo
            },
            hi: if newer.hi > self.hi {
                i64::MAX
            } else {
                self.hi
            },
        }
    }

    /// Intersection; `None` when the ranges do not overlap.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Multiplication by a constant coefficient (negative coefficients
    /// swap the bounds).
    #[must_use]
    pub fn scale(self, k: i64) -> Interval {
        if k == 0 {
            return Interval::point(0);
        }
        if k > 0 {
            Interval {
                lo: mul_bound(self.lo, k),
                hi: mul_bound(self.hi, k),
            }
        } else {
            Interval {
                lo: mul_bound(self.hi, k),
                hi: mul_bound(self.lo, k),
            }
        }
    }
}

/// Interval addition (sound under the saturating-toward-infinity
/// convention).
impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: add_lo(self.lo, other.lo),
            hi: add_hi(self.hi, other.hi),
        }
    }
}

/// Evaluates a linear expression over interval-valued variables and
/// parameters. Operands outside the supplied slices evaluate to
/// [`Interval::TOP`] (unknown), which keeps the evaluation sound on
/// partially-described environments.
pub fn eval_lin(expr: &LinExpr, vars: &[Interval], params: &[Interval]) -> Interval {
    let mut acc = Interval::point(expr.constant_part());
    for &(coeff, operand) in expr.terms() {
        let v = match operand {
            Operand::Var(v) => vars.get(v.index()).copied().unwrap_or(Interval::TOP),
            Operand::Param(p) => params.get(p.index()).copied().unwrap_or(Interval::TOP),
        };
        acc = acc + v.scale(coeff);
    }
    acc
}

/// Three-valued truth of a condition or guard under an abstract
/// environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondStatus {
    /// Holds for every concrete assignment in the environment.
    True,
    /// Holds for no concrete assignment in the environment.
    False,
    /// Not proved either way.
    Unknown,
}

/// Decides `lhs op rhs` three-valued by evaluating the difference
/// `lhs − rhs` over the environment.
pub fn cond_status(cond: &Cond, vars: &[Interval], params: &[Interval]) -> CondStatus {
    let l = eval_lin(&cond.lhs, vars, params);
    let r = eval_lin(&cond.rhs, vars, params);
    let d = l + r.scale(-1);
    match cond.op {
        CmpOp::Lt => decide(d.hi < 0, d.lo >= 0),
        CmpOp::Le => decide(d.hi <= 0, d.lo > 0),
        CmpOp::Eq => decide(d.lo == 0 && d.hi == 0, !d.contains(0)),
        CmpOp::Ne => decide(!d.contains(0), d.lo == 0 && d.hi == 0),
        CmpOp::Ge => decide(d.lo >= 0, d.hi < 0),
        CmpOp::Gt => decide(d.lo > 0, d.hi <= 0),
    }
}

fn decide(proved: bool, refuted: bool) -> CondStatus {
    if proved {
        CondStatus::True
    } else if refuted {
        CondStatus::False
    } else {
        CondStatus::Unknown
    }
}

/// Decides a whole guard (a conjunction): `False` as soon as any
/// condition is refuted, `True` when every condition is proved,
/// `Unknown` otherwise. The empty guard is `True`.
pub fn guard_status(guard: &Guard, vars: &[Interval], params: &[Interval]) -> CondStatus {
    let mut all_true = true;
    for cond in guard.conditions() {
        match cond_status(cond, vars, params) {
            CondStatus::False => return CondStatus::False,
            CondStatus::Unknown => all_true = false,
            CondStatus::True => {}
        }
    }
    if all_true {
        CondStatus::True
    } else {
        CondStatus::Unknown
    }
}

/// A canonical operand key: `(kind, index)` with variables before
/// parameters, so term lists sort deterministically.
type OpKey = (u8, usize);

fn op_key(op: Operand) -> OpKey {
    match op {
        Operand::Var(v) => (0, v.index()),
        Operand::Param(p) => (1, p.index()),
    }
}

/// The canonical non-constant part of `lhs − rhs`: combined, sorted,
/// zero-coefficient-free `(coefficient, operand)` terms. Two conditions
/// with equal [`TermKey`]s constrain the *same* mathematical quantity.
pub type TermKey = Vec<(i64, OpKey)>;

/// The admissible range (over mathematical integers, hence `i128`
/// bounds with `i128::MIN`/`MAX` as the infinities) for a canonical
/// term sum, plus the points an `!=` condition excludes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermRange {
    /// Inclusive lower bound (`i128::MIN` = −∞).
    pub lo: i128,
    /// Inclusive upper bound (`i128::MAX` = +∞).
    pub hi: i128,
    /// Values excluded by `!=` conditions on the same term sum.
    pub excluded: Vec<i128>,
}

impl TermRange {
    fn top() -> TermRange {
        TermRange {
            lo: i128::MIN,
            hi: i128::MAX,
            excluded: Vec::new(),
        }
    }

    /// `true` when no integer satisfies the range (empty interval, or a
    /// single admissible point that an exclusion removes).
    pub fn is_empty(&self) -> bool {
        if self.lo > self.hi {
            return true;
        }
        // A fully-excluded finite range only matters in practice for
        // the single-point case (`==` meeting `!=`); wider ranges with
        // scattered exclusions stay satisfiable.
        self.lo == self.hi && self.excluded.contains(&self.lo)
    }

    fn constrain(&mut self, op: CmpOp, bound: i128) {
        match op {
            CmpOp::Lt => self.hi = self.hi.min(bound - 1),
            CmpOp::Le => self.hi = self.hi.min(bound),
            CmpOp::Eq => {
                self.lo = self.lo.max(bound);
                self.hi = self.hi.min(bound);
            }
            CmpOp::Ne => self.excluded.push(bound),
            CmpOp::Ge => self.lo = self.lo.max(bound),
            CmpOp::Gt => self.lo = self.lo.max(bound + 1),
        }
    }

    /// Intersection of two admissible ranges.
    #[must_use]
    pub fn meet(&self, other: &TermRange) -> TermRange {
        let mut excluded = self.excluded.clone();
        excluded.extend_from_slice(&other.excluded);
        TermRange {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
            excluded,
        }
    }
}

/// Normalizes `lhs op rhs` to `terms op −constant`: the canonical term
/// key of `lhs − rhs` and the `i128` bound its constant part moves to
/// the other side.
fn canon_cond(cond: &Cond) -> (TermKey, CmpOp, i128) {
    let mut terms: Vec<(i64, OpKey)> = Vec::new();
    let constant = i128::from(cond.lhs.constant_part()) - i128::from(cond.rhs.constant_part());
    let mut absorb = |expr: &LinExpr, sign: i64| {
        for &(coeff, op) in expr.terms() {
            let key = op_key(op);
            match terms.iter_mut().find(|(_, k)| *k == key) {
                Some((c, _)) => *c = c.saturating_add(coeff.saturating_mul(sign)),
                None => terms.push((coeff.saturating_mul(sign), key)),
            }
        }
    };
    absorb(&cond.lhs, 1);
    absorb(&cond.rhs, -1);
    terms.retain(|&(c, _)| c != 0);
    terms.sort_unstable_by_key(|&(_, k)| k);
    // Constant-only conditions fold the constant into the bound too; for
    // term-carrying conditions the admissible range is for the term sum,
    // i.e. `terms op −constant`.
    (terms, cond.op, -constant)
}

/// The canonical per-term-key admissible ranges of a guard's
/// conditions. `None` when a constant condition is already false (the
/// guard is unsatisfiable outright).
fn guard_ranges(guard: &Guard) -> Option<Vec<(TermKey, TermRange)>> {
    let mut ranges: Vec<(TermKey, TermRange)> = Vec::new();
    for cond in guard.conditions() {
        let (key, op, bound) = canon_cond(cond);
        if key.is_empty() {
            // `0 op bound`: a constant truth value.
            let holds = match op {
                CmpOp::Lt => 0 < bound,
                CmpOp::Le => 0 <= bound,
                CmpOp::Eq => 0 == bound,
                CmpOp::Ne => 0 != bound,
                CmpOp::Ge => 0 >= bound,
                CmpOp::Gt => 0 > bound,
            };
            if !holds {
                return None;
            }
            continue;
        }
        let idx = match ranges.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                ranges.push((key, TermRange::top()));
                ranges.len() - 1
            }
        };
        ranges[idx].1.constrain(op, bound);
    }
    Some(ranges)
}

/// Proves a guard unsatisfiable for *every* variable and parameter
/// assignment: a constant condition is false, or two conditions
/// constrain the same canonical difference to disjoint ranges (e.g.
/// `v + 1 < b` ∧ `v + 1 ≥ b`). A `false` answer proves nothing.
pub fn guard_unsat(guard: &Guard) -> bool {
    match guard_ranges(guard) {
        None => true,
        Some(ranges) => ranges.iter().any(|(_, r)| r.is_empty()),
    }
}

/// Proves two guards disjoint — never both satisfied by one assignment:
/// either guard is unsatisfiable on its own, or they constrain some
/// shared canonical difference to ranges with empty intersection. A
/// `false` answer proves nothing (fall back to enumeration or report
/// "may overlap").
pub fn guards_disjoint(a: &Guard, b: &Guard) -> bool {
    let (ra, rb) = match (guard_ranges(a), guard_ranges(b)) {
        (None, _) | (_, None) => return true,
        (Some(ra), Some(rb)) => (ra, rb),
    };
    if ra.iter().any(|(_, r)| r.is_empty()) || rb.iter().any(|(_, r)| r.is_empty()) {
        return true;
    }
    for (key, range_a) in &ra {
        if let Some((_, range_b)) = rb.iter().find(|(k, _)| k == key) {
            if range_a.meet(range_b).is_empty() {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efsm::{EfsmBuilder, VarId};

    fn var(i: usize) -> LinExpr {
        // VarId's constructor is crate-private; build through the
        // EfsmBuilder-independent path used by the tests.
        LinExpr::var(VarId(i))
    }

    #[test]
    fn interval_arithmetic_saturates_toward_infinity() {
        let top = Interval::TOP;
        assert!(top.is_top());
        assert_eq!(top + Interval::point(5), top);
        assert_eq!(top.scale(-3), top);
        let p = Interval::range(-2, 7);
        assert_eq!(p.scale(-1), Interval::range(-7, 2));
        assert_eq!(p + Interval::point(1), Interval::range(-1, 8));
        assert_eq!(Interval::point(4).scale(0), Interval::point(0));
        let low = Interval {
            lo: i64::MIN,
            hi: 3,
        };
        assert_eq!((low + Interval::point(10)).lo, i64::MIN);
        assert_eq!(low.scale(-2).hi, i64::MAX);
    }

    #[test]
    fn join_widen_intersect() {
        let a = Interval::range(0, 3);
        let b = Interval::range(2, 9);
        assert_eq!(a.join(b), Interval::range(0, 9));
        assert_eq!(a.intersect(b), Some(Interval::range(2, 3)));
        assert_eq!(a.intersect(Interval::range(5, 6)), None);
        assert_eq!(a.widen(Interval::range(0, 4)).hi, i64::MAX);
        assert_eq!(a.widen(Interval::range(-1, 3)).lo, i64::MIN);
        assert_eq!(a.widen(a), a);
        assert!(a.contains(3) && !a.contains(4));
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn empty_range_panics() {
        let _ = Interval::range(3, 2);
    }

    #[test]
    fn cond_status_three_valued() {
        let v = vec![Interval::range(0, 4)];
        let c = |op| Cond {
            lhs: var(0),
            op,
            rhs: LinExpr::constant(5),
        };
        assert_eq!(cond_status(&c(CmpOp::Lt), &v, &[]), CondStatus::True);
        assert_eq!(cond_status(&c(CmpOp::Ge), &v, &[]), CondStatus::False);
        assert_eq!(cond_status(&c(CmpOp::Ne), &v, &[]), CondStatus::True);
        let c4 = Cond {
            lhs: var(0),
            op: CmpOp::Le,
            rhs: LinExpr::constant(3),
        };
        assert_eq!(cond_status(&c4, &v, &[]), CondStatus::Unknown);
        let point = vec![Interval::point(2)];
        let eq = Cond {
            lhs: var(0),
            op: CmpOp::Eq,
            rhs: LinExpr::constant(2),
        };
        assert_eq!(cond_status(&eq, &point, &[]), CondStatus::True);
        assert_eq!(
            cond_status(
                &Cond {
                    lhs: var(0),
                    op: CmpOp::Ne,
                    rhs: LinExpr::constant(2),
                },
                &point,
                &[]
            ),
            CondStatus::False
        );
        assert_eq!(
            cond_status(
                &Cond {
                    lhs: var(0),
                    op: CmpOp::Gt,
                    rhs: LinExpr::constant(1),
                },
                &point,
                &[]
            ),
            CondStatus::True
        );
    }

    #[test]
    fn guard_status_conjunction() {
        let v = vec![Interval::range(0, 4)];
        let g = Guard::when(var(0), CmpOp::Ge, LinExpr::constant(0)).and(
            var(0),
            CmpOp::Lt,
            LinExpr::constant(10),
        );
        assert_eq!(guard_status(&g, &v, &[]), CondStatus::True);
        assert_eq!(guard_status(&Guard::always(), &[], &[]), CondStatus::True);
        let g2 = Guard::when(var(0), CmpOp::Gt, LinExpr::constant(100));
        assert_eq!(guard_status(&g2, &v, &[]), CondStatus::False);
        let g3 = Guard::when(var(0), CmpOp::Gt, LinExpr::constant(2));
        assert_eq!(guard_status(&g3, &v, &[]), CondStatus::Unknown);
    }

    #[test]
    fn unsat_detects_contradictions_without_bindings() {
        // v + 1 < b  ∧  v + 1 >= b  — the complementary retry guards.
        let mut b = EfsmBuilder::new("g", ["m"]);
        let p = b.add_param("b");
        let n = b.add_var("v");
        let lt = Guard::when(LinExpr::var(n).plus_const(1), CmpOp::Lt, LinExpr::param(p));
        let ge = Guard::when(LinExpr::var(n).plus_const(1), CmpOp::Ge, LinExpr::param(p));
        let both = lt
            .clone()
            .and(LinExpr::var(n).plus_const(1), CmpOp::Ge, LinExpr::param(p));
        assert!(guard_unsat(&both));
        assert!(!guard_unsat(&lt));
        assert!(!guard_unsat(&ge));
        assert!(guards_disjoint(&lt, &ge));
        assert!(!guards_disjoint(&lt, &lt));

        // Constant contradiction.
        let konst = Guard::when(LinExpr::constant(1), CmpOp::Lt, LinExpr::constant(0));
        assert!(guard_unsat(&konst));
        assert!(guards_disjoint(&konst, &Guard::always()));
        // Constant truth is satisfiable.
        assert!(!guard_unsat(&Guard::when(
            LinExpr::constant(0),
            CmpOp::Le,
            LinExpr::constant(0)
        )));

        // == meets != on the same difference.
        let eq = Guard::when(LinExpr::var(n), CmpOp::Eq, LinExpr::constant(3));
        let ne = Guard::when(LinExpr::var(n), CmpOp::Ne, LinExpr::constant(3));
        assert!(guard_unsat(&eq.clone().and(
            LinExpr::var(n),
            CmpOp::Ne,
            LinExpr::constant(3)
        )));
        assert!(guards_disjoint(&eq, &ne));
        assert!(!guards_disjoint(&eq, &Guard::always()));
    }

    #[test]
    fn canonicalization_combines_and_sorts_terms() {
        // 2v + 3 - v < v + 4  ⇒  0·v < 1 ⇒ constant-true.
        let mut b = EfsmBuilder::new("g", ["m"]);
        let n = b.add_var("v");
        let lhs = LinExpr::var(n)
            .times(2)
            .plus_const(3)
            .plus(LinExpr::var(n).times(-1));
        let rhs = LinExpr::var(n).plus_const(4);
        let g = Guard::when(lhs.clone(), CmpOp::Lt, rhs.clone());
        assert!(!guard_unsat(&g));
        // Flip to >= and it is a constant contradiction: v + 3 >= v + 4.
        let g2 = Guard::when(lhs, CmpOp::Ge, rhs);
        assert!(guard_unsat(&g2));
    }

    #[test]
    fn eval_lin_handles_out_of_range_operands() {
        let e = var(7);
        assert!(eval_lin(&e, &[], &[]).is_top());
    }
}
