//! The abstract-model interface.
//!
//! An [`AbstractModel`] captures the structure common to a whole *family*
//! of finite state machines (paper §3.3–3.4): the shape of the state space,
//! the message alphabet, and — crucially — the transition logic, i.e. what
//! happens to a state when each message is received. Executing the model
//! for a concrete parameter value (via [`generate`](crate::generate))
//! yields one member of the family as a [`StateMachine`](crate::StateMachine).

use crate::component::{StateSpace, StateVector};
use crate::machine::Action;

/// The result of elaborating one `(state, message)` pair at generation
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The message is not applicable in this state (the paper's
    /// `InvalidStateException` path); no transition is recorded.
    Ignored,
    /// A transition to another point in the state space.
    Transition(TransitionSpec),
}

impl Outcome {
    /// Convenience constructor for a transition without annotations.
    pub fn to(target: StateVector, actions: Vec<Action>) -> Self {
        Outcome::Transition(TransitionSpec {
            target,
            actions,
            annotations: Vec::new(),
        })
    }
}

/// Target, actions and documentation for a transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionSpec {
    /// The state reached after the message is processed.
    pub target: StateVector,
    /// Messages sent while processing (empty ⇒ simple transition,
    /// non-empty ⇒ phase transition).
    pub actions: Vec<Action>,
    /// Automatically generated rationale for the transition (paper fn. 3).
    pub annotations: Vec<String>,
}

/// A model of a family of finite state machines, executed at generation
/// time to produce family members.
///
/// Implementations hold the family parameter(s) — e.g. the replication
/// factor — as struct fields; `generate` interrogates the model for the
/// state space, messages and per-state transition logic.
pub trait AbstractModel {
    /// A short name for the machine this model instance generates
    /// (conventionally `<algorithm>@<parameter>=<value>`).
    fn machine_name(&self) -> String;

    /// The state-component schema (paper Fig 20).
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError`](crate::SchemaError) if the component list is
    /// malformed; `generate` propagates this as a
    /// [`GenerateError`](crate::GenerateError).
    fn state_space(&self) -> Result<StateSpace, crate::SchemaError>;

    /// The message alphabet.
    fn messages(&self) -> Vec<String>;

    /// The state in which a fresh protocol instance starts.
    fn start_state(&self) -> StateVector;

    /// Elaborates the effect of receiving `message` in state `state`
    /// (paper Fig 9/10): the core logic of the modelled algorithm, executed
    /// at generation time rather than at run time.
    ///
    /// Never called for states where [`AbstractModel::is_final_state`]
    /// holds — a completed instance processes no further messages.
    fn transition(&self, state: &StateVector, message: &str) -> Outcome;

    /// `true` if the protocol instance has *completed* in this state.
    ///
    /// Final states get no outgoing transitions and are marked with
    /// [`StateRole::Finish`](crate::StateRole). For the commit protocol
    /// these are the states where `commits_received` has reached the
    /// external commit threshold `f + 1`; the merge step then combines
    /// them into the single conceptual finish state. Default: no state is
    /// final.
    fn is_final_state(&self, state: &StateVector) -> bool {
        let _ = state;
        false
    }

    /// Human-readable description of a state, used by renderers to emit
    /// the paper's per-state commentary (Fig 14). Default: none.
    fn describe_state(&self, state: &StateVector) -> Vec<String> {
        let _ = state;
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{StateComponent, StateSpace};

    /// A tiny one-counter model used to exercise the trait's defaults.
    struct Counter {
        max: u32,
    }

    impl AbstractModel for Counter {
        fn machine_name(&self) -> String {
            format!("counter@max={}", self.max)
        }

        fn state_space(&self) -> Result<StateSpace, crate::SchemaError> {
            StateSpace::new(vec![StateComponent::int("count", self.max)])
        }

        fn messages(&self) -> Vec<String> {
            vec!["tick".to_string()]
        }

        fn start_state(&self) -> StateVector {
            self.state_space().expect("schema").zero_vector()
        }

        fn transition(&self, state: &StateVector, message: &str) -> Outcome {
            assert_eq!(message, "tick");
            let mut next = state.clone();
            next.set(0, state.get(0) + 1);
            Outcome::to(next, vec![])
        }

        fn is_final_state(&self, state: &StateVector) -> bool {
            state.get(0) == self.max
        }
    }

    #[test]
    fn trait_defaults() {
        let m = Counter { max: 3 };
        assert!(m.describe_state(&m.start_state()).is_empty());
        assert_eq!(m.machine_name(), "counter@max=3");
        assert!(!m.is_final_state(&m.start_state()));
        let mut v = m.start_state();
        v.set(0, 3);
        assert!(m.is_final_state(&v));
    }

    #[test]
    fn outcome_constructor() {
        let m = Counter { max: 3 };
        let v = m.start_state();
        match m.transition(&v, "tick") {
            Outcome::Transition(spec) => {
                assert_eq!(spec.target.get(0), 1);
                assert!(spec.actions.is_empty());
            }
            Outcome::Ignored => panic!("unexpected ignore"),
        }
    }
}
