//! Structural validation of generated machines.
//!
//! The generation engine produces machines that are well-formed by
//! construction; this module provides an independent checker used by the
//! test-suites, and by callers that build machines by hand.

use std::collections::VecDeque;
use std::fmt;

use crate::machine::{MessageId, StateId, StateMachine, StateRole};

/// Severity of a validation finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The machine violates a structural invariant.
    Error,
    /// Suspicious but not structurally invalid.
    Warning,
}

/// A single validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// How severe the finding is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{tag}: {}", self.message)
    }
}

/// The outcome of validating a machine.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    /// All findings.
    pub issues: Vec<ValidationIssue>,
}

impl ValidationReport {
    /// `true` if no error-severity issues were found.
    pub fn is_valid(&self) -> bool {
        self.issues.iter().all(|i| i.severity != Severity::Error)
    }

    /// Error-severity issues.
    pub fn errors(&self) -> impl Iterator<Item = &ValidationIssue> {
        self.issues.iter().filter(|i| i.severity == Severity::Error)
    }

    /// Warning-severity issues.
    pub fn warnings(&self) -> impl Iterator<Item = &ValidationIssue> {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Warning)
    }

    fn error(&mut self, message: String) {
        self.issues.push(ValidationIssue {
            severity: Severity::Error,
            message,
        });
    }

    fn warning(&mut self, message: String) {
        self.issues.push(ValidationIssue {
            severity: Severity::Warning,
            message,
        });
    }
}

/// Validates the structural invariants of a machine:
///
/// * final states (role `Finish`) have no outgoing transitions (error);
/// * all states are reachable from the start state (warning otherwise);
/// * non-final dead-end states (warning);
/// * state names are unique (warning otherwise).
///
/// Transition-target and message-id range validity are enforced by
/// construction ([`StateMachineBuilder`](crate::StateMachineBuilder) panics
/// on violations), so they cannot be observed here.
pub fn validate_machine(machine: &StateMachine) -> ValidationReport {
    let mut report = ValidationReport::default();

    // Final states process no messages.
    for (_id, state) in machine.states_with_ids() {
        if state.role() == StateRole::Finish && state.transition_count() != 0 {
            report.error(format!(
                "final state `{}` has {} outgoing transitions",
                state.name(),
                state.transition_count()
            ));
        }
    }

    // Reachability.
    let mut seen = vec![false; machine.state_count()];
    let mut queue = VecDeque::new();
    seen[machine.start().index()] = true;
    queue.push_back(machine.start());
    while let Some(id) = queue.pop_front() {
        for (_m, t) in machine.state(id).transitions() {
            if !seen[t.target().index()] {
                seen[t.target().index()] = true;
                queue.push_back(t.target());
            }
        }
    }
    for (id, state) in machine.states_with_ids() {
        if !seen[id.index()] {
            report.warning(format!(
                "state `{}` is unreachable from the start state",
                state.name()
            ));
        }
    }

    // Dead ends that are not final states.
    for (_id, state) in machine.states_with_ids() {
        if state.transition_count() == 0 && state.role() != StateRole::Finish {
            report.warning(format!(
                "state `{}` has no outgoing transitions but is not a final state",
                state.name()
            ));
        }
    }

    // Duplicate names.
    let mut names: Vec<&str> = machine.states().iter().map(|s| s.name()).collect();
    names.sort_unstable();
    for pair in names.windows(2) {
        if pair[0] == pair[1] {
            report.warning(format!("duplicate state name `{}`", pair[0]));
        }
    }

    report
}

/// Lists the `(state, message)` pairs with no transition — the messages
/// the paper's generator found "not applicable" in each state. Useful as
/// a coverage diagnostic when developing an abstract model: an
/// unexpectedly inapplicable message usually means a missed handler
/// branch. Final states are skipped (they ignore everything by design).
pub fn missing_transitions(machine: &StateMachine) -> Vec<(StateId, MessageId)> {
    let mut missing = Vec::new();
    for (id, state) in machine.states_with_ids() {
        if state.role() == StateRole::Finish {
            continue;
        }
        for mi in 0..machine.messages().len() {
            let mid = machine
                .message_id(&machine.messages()[mi])
                .expect("message from the machine's own table");
            if state.transition(mid).is_none() {
                missing.push((id, mid));
            }
        }
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Action, StateMachineBuilder, StateRole};

    #[test]
    fn clean_machine_validates() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state("s0");
        let fin = b.add_state_full("FINISHED", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", fin, vec![Action::send("x")]);
        let m = b.build(s0);
        let report = validate_machine(&m);
        assert!(report.is_valid(), "unexpected issues: {:?}", report.issues);
        assert_eq!(report.issues.len(), 0);
    }

    #[test]
    fn unreachable_state_warns() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state("s0");
        let _orphan = b.add_state("orphan");
        b.add_transition(s0, "a", s0, vec![Action::send("x")]);
        let m = b.build(s0);
        let report = validate_machine(&m);
        assert!(report.is_valid());
        assert_eq!(report.warnings().count(), 2); // unreachable + dead end
    }

    #[test]
    fn final_with_outgoing_is_error() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state_full("s0", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", s0, vec![]);
        let m = b.build(s0);
        let report = validate_machine(&m);
        assert!(!report.is_valid());
        assert_eq!(report.errors().count(), 1);
    }

    #[test]
    fn duplicate_names_warn() {
        let mut b = StateMachineBuilder::new("m", ["a"]);
        let s0 = b.add_state("dup");
        let s1 = b.add_state("dup");
        b.add_transition(s0, "a", s1, vec![]);
        b.add_transition(s1, "a", s0, vec![]);
        let m = b.build(s0);
        let report = validate_machine(&m);
        assert!(report
            .warnings()
            .any(|w| w.message.contains("duplicate state name")));
    }

    #[test]
    fn missing_transitions_reported() {
        let mut b = StateMachineBuilder::new("m", ["a", "b"]);
        let s0 = b.add_state("s0");
        let fin = b.add_state_full("end", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", fin, vec![]);
        let m = b.build(s0);
        let missing = missing_transitions(&m);
        // s0 lacks `b`; the final state is skipped.
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].0, s0);
        assert_eq!(m.message_name(missing[0].1), "b");
    }

    #[test]
    fn issue_display() {
        let issue = ValidationIssue {
            severity: Severity::Error,
            message: "boom".to_string(),
        };
        assert_eq!(issue.to_string(), "error: boom");
    }
}
