//! # stategen-commit
//!
//! The running example of the DSN 2007 paper: a leaderless
//! Byzantine-fault-tolerant commit protocol used by the ASA distributed
//! storage system to serialise updates to a GUID's version history
//! (paper §2.2), expressed as an [`AbstractModel`](stategen_core::AbstractModel)
//! and generated into a *family* of finite state machines — one per
//! replication factor.
//!
//! ```
//! use stategen_commit::{CommitConfig, CommitModel};
//! use stategen_core::generate;
//!
//! let model = CommitModel::new(CommitConfig::new(4)?);
//! let generated = generate(&model)?;
//! assert_eq!(generated.report.initial_states, 512); // paper §3.4
//! assert_eq!(generated.report.final_states, 33);    // paper Table 1
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod early_model;
pub mod efsm;
pub mod messages;
pub mod model;
pub mod reference;
pub mod vars;

pub use config::{CommitConfig, ConfigError};
pub use early_model::EarlyCommitModel;
pub use efsm::{commit_efsm, commit_efsm_instance, commit_efsm_params, commit_efsm_state_flags};
pub use messages::{CommitMessage, ParseMessageError, MESSAGE_NAMES};
pub use model::CommitModel;
pub use reference::ReferenceCommit;
pub use vars::{commit_state_space, CommitStateExt};
