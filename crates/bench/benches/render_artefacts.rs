//! Artefact-rendering cost (paper §3.5/§4.1): producing the textual
//! description, diagrams and source code from the r = 4 commit machine.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use stategen_commit::{CommitConfig, CommitModel};
use stategen_core::generate;
use stategen_render::{
    java_src, render_dot, render_mermaid, render_rust_module, render_xml, DotOptions, TextRenderer,
};

fn bench_render(c: &mut Criterion) {
    let machine = generate(&CommitModel::new(CommitConfig::new(4).expect("valid")))
        .expect("generates")
        .machine;
    let mut group = c.benchmark_group("render_artefacts");
    group.bench_function("text", |b| {
        let renderer = TextRenderer::new();
        b.iter(|| black_box(renderer.render(&machine).len()));
    });
    group.bench_function("dot", |b| {
        let options = DotOptions::default();
        b.iter(|| black_box(render_dot(&machine, &options).len()));
    });
    group.bench_function("xml", |b| {
        b.iter(|| black_box(render_xml(&machine).len()));
    });
    group.bench_function("mermaid", |b| {
        b.iter(|| black_box(render_mermaid(&machine).len()));
    });
    group.bench_function("rust_module", |b| {
        b.iter(|| black_box(render_rust_module(&machine).len()));
    });
    group.bench_function("java_handlers", |b| {
        b.iter(|| black_box(java_src::render_handlers(&machine).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_render);
criterion_main!(benches);
