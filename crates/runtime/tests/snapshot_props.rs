//! Property suite for crash safety: snapshot/restore round-trips on
//! every execution tier, the hierarchical timer wheel against a naive
//! reference scheduler, and timeouts-as-transitions equivalence.
//!
//! The acceptance gate: `Runtime::restore(engine, &rt.snapshot_all())`
//! must reproduce the pool *bit-identically* — states, full register
//! files, generations, free list and finished flags — which is checked
//! both directly (re-snapshot equality) and behaviourally (the restored
//! pool replays an arbitrary message suffix identically, through the
//! original generational handles).

use proptest::prelude::*;

use stategen_commit::{commit_efsm, commit_efsm_params, CommitConfig, CommitModel, MESSAGE_NAMES};
use stategen_core::generate;
use stategen_runtime::{Engine, Runtime, SessionId, Spec, TimerWheel};

/// One engine per tier, all serving the r = 4 commit protocol (the EFSM
/// tier carries two live counter registers per session, so its
/// snapshots must capture a real register file, not just a state id).
fn engines() -> Vec<Engine> {
    let config = CommitConfig::new(4).unwrap();
    let machine = generate(&CommitModel::new(config)).unwrap().machine;
    vec![
        Engine::interpret(Spec::machine(machine.clone())).unwrap(),
        Engine::compile(Spec::machine(machine)).unwrap(),
        Engine::compile(Spec::efsm(commit_efsm(), commit_efsm_params(&config))).unwrap(),
    ]
}

/// A pool-mutation script: interleaved spawns, deliveries and releases.
#[derive(Debug, Clone)]
enum PoolOp {
    Spawn,
    Deliver { session: usize, message: usize },
    Release { session: usize },
}

fn pool_ops() -> impl Strategy<Value = Vec<PoolOp>> {
    prop::collection::vec(
        prop_oneof![
            Just(PoolOp::Spawn),
            (any::<u64>(), any::<u64>()).prop_map(|(s, m)| PoolOp::Deliver {
                session: s as usize,
                message: m as usize % MESSAGE_NAMES.len(),
            }),
            any::<u64>().prop_map(|s| PoolOp::Release {
                session: s as usize
            }),
        ],
        0..60,
    )
}

/// Runs the script, returning the handles that are still live.
fn apply_ops(rt: &mut Runtime, ops: &[PoolOp]) -> Vec<SessionId> {
    let mut live: Vec<SessionId> = Vec::new();
    for op in ops {
        match op {
            PoolOp::Spawn => live.push(rt.spawn()),
            PoolOp::Deliver { session, message } => {
                if !live.is_empty() {
                    let s = live[session % live.len()];
                    let id = rt.message_id(MESSAGE_NAMES[*message]).unwrap();
                    rt.deliver(s, id);
                }
            }
            PoolOp::Release { session } => {
                if !live.is_empty() {
                    let s = live.remove(session % live.len());
                    rt.release(s);
                }
            }
        }
    }
    live
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The acceptance gate, on all three runtime-served tiers.
    #[test]
    fn snapshot_restore_round_trips_bit_identically(
        ops in pool_ops(),
        suffix in prop::collection::vec(any::<u64>(), 0..30),
    ) {
        for engine in engines() {
            let mut rt = engine.runtime();
            let live = apply_ops(&mut rt, &ops);
            let snap = rt.snapshot_all();

            let mut restored = Runtime::restore(&engine, &snap).unwrap();
            // Bit-identical: re-snapshotting the restored pool yields the
            // exact same snapshot (states, vars, generations, free list).
            prop_assert_eq!(&restored.snapshot_all(), &snap);

            // Old handles address the restored sessions with identical
            // observable state.
            for &s in &live {
                prop_assert_eq!(restored.state(s), rt.state(s));
                prop_assert_eq!(restored.is_finished(s), rt.is_finished(s));
                prop_assert_eq!(restored.snapshot(s), rt.snapshot(s));
            }

            // Behavioural equivalence: an arbitrary suffix replays
            // identically on the original and the restored pool.
            for &step in &suffix {
                if live.is_empty() {
                    break;
                }
                let s = live[(step as usize) % live.len()];
                let id = rt
                    .message_id(MESSAGE_NAMES[(step >> 32) as usize % MESSAGE_NAMES.len()])
                    .unwrap();
                let a: Vec<String> =
                    rt.deliver(s, id).iter().map(|x| x.message().to_string()).collect();
                let b: Vec<String> =
                    restored.deliver(s, id).iter().map(|x| x.message().to_string()).collect();
                prop_assert_eq!(a, b);
                prop_assert_eq!(rt.state(s), restored.state(s));
                prop_assert_eq!(rt.is_finished(s), restored.is_finished(s));
            }
            prop_assert_eq!(&restored.snapshot_all(), &rt.snapshot_all());
        }
    }

    /// A snapshot from one engine restores into any engine with the same
    /// behavioural fingerprint (interpreted vs compiled of the same
    /// machine) and is rejected by a behaviourally different one.
    #[test]
    fn restore_respects_fingerprints(ops in pool_ops()) {
        let all = engines();
        let (interp, compiled, efsm) = (&all[0], &all[1], &all[2]);
        let mut rt = interp.runtime();
        apply_ops(&mut rt, &ops);
        let snap = rt.snapshot_all();
        // Same flat behaviour, different tier: accepted.
        prop_assert!(Runtime::restore(compiled, &snap).is_ok());
        // The EFSM artifact is a different machine shape (register
        // file differs): rejected, not silently mis-restored.
        prop_assert!(Runtime::restore(efsm, &snap).is_err());
    }

    /// The timer wheel against a naive reference scheduler: identical
    /// expiry sets and deterministic (deadline, arm-order) sequencing
    /// under arbitrary arm/re-arm/cancel/advance interleavings.
    #[test]
    fn timer_wheel_matches_reference_scheduler(
        script in prop::collection::vec((any::<u64>(), any::<u64>()), 0..200)
    ) {
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        // key -> (deadline, arm sequence) for everything still armed.
        let mut reference: std::collections::BTreeMap<u32, (u64, u64)> =
            std::collections::BTreeMap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for (op, payload) in script {
            match op % 4 {
                0 | 1 => {
                    let key = (payload % 16) as u32;
                    let deadline = now + (payload >> 8) % 5_000;
                    wheel.arm(key, deadline);
                    reference.insert(key, (deadline, seq));
                    seq += 1;
                }
                2 => {
                    let key = (payload % 16) as u32;
                    let cancelled = wheel.cancel(&key);
                    prop_assert_eq!(cancelled, reference.remove(&key).is_some());
                }
                _ => {
                    now += payload % 700;
                    let expired: Vec<u32> = wheel.advance(now).to_vec();
                    let mut expected: Vec<(u64, u64, u32)> = reference
                        .iter()
                        .filter(|(_, &(deadline, _))| deadline <= now)
                        .map(|(&k, &(deadline, s))| (deadline, s, k))
                        .collect();
                    expected.sort_unstable();
                    for &(_, _, k) in &expected {
                        reference.remove(&k);
                    }
                    let expected: Vec<u32> = expected.into_iter().map(|(_, _, k)| k).collect();
                    prop_assert_eq!(expired, expected, "at t = {}", now);
                }
            }
        }
        prop_assert_eq!(wheel.len(), reference.len());
    }

    /// Timeouts are ordinary transitions: `advance_time` delivering the
    /// timeout message to expired sessions leaves the pool in exactly
    /// the state of delivering it by hand in expiry order.
    #[test]
    fn timeouts_are_just_transitions(
        deadlines in prop::collection::vec(1u64..2_000, 1..12),
        advance_to in 1u64..2_500,
    ) {
        let engine = &engines()[1];
        let timeout = engine.message_id(MESSAGE_NAMES[0]).unwrap();

        let mut timed = engine.runtime();
        let mut manual = engine.runtime();
        let mut sessions = Vec::new();
        for &d in &deadlines {
            let s = timed.spawn();
            let m = manual.spawn();
            assert_eq!(s, m);
            timed.arm_timeout(s, d);
            sessions.push((s, d));
        }
        let fired = timed.advance_time(advance_to, timeout);

        // Reference: deliver by hand in (deadline, arm order).
        let mut due: Vec<(u64, usize)> = sessions
            .iter()
            .enumerate()
            .filter(|(_, &(_, d))| d <= advance_to)
            .map(|(i, &(_, d))| (d, i))
            .collect();
        due.sort_unstable();
        for &(_, i) in &due {
            manual.deliver(sessions[i].0, timeout);
        }
        prop_assert_eq!(fired, due.len());
        prop_assert_eq!(timed.snapshot_all(), manual.snapshot_all());
        prop_assert_eq!(timed.pending_timeouts(), deadlines.len() - due.len());
    }
}
