//! Replica placement: the globally known key-generation function.
//!
//! Paper §2.1: the endpoint "determines which participating nodes should
//! store replicas of the data, by applying a globally known function that
//! deterministically generates a set of keys from a single PID. In the
//! current prototype, the key generation function returns a set of keys
//! that are evenly distributed in key space. The number of keys is
//! determined by the data replication factor."

use asa_chord::{Key, Overlay, OverlayError};

use crate::entities::{Guid, Pid};

/// Generates `replication_factor` keys evenly distributed around the
/// ring, anchored at the identifier's own ring position.
pub fn replica_keys(anchor: Key, replication_factor: u32) -> Vec<Key> {
    assert!(
        replication_factor > 0,
        "replication factor must be positive"
    );
    let r = u64::from(replication_factor);
    let stride = u64::MAX / r; // ≈ 2^64 / r; rounding skew is negligible
    (0..r)
        .map(|i| Key(anchor.0.wrapping_add(i.wrapping_mul(stride))))
        .collect()
}

/// The ring anchor of a PID.
pub fn pid_key(pid: &Pid) -> Key {
    Key(pid.0.prefix_u64())
}

/// The ring anchor of a GUID.
pub fn guid_key(guid: &Guid) -> Key {
    Key(guid.0.prefix_u64())
}

/// Resolves the *peer set* for an identifier: the live nodes owning each
/// replica key (paper §2.1 "the replication nodes, referred to as the
/// peer set for the data key"). Distinct keys can resolve to the same
/// node on small rings; duplicates are removed, so the peer set can be
/// smaller than the replication factor when the overlay is small.
///
/// # Errors
///
/// Returns [`OverlayError::Empty`] when the overlay has no live nodes.
pub fn peer_set(
    overlay: &Overlay,
    anchor: Key,
    replication_factor: u32,
) -> Result<Vec<Key>, OverlayError> {
    let mut peers = Vec::new();
    for key in replica_keys(anchor, replication_factor) {
        let owner = overlay.owner_of(key)?;
        if !peers.contains(&owner) {
            peers.push(owner);
        }
    }
    Ok(peers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_evenly_spread() {
        let anchor = Key(1000);
        let keys = replica_keys(anchor, 4);
        assert_eq!(keys.len(), 4);
        assert_eq!(keys[0], anchor);
        // Gaps between consecutive keys are ~2^62.
        for w in keys.windows(2) {
            let gap = w[0].distance_to(w[1]);
            let expected = u64::MAX / 4;
            assert!(gap.abs_diff(expected) <= 4, "gap {gap}");
        }
    }

    #[test]
    fn deterministic() {
        let pid = Pid::of(b"block");
        assert_eq!(
            replica_keys(pid_key(&pid), 7),
            replica_keys(pid_key(&pid), 7)
        );
    }

    #[test]
    fn peer_set_resolves_to_live_owners() {
        let overlay = Overlay::with_nodes((0..64u64).map(|i| Key::hash(&i.to_be_bytes())), 4);
        let pid = Pid::of(b"data");
        let peers = peer_set(&overlay, pid_key(&pid), 4).unwrap();
        assert_eq!(peers.len(), 4, "64 nodes comfortably separate 4 keys");
        for (key, peer) in replica_keys(pid_key(&pid), 4).iter().zip(&peers) {
            assert_eq!(overlay.owner_of(*key).unwrap(), *peer);
        }
    }

    #[test]
    fn small_overlay_dedupes_peers() {
        let overlay = Overlay::with_nodes([Key(1), Key(2)], 1);
        let peers = peer_set(&overlay, Key(0), 4).unwrap();
        assert!(peers.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "replication factor must be positive")]
    fn zero_replication_panics() {
        replica_keys(Key(0), 0);
    }
}
