//! A hashed hierarchical timer wheel: O(1) arm/cancel, amortised-O(1)
//! expiry, no full-scan of armed timers on any path.
//!
//! The runtime needs per-session timeouts (a deadlocked protocol
//! execution must eventually fire a timeout *transition*), and the
//! obvious `BinaryHeap<(deadline, session)>` makes cancel O(n) — yet
//! cancel is the *common* case: most sessions finish before their
//! timeout fires. The classic fix (Varghese & Lauck's hashed wheels, the
//! design inside every serious event loop) is a hierarchy of slot rings:
//!
//! * [`TimerWheel::LEVELS`] levels of 64 slots each; level `l` spans
//!   `64^(l+1)` ticks, so slot granularity grows by 64× per level;
//! * arming places an entry at the level whose granularity matches the
//!   distance to the deadline (highest differing bit of `deadline ^
//!   now`), an O(1) slab insert into an intrusive doubly-linked slot
//!   list;
//! * cancel unlinks the slab entry by key in O(1) (a hash lookup plus
//!   two pointer swings);
//! * [`TimerWheel::advance`] walks occupied slots in time order (found
//!   via a 64-bit occupancy bitmap per level — no empty-slot scans),
//!   *cascading* coarse-level entries down to finer levels until they
//!   expire at exact tick precision on level 0.
//!
//! Deadlines past the wheel's horizon (`64^LEVELS` ticks out) are
//! parked in the top level and re-cascade; correctness never depends on
//! the horizon. Expiry order is deterministic: by deadline, then by arm
//! order within a deadline — the property the simulation harnesses
//! replay from seeds.
//!
//! The wheel is generic over the timer key (the runtime keys by
//! [`SessionId`](crate::SessionId), the storage client endpoint by its
//! packed tag words); re-arming an existing key moves its deadline.

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel index for "no entry" in the intrusive lists.
const NIL: u32 = u32::MAX;

/// Bits per level: 64 slots.
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Number of hierarchy levels (see [`TimerWheel::LEVELS`]).
const LEVELS: usize = 6;

/// One armed timer in the slab.
#[derive(Debug, Clone)]
struct Entry<T> {
    key: T,
    deadline: u64,
    /// Intrusive slot-list links (slab indices; [`NIL`] = end).
    prev: u32,
    next: u32,
    /// Which `(level, slot)` list holds this entry, packed as
    /// `level * SLOTS + slot`; [`NIL`] while on the free list or the
    /// overdue list.
    home: u32,
}

/// A hashed hierarchical timer wheel over keys of type `T`.
///
/// See the module-level docs in `timer.rs` for the design (the module
/// is private; the wheel re-exports at the crate root). The API is
/// three calls:
/// [`arm`](TimerWheel::arm) (O(1), re-arming moves the deadline),
/// [`cancel`](TimerWheel::cancel) (O(1)), and
/// [`advance`](TimerWheel::advance) (amortised O(1) per elapsed
/// occupied slot plus O(1) per expired timer).
///
/// Time is a plain `u64` tick counter starting at 0 and must advance
/// monotonically. Arming at a deadline `<= now` parks the entry on an
/// *overdue* list delivered by the next `advance`, whatever its `to`.
#[derive(Debug, Clone)]
pub struct TimerWheel<T> {
    /// Slab of entries; freed indices are recycled through `free`.
    slab: Vec<Entry<T>>,
    free: Vec<u32>,
    /// Key → slab index of the armed entry.
    index: HashMap<T, u32>,
    /// Head of each slot's intrusive list, `levels[level * SLOTS + slot]`.
    slots: Vec<u32>,
    /// Occupancy bitmap, one word per level: bit `s` set iff slot `s`'s
    /// list is non-empty.
    occupied: [u64; LEVELS],
    /// Entries armed with `deadline <= now` (expire on next advance).
    overdue: Vec<u32>,
    now: u64,
    /// Reused expiry output buffer.
    expired: Vec<T>,
    /// Cascade operations performed while advancing: a not-yet-due
    /// entry re-filed from a drained coarse slot into a finer level (or
    /// later slot). A telemetry counter — never consulted by wheel
    /// logic.
    cascades: u64,
}

impl<T> TimerWheel<T> {
    /// Number of hierarchy levels. Six 64-slot levels give an exact-tick
    /// horizon of `64^6 = 2^36` ticks (~68.7 billion); farther deadlines
    /// park in the top level and re-cascade.
    pub const LEVELS: usize = LEVELS;
}

impl<T: Copy + Eq + Hash> TimerWheel<T> {
    /// An empty wheel at time 0.
    pub fn new() -> Self {
        TimerWheel {
            slab: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            slots: vec![NIL; LEVELS * SLOTS],
            occupied: [0; LEVELS],
            overdue: Vec::new(),
            now: 0,
            expired: Vec::new(),
            cascades: 0,
        }
    }

    /// Total cascade operations performed by
    /// [`advance`](TimerWheel::advance) over the wheel's lifetime: each
    /// counts one armed entry re-filed from a drained coarse slot into
    /// a finer level. A cheap health signal — a wheel that cascades far
    /// more than it expires is being polled too coarsely.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// The wheel's current time (the `to` of the last
    /// [`advance`](TimerWheel::advance)).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// `true` while `key` is armed.
    pub fn is_armed(&self, key: &T) -> bool {
        self.index.contains_key(key)
    }

    /// The armed deadline of `key`, if any.
    pub fn deadline_of(&self, key: &T) -> Option<u64> {
        self.index
            .get(key)
            .map(|&idx| self.slab[idx as usize].deadline)
    }

    /// Arms (or re-arms, moving the deadline of) `key` to fire at
    /// `deadline`. O(1). A deadline at or before the current time fires
    /// on the next [`advance`](TimerWheel::advance).
    pub fn arm(&mut self, key: T, deadline: u64) {
        if let Some(idx) = self.index.get(&key).copied() {
            self.unlink(idx);
            self.slab[idx as usize].deadline = deadline;
            self.place(idx);
        } else {
            let idx = self.alloc(key, deadline);
            self.index.insert(key, idx);
            self.place(idx);
        }
    }

    /// Cancels `key`'s timer; returns `true` if it was armed. O(1).
    pub fn cancel(&mut self, key: &T) -> bool {
        let Some(idx) = self.index.remove(key) else {
            return false;
        };
        self.unlink(idx);
        self.release(idx);
        true
    }

    /// Advances the wheel to time `to`, returning every timer whose
    /// deadline is `<= to` in deterministic order (by deadline, then arm
    /// order). Expired timers are disarmed. The returned slice is a
    /// buffer reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if `to` is before the wheel's current time.
    pub fn advance(&mut self, to: u64) -> &[T] {
        assert!(to >= self.now, "timer wheel time must not run backwards");
        self.expired.clear();
        // Entries armed at-or-before their arm-time `now`.
        let overdue = std::mem::take(&mut self.overdue);
        for &idx in &overdue {
            let key = self.slab[idx as usize].key;
            self.index.remove(&key);
            self.expired.push(key);
            self.release(idx);
        }
        self.overdue = overdue;
        self.overdue.clear();
        // Walk occupied slots in global time order, cascading coarse
        // entries down until everything due is on level 0 (exact tick).
        while let Some((level, slot, start)) = self.next_slot() {
            if start > to {
                break;
            }
            self.now = start;
            let mut idx = std::mem::replace(&mut self.slots[level * SLOTS + slot], NIL);
            self.occupied[level] &= !(1 << slot);
            // Drain preserving arm order (lists are push-front).
            let mut chain: Vec<u32> = Vec::new();
            while idx != NIL {
                chain.push(idx);
                idx = self.slab[idx as usize].next;
            }
            for &idx in chain.iter().rev() {
                let entry = &mut self.slab[idx as usize];
                entry.home = NIL;
                entry.prev = NIL;
                entry.next = NIL;
                if entry.deadline <= self.now {
                    let key = entry.key;
                    self.index.remove(&key);
                    self.expired.push(key);
                    self.release(idx);
                } else {
                    // Not yet due: cascade to a finer level (or later
                    // slot) relative to the new `now`.
                    self.cascades += 1;
                    self.place(idx);
                }
            }
        }
        self.now = to;
        &self.expired
    }

    /// A lower bound on the next expiry time: the start of the earliest
    /// occupied slot (exact on level 0; a coarse slot may hold entries
    /// due later, so callers waking at this time simply re-`advance` and
    /// may get nothing — bounded by the cascade depth). `Some(now)` when
    /// overdue entries are pending; `None` when the wheel is empty.
    pub fn next_deadline(&self) -> Option<u64> {
        if !self.overdue.is_empty() {
            return Some(self.now);
        }
        self.next_slot().map(|(_, _, start)| start)
    }

    /// The earliest occupied `(level, slot, slot_start_time)`, by slot
    /// start, tie-broken toward the finest level (so exact level-0
    /// deadlines expire before coarse entries cascade at the same
    /// instant).
    fn next_slot(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let cur = ((self.now >> shift) & SLOT_MASK) as usize;
            // One full rotation of this level, and `now` with the
            // level's slot field and all finer bits cleared.
            let rotation = 1u64 << (shift + SLOT_BITS);
            let base = self.now & !(rotation - 1);
            for slot in occ_slots(occ) {
                // Same-rotation slots ahead of (or at) `cur` fire this
                // rotation; slots behind `cur` fire next rotation.
                let wraps = slot < cur;
                let start = base
                    .wrapping_add((slot as u64) << shift)
                    .wrapping_add(if wraps { rotation } else { 0 });
                // Entries in `cur`'s own slot at coarse levels are due
                // within the current slot span; their start is `now`.
                let start = start.max(self.now);
                match best {
                    Some((bl, _, bs)) if (bs, bl) <= (start, level) => {}
                    _ => best = Some((level, slot, start)),
                }
            }
        }
        best
    }

    /// Links `idx` into the slot matching its deadline relative to
    /// `now`, or onto the overdue list when already due.
    fn place(&mut self, idx: u32) {
        let deadline = self.slab[idx as usize].deadline;
        if deadline <= self.now {
            self.slab[idx as usize].home = NIL;
            self.overdue.push(idx);
            return;
        }
        // Clamp far deadlines into the top level; they re-cascade.
        let horizon = 1u64 << (SLOT_BITS * LEVELS as u32);
        let effective = if deadline.saturating_sub(self.now) >= horizon {
            // Park exactly 63 top-level slots ahead, aligned to the
            // slot grid. A plain `now + horizon - 1` clamp lets the
            // carry from finer bits wrap the slot offset to 64 ≡ 0 —
            // the *current* top-level slot, whose start is `now` — and
            // `advance` would then cascade the entry in place forever.
            let top_shift = SLOT_BITS * (LEVELS as u32 - 1);
            (self.now & !((1u64 << top_shift) - 1)) + ((SLOTS as u64 - 1) << top_shift)
        } else {
            deadline
        };
        let diff = effective ^ self.now;
        let level = (((63 - diff.leading_zeros()) / SLOT_BITS) as usize).min(LEVELS - 1);
        let shift = SLOT_BITS * level as u32;
        let slot = ((effective >> shift) & SLOT_MASK) as usize;
        let cell = level * SLOTS + slot;
        let head = self.slots[cell];
        let entry = &mut self.slab[idx as usize];
        entry.home = cell as u32;
        entry.prev = NIL;
        entry.next = head;
        if head != NIL {
            self.slab[head as usize].prev = idx;
        }
        self.slots[cell] = idx;
        self.occupied[level] |= 1 << slot;
    }

    /// Unlinks `idx` from its slot list (or the overdue list). O(1) for
    /// slot lists; overdue unlink is a swap-remove scan of the (tiny,
    /// transient) overdue list.
    fn unlink(&mut self, idx: u32) {
        let entry = &self.slab[idx as usize];
        let (home, prev, next) = (entry.home, entry.prev, entry.next);
        if home == NIL {
            if let Some(pos) = self.overdue.iter().position(|&i| i == idx) {
                self.overdue.swap_remove(pos);
            }
            return;
        }
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.slots[home as usize] = next;
            if next == NIL {
                let level = home as usize / SLOTS;
                let slot = home as usize % SLOTS;
                self.occupied[level] &= !(1 << slot);
            }
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        }
        let entry = &mut self.slab[idx as usize];
        entry.home = NIL;
        entry.prev = NIL;
        entry.next = NIL;
    }

    fn alloc(&mut self, key: T, deadline: u64) -> u32 {
        let entry = Entry {
            key,
            deadline,
            prev: NIL,
            next: NIL,
            home: NIL,
        };
        match self.free.pop() {
            Some(idx) => {
                self.slab[idx as usize] = entry;
                idx
            }
            None => {
                self.slab.push(entry);
                (self.slab.len() - 1) as u32
            }
        }
    }

    fn release(&mut self, idx: u32) {
        self.free.push(idx);
    }
}

impl<T: Copy + Eq + Hash> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

/// Iterates the set bit positions of an occupancy word, lowest first.
fn occ_slots(mut word: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if word == 0 {
            return None;
        }
        let slot = word.trailing_zeros() as usize;
        word &= word - 1;
        Some(slot)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_advance_expires_in_deadline_order() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.arm(1, 10);
        w.arm(2, 5);
        w.arm(3, 700); // level-1 territory
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_deadline(), Some(5));
        assert_eq!(w.advance(10), &[2, 1]);
        assert_eq!(w.len(), 1);
        assert!(w.advance(699).is_empty());
        assert_eq!(w.advance(700), &[3]);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_removes_and_reports() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.arm(7, 100);
        assert!(w.is_armed(&7));
        assert!(w.cancel(&7));
        assert!(!w.cancel(&7));
        assert!(w.advance(1000).is_empty());
    }

    #[test]
    fn rearm_moves_the_deadline() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.arm(7, 100);
        w.arm(7, 5000);
        assert_eq!(w.len(), 1);
        assert_eq!(w.deadline_of(&7), Some(5000));
        assert!(w.advance(4999).is_empty());
        assert_eq!(w.advance(5000), &[7]);
    }

    #[test]
    fn overdue_deadline_fires_on_next_advance() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert!(w.advance(50).is_empty());
        w.arm(1, 50); // == now
        w.arm(2, 10); // < now
        assert_eq!(w.next_deadline(), Some(50));
        assert_eq!(w.advance(50), &[1, 2]);
    }

    #[test]
    fn same_tick_expiry_preserves_arm_order() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        for k in 0..10u32 {
            w.arm(k, 42);
        }
        assert_eq!(w.advance(42), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn far_deadlines_cascade_correctly() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        // Past the 2^36 exact horizon: parks in the top level and
        // re-cascades.
        let far = (1u64 << 37) + 12345;
        w.arm(1, far);
        w.arm(2, 64 * 64 + 3); // level 2
        assert_eq!(w.advance(64 * 64 + 3), &[2]);
        assert!(w.advance(far - 1).is_empty());
        assert_eq!(w.advance(far), &[1]);
    }

    #[test]
    fn next_deadline_is_a_usable_wake_hint() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.arm(9, 130_000);
        // Wake at the hint repeatedly; within LEVELS wakes the timer
        // fires exactly at its deadline, never before.
        let mut wakes = 0;
        loop {
            let hint = w.next_deadline().unwrap();
            assert!(hint <= 130_000);
            let fired = w.advance(hint);
            wakes += 1;
            if !fired.is_empty() {
                assert_eq!(fired, &[9]);
                assert_eq!(w.now(), 130_000);
                break;
            }
            assert!(wakes <= TimerWheel::<()>::LEVELS + 1, "cascade runaway");
        }
    }
}
