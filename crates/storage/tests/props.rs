//! Property-based tests of the storage layer: placement determinism,
//! quorum arithmetic, and store/retrieve round-trips under bounded
//! Byzantine behaviour.

use proptest::prelude::*;

use asa_chord::{Key, Overlay};
use asa_storage::{peer_set, pid_key, replica_keys, DataBlock, DataService, NodeBehaviour, Pid};

fn overlay(n: usize) -> Overlay {
    Overlay::with_nodes((0..n as u64).map(|i| Key::hash(&i.to_be_bytes())), 4)
}

proptest! {
    #[test]
    fn replica_keys_deterministic_and_sized(anchor in any::<u64>(), r in 1u32..20) {
        let a = replica_keys(Key(anchor), r);
        let b = replica_keys(Key(anchor), r);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), r as usize);
        prop_assert_eq!(a[0], Key(anchor));
    }

    #[test]
    fn replica_keys_distinct(anchor in any::<u64>(), r in 2u32..20) {
        let mut keys = replica_keys(Key(anchor), r);
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), r as usize, "evenly spread keys never collide");
    }

    #[test]
    fn peer_set_members_are_live(data in prop::collection::vec(any::<u8>(), 0..128)) {
        let overlay = overlay(64);
        let pid = Pid::of(&data);
        let peers = peer_set(&overlay, pid_key(&pid), 4).expect("peer set");
        let live = overlay.live_nodes();
        for p in peers {
            prop_assert!(live.contains(&p));
        }
    }

    #[test]
    fn store_retrieve_roundtrip_with_byzantine_minority(
        blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..8),
        seed in any::<u64>(),
    ) {
        let mut service = DataService::new(overlay(64), 4, seed);
        let blocks: Vec<DataBlock> = blocks.into_iter().map(DataBlock::new).collect();
        // For each block, mark exactly f = 1 of its replica peers Byzantine.
        for b in &blocks {
            let peers = peer_set(service.overlay(), pid_key(&b.pid()), 4).expect("peer set");
            service.set_behaviour(peers[0], NodeBehaviour::Byzantine);
        }
        let mut pids = Vec::new();
        for b in &blocks {
            pids.push(service.store(b).expect("store reaches quorum"));
        }
        for (pid, b) in pids.iter().zip(&blocks) {
            let got = service.retrieve(*pid).expect("retrieval verifies");
            prop_assert_eq!(&got, b);
        }
    }

    #[test]
    fn duplicate_content_same_pid(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut service = DataService::new(overlay(32), 4, 1);
        let a = service.store(&DataBlock::new(data.clone())).expect("store");
        let b = service.store(&DataBlock::new(data)).expect("store");
        prop_assert_eq!(a, b, "content addressing is deterministic");
    }
}
