//! Distributed termination detection as an FSM family.
//!
//! Paper §5.2: "a distributed computation may be defined as being
//! terminated when each process in it has locally terminated and no
//! messages are in transit ... most distributed termination algorithms
//! are based upon message counting" (citing Mattern, reference 16, and
//! the derivations between termination detection and garbage collection,
//! references 17 and 18). This model is a Dijkstra–Scholten-style node:
//! work received while active is delegated (growing the
//! outstanding-children count); a node reports `done` to its parent once
//! it is passive and all children have reported.

use stategen_core::{
    AbstractModel, Action, Outcome, StateComponent, StateSpace, StateVector, TransitionSpec,
};

const ACTIVE: usize = 0;
const OUTSTANDING: usize = 1;
const DONE: usize = 2;

/// Termination-detection abstract model for a node with at most
/// `max_children` concurrently outstanding delegations.
#[derive(Debug, Clone, Copy)]
pub struct TerminationModel {
    max_children: u32,
}

impl TerminationModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `max_children == 0`.
    pub fn new(max_children: u32) -> Self {
        assert!(max_children >= 1, "need at least one delegation slot");
        TerminationModel { max_children }
    }
}

impl AbstractModel for TerminationModel {
    fn machine_name(&self) -> String {
        format!("termination@c={}", self.max_children)
    }

    fn state_space(&self) -> Result<StateSpace, stategen_core::SchemaError> {
        StateSpace::new(vec![
            StateComponent::boolean("active"),
            StateComponent::int("outstanding", self.max_children),
            StateComponent::boolean("done"),
        ])
    }

    fn messages(&self) -> Vec<String> {
        vec!["task".into(), "child_done".into(), "finish_work".into()]
    }

    fn start_state(&self) -> StateVector {
        // A node enters the computation on its first task.
        self.state_space().expect("schema is valid").zero_vector()
    }

    fn transition(&self, state: &StateVector, message: &str) -> Outcome {
        let mut v = state.clone();
        let mut actions = Vec::new();
        match message {
            "task" => {
                if !v.flag(ACTIVE) {
                    // First (or re-)engagement: become active.
                    v.set_flag(ACTIVE, true);
                } else {
                    // Busy: delegate to a child.
                    if v.get(OUTSTANDING) == self.max_children {
                        return Outcome::Ignored;
                    }
                    v.set(OUTSTANDING, v.get(OUTSTANDING) + 1);
                    actions.push(Action::send("task"));
                }
            }
            "child_done" => {
                if v.get(OUTSTANDING) == 0 {
                    return Outcome::Ignored;
                }
                v.set(OUTSTANDING, v.get(OUTSTANDING) - 1);
                if v.get(OUTSTANDING) == 0 && !v.flag(ACTIVE) {
                    // Passive with an empty subtree: report termination.
                    v.set_flag(DONE, true);
                    actions.push(Action::send("done"));
                }
            }
            "finish_work" => {
                if !v.flag(ACTIVE) {
                    return Outcome::Ignored;
                }
                v.set_flag(ACTIVE, false);
                if v.get(OUTSTANDING) == 0 {
                    v.set_flag(DONE, true);
                    actions.push(Action::send("done"));
                }
            }
            _ => return Outcome::Ignored,
        }
        Outcome::Transition(TransitionSpec {
            target: v,
            actions,
            annotations: Vec::new(),
        })
    }

    fn is_final_state(&self, state: &StateVector) -> bool {
        state.flag(DONE)
    }

    fn describe_state(&self, state: &StateVector) -> Vec<String> {
        vec![format!(
            "{}; {} outstanding delegation(s).",
            if state.flag(ACTIVE) {
                "Active"
            } else {
                "Passive"
            },
            state.get(OUTSTANDING)
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stategen_core::{generate, validate_machine, FsmInstance, ProtocolEngine};

    #[test]
    fn generates_and_validates() {
        for c in [1u32, 3, 8] {
            let g = generate(&TerminationModel::new(c)).unwrap();
            assert_eq!(g.report.initial_states, 4 * (u64::from(c) + 1));
            assert!(validate_machine(&g.machine).is_valid());
            assert!(g.machine.unique_final().is_some());
        }
    }

    #[test]
    fn termination_requires_passivity_and_empty_subtree() {
        let g = generate(&TerminationModel::new(3)).unwrap();
        let mut node = FsmInstance::new(&g.machine);
        node.deliver("task").unwrap(); // active
        assert_eq!(node.deliver("task").unwrap(), vec![Action::send("task")]); // delegate
        node.deliver("finish_work").unwrap(); // passive, child outstanding
        assert!(!node.is_finished());
        let actions = node.deliver("child_done").unwrap();
        assert_eq!(actions, vec![Action::send("done")]);
        assert!(node.is_finished());
    }

    #[test]
    fn finish_with_no_children_reports_immediately() {
        let g = generate(&TerminationModel::new(2)).unwrap();
        let mut node = FsmInstance::new(&g.machine);
        node.deliver("task").unwrap();
        assert_eq!(
            node.deliver("finish_work").unwrap(),
            vec![Action::send("done")]
        );
        assert!(node.is_finished());
    }

    #[test]
    fn spurious_child_done_ignored() {
        let g = generate(&TerminationModel::new(2)).unwrap();
        let mut node = FsmInstance::new(&g.machine);
        node.deliver("task").unwrap();
        assert!(node.deliver("child_done").unwrap().is_empty());
        assert_eq!(node.state_name(), "T/0/F");
    }

    #[test]
    fn delegation_bounded() {
        let g = generate(&TerminationModel::new(1)).unwrap();
        let mut node = FsmInstance::new(&g.machine);
        node.deliver("task").unwrap();
        node.deliver("task").unwrap(); // delegate (1 outstanding)
        assert!(node.deliver("task").unwrap().is_empty(), "slots exhausted");
    }
}
