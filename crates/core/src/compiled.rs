//! Ahead-of-time compiled machines: dense transition tables with
//! zero-allocation dispatch.
//!
//! [`FsmInstance`](crate::FsmInstance) interprets a generated
//! [`StateMachine`] by walking a per-state `BTreeMap` on every delivery.
//! That is flexible but slow: each message costs a tree lookup plus (on
//! the name-based path) a string hash, and the engine-trait path
//! allocates a fresh `Vec<Action>` per call. The paper renders machines
//! to source code precisely because interpreted dispatch is too slow to
//! deploy (§4.2); [`CompiledMachine`] is the runtime equivalent of that
//! rendering step — a one-time *flattening* pass that turns any machine
//! into:
//!
//! * a dense `states × messages` table of target state ids (`u32`, with
//!   a sentinel for "no transition"), so dispatch is one indexed load;
//! * an interned action arena: each distinct action list is stored once
//!   and every transition references it by `(offset, len)` range, so
//!   delivering a message returns a borrowed `&[Action]` without copying
//!   or allocating;
//! * an O(1) message-name lookup map.
//!
//! Finish states are compiled with empty rows, so they are absorbing by
//! construction and the hot path needs no role check.
//!
//! Compilation is behaviour-preserving: a [`CompiledInstance`] is
//! observationally equivalent to the [`FsmInstance`](crate::FsmInstance)
//! it was compiled from (asserted by the cross-engine property suites).
//!
//! # Examples
//!
//! ```
//! use stategen_core::{Action, CompiledMachine, ProtocolEngine, StateMachineBuilder};
//!
//! let mut b = StateMachineBuilder::new("ping", ["ping"]);
//! let idle = b.add_state("idle");
//! let done = b.add_state("done");
//! b.add_transition(idle, "ping", done, vec![Action::send("pong")]);
//! let machine = b.build(idle);
//!
//! let compiled = CompiledMachine::compile(&machine);
//! let mut instance = compiled.instance();
//! let actions = instance.deliver_ref("ping")?;
//! assert_eq!(actions, [Action::send("pong")]);
//! assert_eq!(instance.state_name_str(), "done");
//! # Ok::<(), stategen_core::InterpError>(())
//! ```

use std::borrow::Cow;
use std::collections::HashMap;

use crate::error::{CompileError, InterpError};
use crate::interp::ProtocolEngine;
use crate::ir::{ActionArena, FlatIr};
use crate::machine::{Action, MessageId, StateMachine, StateRole};

/// Sentinel target meaning "message not applicable in this state".
pub(crate) const NO_TRANSITION: u32 = u32::MAX;

/// `(offset, len)` range into the interned action arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct ActionRange {
    offset: u32,
    len: u32,
}

/// A [`StateMachine`] flattened into dense integer index tables.
///
/// Compile once (at generation, startup or build time), then create any
/// number of cheap execution cursors: [`CompiledInstance`] for a single
/// protocol execution, or [`SessionPool`](crate::SessionPool) for
/// thousands of concurrent ones.
#[derive(Debug, Clone)]
pub struct CompiledMachine {
    name: String,
    messages: Box<[String]>,
    message_lookup: HashMap<String, u16>,
    state_names: Box<[String]>,
    finish: Box<[bool]>,
    start: u32,
    /// Width of a table row: the number of *message column classes*
    /// (≤ the alphabet size; see [`CompiledMachine::compile_ir`]).
    stride: usize,
    /// Message id → column class, the alphabet-compression indirection.
    column_of: Box<[u16]>,
    targets: Box<[u32]>,
    cells: Box<[ActionRange]>,
    arena: Box<[Action]>,
    interned_lists: usize,
}

impl CompiledMachine {
    /// Flattens `machine` into dense tables, via the unified lowering IR
    /// ([`FlatIr`]).
    ///
    /// This is the only expensive step — O(states × messages) time and
    /// space — and is meant to run once per machine, off the hot path.
    pub fn compile(machine: &StateMachine) -> Self {
        Self::compile_ir(&FlatIr::from_machine(machine))
            .expect("a StateMachine is unguarded and deterministic by construction")
    }

    /// Compiles an *unguarded* [`FlatIr`] into dense tables — the shared
    /// entry point every front-end reaches through the unified lowering
    /// pipeline (flat machines lift trivially; unguarded statecharts
    /// arrive via
    /// [`HierarchicalMachine::flatten_ir`](crate::HierarchicalMachine::flatten_ir)).
    ///
    /// # Errors
    ///
    /// The table is stored in *message-alphabet-compressed* form:
    /// messages whose columns are identical across every state (same
    /// target and same actions in every cell — equivalently, messages
    /// the machine never distinguishes) share one physical column, and
    /// a tiny `message id → column` map (one `u16` per message) is
    /// consulted on dispatch. Machines whose messages are all distinct
    /// pay one extra indexed load; machines with interchangeable
    /// messages (common after statechart flattening and minimization)
    /// shrink their hot table proportionally. The compression is
    /// behaviour-preserving by construction: two messages share a
    /// column only when every state already treated them identically.
    ///
    /// # Errors
    ///
    /// [`CompileError::GuardedMachine`] if any transition carries a
    /// guard or update (or the IR declares variables/parameters) — the
    /// dense table has no registers, so guarded IRs lower through
    /// [`CompiledEfsm::compile_ir`](crate::CompiledEfsm::compile_ir)
    /// instead; [`CompileError::DuplicateTransition`] if two transitions
    /// share a `(state, message)` cell (the second could never fire).
    pub fn compile_ir(ir: &FlatIr) -> Result<Self, CompileError> {
        if ir.is_guarded() {
            return Err(CompileError::GuardedMachine(ir.name().to_string()));
        }
        let stride = ir.messages().len();
        let state_count = ir.state_count();
        let mut targets = vec![NO_TRANSITION; state_count * stride];
        let mut cells = vec![ActionRange::default(); state_count * stride];
        let mut arena = ActionArena::default();
        let mut state_names = Vec::with_capacity(state_count);
        let mut finish = Vec::with_capacity(state_count);

        for (sid, state) in ir.states().iter().enumerate() {
            state_names.push(state.name().to_string());
            let is_finish = state.role() == StateRole::Finish;
            finish.push(is_finish);
            if is_finish {
                // Finish states absorb every message; leave the whole row
                // at the sentinel even if the source machine carries
                // (unreachable) transitions out of them.
                continue;
            }
            let row = sid * stride;
            for transition in state.transitions() {
                let idx = row + transition.message_index();
                if targets[idx] != NO_TRANSITION {
                    return Err(CompileError::DuplicateTransition {
                        state: state.name().to_string(),
                        message: ir.messages()[transition.message_index()].clone(),
                    });
                }
                targets[idx] = transition.target();
                let (offset, len) = arena.intern(transition.actions());
                cells[idx] = ActionRange { offset, len };
            }
        }

        // Message-alphabet compression: group messages whose full
        // columns (target + actions per state) are identical, then store
        // only one physical column per class. Classes are numbered in
        // first-occurrence order, so the column map is deterministic.
        let mut column_of = vec![0u16; stride];
        let mut class_rep: Vec<usize> = Vec::new(); // class → representative message
        for m in 0..stride {
            let class = class_rep.iter().position(|&rep| {
                (0..state_count).all(|s| {
                    targets[s * stride + m] == targets[s * stride + rep]
                        && cells[s * stride + m] == cells[s * stride + rep]
                })
            });
            column_of[m] = match class {
                Some(c) => c as u16,
                None => {
                    class_rep.push(m);
                    (class_rep.len() - 1) as u16
                }
            };
        }
        let n_classes = class_rep.len().max(1);
        let mut compact_targets = vec![NO_TRANSITION; state_count * n_classes];
        let mut compact_cells = vec![ActionRange::default(); state_count * n_classes];
        for s in 0..state_count {
            for (c, &rep) in class_rep.iter().enumerate() {
                compact_targets[s * n_classes + c] = targets[s * stride + rep];
                compact_cells[s * n_classes + c] = cells[s * stride + rep];
            }
        }

        Ok(CompiledMachine {
            name: ir.name().to_string(),
            messages: ir.messages().to_vec().into_boxed_slice(),
            message_lookup: ir
                .messages()
                .iter()
                .enumerate()
                .map(|(i, m)| (m.clone(), i as u16))
                .collect(),
            state_names: state_names.into_boxed_slice(),
            finish: finish.into_boxed_slice(),
            start: ir.start(),
            stride: n_classes,
            column_of: column_of.into_boxed_slice(),
            targets: compact_targets.into_boxed_slice(),
            cells: compact_cells.into_boxed_slice(),
            interned_lists: arena.interned_lists(),
            arena: arena.into_arena(),
        })
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The message alphabet, in declaration order.
    pub fn messages(&self) -> &[String] {
        &self.messages
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_names.len()
    }

    /// The start state's dense id.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Looks up a message id by name in O(1).
    pub fn message_id(&self, name: &str) -> Option<MessageId> {
        self.message_lookup.get(name).copied().map(MessageId)
    }

    /// The message name for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this machine.
    pub fn message_name(&self, id: MessageId) -> &str {
        &self.messages[id.index()]
    }

    /// Display name of a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn state_name(&self, state: u32) -> &str {
        &self.state_names[state as usize]
    }

    /// `true` if `state` is a finish state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn is_finish_state(&self, state: u32) -> bool {
        self.finish[state as usize]
    }

    /// Number of distinct action lists stored in the interned arena.
    pub fn interned_action_lists(&self) -> usize {
        self.interned_lists
    }

    /// Number of *message column classes* the table stores — the width
    /// of a physical row after alphabet compression. Equal to the
    /// alphabet size when every message behaves distinctly; smaller
    /// when some messages are interchangeable in every state.
    pub fn message_column_classes(&self) -> usize {
        self.stride
    }

    /// The compressed table column `message` dispatches through —
    /// invariant for a whole batch, so the kernels hoist it once.
    #[inline]
    pub(crate) fn column(&self, message: MessageId) -> usize {
        debug_assert!(
            message.index() < self.column_of.len(),
            "message id from a different machine"
        );
        self.column_of[message.index()] as usize
    }

    /// The dense target table, `state_count × message_column_classes`,
    /// for the batch kernels' hoisted cell loads.
    #[inline]
    pub(crate) fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Per-state finish flags, indexed by dense state id.
    #[inline]
    pub(crate) fn finish_flags(&self) -> &[bool] {
        &self.finish
    }

    /// Executes one transition: from `state` on `message`, returns the
    /// target state and the borrowed action list, or `None` if the
    /// message is not applicable (including any message in a finish
    /// state).
    ///
    /// This is the allocation-free hot path: one indexed load for the
    /// target, one for the action range.
    ///
    /// `message` must come from this machine (via
    /// [`CompiledMachine::message_id`]) or one with an identical
    /// alphabet; an id from a machine with a larger alphabet indexes the
    /// wrong table cell (debug builds assert, release builds do not pay
    /// for the check).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range for this machine.
    #[inline]
    pub fn step(&self, state: u32, message: MessageId) -> Option<(u32, &[Action])> {
        debug_assert!(
            message.index() < self.column_of.len(),
            "message id from a different machine"
        );
        let column = self.column_of[message.index()] as usize;
        let idx = state as usize * self.stride + column;
        let target = self.targets[idx];
        if target == NO_TRANSITION {
            return None;
        }
        let range = self.cells[idx];
        let actions = &self.arena[range.offset as usize..(range.offset + range.len) as usize];
        Some((target, actions))
    }

    /// Creates an execution cursor positioned at the start state.
    pub fn instance(&self) -> CompiledInstance<'_> {
        CompiledInstance::new(self)
    }
}

/// One executing instance of a [`CompiledMachine`]: a dense state id plus
/// a machine reference — 16 bytes of mutable state, no allocation on any
/// delivery path.
#[derive(Debug, Clone)]
pub struct CompiledInstance<'m> {
    machine: &'m CompiledMachine,
    current: u32,
    steps: u64,
}

impl<'m> CompiledInstance<'m> {
    /// Creates an instance positioned at the machine's start state.
    pub fn new(machine: &'m CompiledMachine) -> Self {
        CompiledInstance {
            machine,
            current: machine.start(),
            steps: 0,
        }
    }

    /// The machine this instance executes.
    pub fn machine(&self) -> &'m CompiledMachine {
        self.machine
    }

    /// The current state's dense id.
    pub fn current_state(&self) -> u32 {
        self.current
    }

    /// Number of transitions taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Display name of the current state, borrowed from the machine
    /// (non-allocating form of [`ProtocolEngine::state_name`]).
    pub fn state_name_str(&self) -> &'m str {
        self.machine.state_name(self.current)
    }

    /// Delivers a message by id; returns the triggered actions.
    ///
    /// The returned slice borrows from the machine's interned arena, not
    /// from the instance, so it stays valid across further deliveries.
    /// No heap allocation occurs on this path.
    #[inline]
    pub fn deliver_id(&mut self, message: MessageId) -> &'m [Action] {
        match self.machine.step(self.current, message) {
            Some((target, actions)) => {
                self.current = target;
                self.steps += 1;
                actions
            }
            None => &[],
        }
    }
}

impl ProtocolEngine for CompiledInstance<'_> {
    fn deliver_ref(&mut self, message: &str) -> Result<&[Action], InterpError> {
        let id = self
            .machine
            .message_id(message)
            .ok_or_else(|| InterpError::UnknownMessage(message.to_string()))?;
        Ok(self.deliver_id(id))
    }

    fn is_finished(&self) -> bool {
        self.machine.is_finish_state(self.current)
    }

    fn state_name(&self) -> Cow<'_, str> {
        Cow::Borrowed(self.state_name_str())
    }

    fn reset(&mut self) {
        self.current = self.machine.start();
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{StateMachineBuilder, StateRole};

    fn finishing_machine() -> StateMachine {
        let mut b = StateMachineBuilder::new("m", ["a", "b"]);
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let fin = b.add_state_full("FINISHED", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", s1, vec![Action::send("x")]);
        b.add_transition(s1, "a", fin, vec![]);
        b.add_transition(s1, "b", s0, vec![Action::send("x")]);
        b.build(s0)
    }

    #[test]
    fn walk_to_finish_matches_interpreter() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let mut i = compiled.instance();
        assert!(!i.is_finished());
        assert_eq!(i.deliver_ref("a").unwrap(), [Action::send("x")]);
        assert_eq!(i.state_name_str(), "s1");
        assert!(i.deliver_ref("a").unwrap().is_empty());
        assert!(i.is_finished());
        assert_eq!(i.state_name(), "FINISHED");
        assert_eq!(i.steps(), 2);
    }

    #[test]
    fn inapplicable_message_ignored() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let mut i = compiled.instance();
        assert!(i.deliver_ref("b").unwrap().is_empty());
        assert_eq!(i.state_name_str(), "s0");
        assert_eq!(i.steps(), 0);
    }

    #[test]
    fn unknown_message_is_error() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let mut i = compiled.instance();
        assert_eq!(
            i.deliver_ref("zap").map(<[Action]>::to_vec),
            Err(InterpError::UnknownMessage("zap".to_string()))
        );
    }

    #[test]
    fn messages_after_finish_ignored() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let mut i = compiled.instance();
        i.deliver_ref("a").unwrap();
        i.deliver_ref("a").unwrap();
        assert!(i.is_finished());
        assert!(i.deliver_ref("a").unwrap().is_empty());
        assert!(i.deliver_ref("b").unwrap().is_empty());
        assert_eq!(i.steps(), 2);
    }

    #[test]
    fn reset_returns_to_start() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let mut i = compiled.instance();
        i.deliver_ref("a").unwrap();
        i.reset();
        assert_eq!(i.state_name_str(), "s0");
        assert_eq!(i.steps(), 0);
    }

    #[test]
    fn engine_trait_default_deliver_matches_ref() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let mut i = compiled.instance();
        assert_eq!(i.deliver("a").unwrap(), vec![Action::send("x")]);
    }

    #[test]
    fn action_lists_are_interned() {
        // Both phase transitions carry the same [->x] list; the arena
        // stores it once.
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        assert_eq!(compiled.interned_action_lists(), 1);
        assert_eq!(compiled.arena.len(), 1);
    }

    #[test]
    fn returned_slice_outlives_further_deliveries() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        let mut i = compiled.instance();
        let first = i.deliver_id(compiled.message_id("a").unwrap());
        let _ = i.deliver_id(compiled.message_id("a").unwrap());
        // `first` borrows from the machine arena, not the instance.
        assert_eq!(first, [Action::send("x")]);
    }

    #[test]
    fn identical_message_columns_share_storage() {
        // `a` and `b` are treated identically in every state; `c` is
        // distinct. The table stores two physical columns, and behaviour
        // is unchanged.
        let mut b = StateMachineBuilder::new("m", ["a", "b", "c"]);
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        b.add_transition(s0, "a", s1, vec![Action::send("x")]);
        b.add_transition(s0, "b", s1, vec![Action::send("x")]);
        b.add_transition(s0, "c", s0, vec![]);
        b.add_transition(s1, "a", s0, vec![]);
        b.add_transition(s1, "b", s0, vec![]);
        let m = b.build(s0);
        let compiled = CompiledMachine::compile(&m);
        assert_eq!(compiled.messages().len(), 3);
        assert_eq!(compiled.message_column_classes(), 2);
        let mut i = compiled.instance();
        assert_eq!(i.deliver_ref("b").unwrap(), [Action::send("x")]);
        assert_eq!(i.state_name_str(), "s1");
        assert!(i.deliver_ref("a").unwrap().is_empty());
        assert_eq!(i.state_name_str(), "s0");
        assert!(i.deliver_ref("c").unwrap().is_empty());
        assert_eq!(i.state_name_str(), "s0");
    }

    #[test]
    fn distinct_columns_are_not_compressed() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        assert_eq!(compiled.message_column_classes(), 2);
    }

    #[test]
    fn table_metadata_matches_source() {
        let m = finishing_machine();
        let compiled = CompiledMachine::compile(&m);
        assert_eq!(compiled.name(), "m");
        assert_eq!(compiled.state_count(), 3);
        assert_eq!(compiled.messages(), ["a", "b"]);
        assert_eq!(compiled.start(), 0);
        assert_eq!(compiled.message_id("b"), m.message_id("b"));
        assert_eq!(
            compiled.message_name(compiled.message_id("b").unwrap()),
            "b"
        );
        assert!(compiled.is_finish_state(2));
        assert!(!compiled.is_finish_state(0));
    }
}
