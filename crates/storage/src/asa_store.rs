//! The top-level storage facade: the API the paper's generic storage
//! layer presents to the layers above (paper §2, Fig 1/2).
//!
//! "The generic storage layer provides a ubiquitous resilient mutable
//! storage facility for unstructured data, with an historical record"
//! and "does not include any destructive update operation; data can only
//! be appended." [`AsaStore`] composes the two services:
//!
//! * writing a version stores the block through the data-storage service
//!   (PID = SHA-1, replicas at the placement keys, `r − f` quorum), then
//!   records the GUID → PID mapping by running one execution of the BFT
//!   commit protocol across the GUID's peer set (one simulation per
//!   update — exactly the paper's "particular execution" granularity);
//! * reading resolves a version from the `f + 1`-consistent history and
//!   retrieves the block with hash verification.

use std::collections::BTreeMap;

use asa_chord::Overlay;
use asa_simnet::SimConfig;

use crate::data_service::{DataService, DataServiceError};
use crate::entities::{DataBlock, Guid, Pid};
use crate::version_service::{run_harness, HarnessConfig, PeerBehaviour};

/// Errors from the storage facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The block layer failed (quorum or retrieval).
    Data(DataServiceError),
    /// The commit protocol did not record the version (deadlock beyond
    /// the retry budget, or too many faulty peers).
    CommitFailed(Guid),
    /// The peers' answers never agreed on a history (more than `f`
    /// Byzantine members).
    InconsistentHistory(Guid),
    /// The requested version index does not exist.
    NoSuchVersion {
        /// The object queried.
        guid: Guid,
        /// The requested index.
        index: usize,
        /// Versions recorded.
        available: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Data(e) => write!(f, "data service: {e}"),
            StoreError::CommitFailed(g) => write!(f, "commit protocol failed for {g}"),
            StoreError::InconsistentHistory(g) => {
                write!(f, "no f+1-consistent history for {g}")
            }
            StoreError::NoSuchVersion {
                guid,
                index,
                available,
            } => {
                write!(
                    f,
                    "{guid} has {available} version(s); index {index} does not exist"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataServiceError> for StoreError {
    fn from(e: DataServiceError) -> Self {
        StoreError::Data(e)
    }
}

/// Configuration of an [`AsaStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Replication factor for blocks and version histories.
    pub replication_factor: u32,
    /// Behaviour of the version-history peer set (padded with `Correct`).
    pub peer_behaviours: Vec<PeerBehaviour>,
    /// Network parameters for the commit-protocol simulations.
    pub net: SimConfig,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            replication_factor: 4,
            peer_behaviours: Vec::new(),
            net: SimConfig {
                min_delay: 1,
                max_delay: 10,
                ..Default::default()
            },
        }
    }
}

/// The ASA storage facade: append-only versioned storage of unstructured
/// data over untrusted replicas.
///
/// # Examples
///
/// ```
/// use asa_chord::{Key, Overlay};
/// use asa_storage::{AsaStore, StoreConfig};
///
/// let overlay = Overlay::with_nodes((0..64u64).map(|i| Key::hash(&i.to_be_bytes())), 4);
/// let mut store = AsaStore::new(overlay, StoreConfig::default(), 7);
/// let guid = store.create("report.txt");
/// store.append_version(guid, b"draft one".to_vec())?;
/// store.append_version(guid, b"draft two".to_vec())?;
/// assert_eq!(store.version_count(guid)?, 2);
/// assert_eq!(store.read_version(guid, 0)?.data(), b"draft one");
/// assert_eq!(store.read_latest(guid)?.data(), b"draft two");
/// # Ok::<(), asa_storage::StoreError>(())
/// ```
#[derive(Debug)]
pub struct AsaStore {
    data: DataService,
    config: StoreConfig,
    /// Confirmed histories, per GUID (the endpoint's view, each entry
    /// established by an `f + 1`-consistent read of the peer set).
    histories: BTreeMap<Guid, Vec<Pid>>,
    commit_seed: u64,
}

impl AsaStore {
    /// Creates a store over the given overlay.
    pub fn new(overlay: Overlay, config: StoreConfig, seed: u64) -> Self {
        AsaStore {
            data: DataService::new(overlay, config.replication_factor, seed),
            config,
            histories: BTreeMap::new(),
            commit_seed: seed,
        }
    }

    /// Access to the underlying data-storage service (e.g. for fault
    /// injection in tests).
    pub fn data_service_mut(&mut self) -> &mut DataService {
        &mut self.data
    }

    /// Mints a GUID for a named object and registers an empty history.
    pub fn create(&mut self, name: &str) -> Guid {
        let guid = Guid::from_name(name);
        self.histories.entry(guid).or_default();
        guid
    }

    /// Appends a new version: stores the block, then records the
    /// GUID → PID mapping through the commit protocol.
    ///
    /// # Errors
    ///
    /// [`StoreError::Data`] if the block store misses its quorum;
    /// [`StoreError::CommitFailed`] if the protocol does not complete;
    /// [`StoreError::InconsistentHistory`] if the peers cannot produce an
    /// `f + 1`-consistent answer.
    pub fn append_version(&mut self, guid: Guid, data: Vec<u8>) -> Result<Pid, StoreError> {
        let block = DataBlock::new(data);
        let pid = self.data.store(&block)?;
        // One protocol execution per update (paper §2.2). The simulation
        // seed advances so repeated appends see fresh schedules.
        self.commit_seed = self
            .commit_seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(97);
        let harness = HarnessConfig {
            replication_factor: self.config.replication_factor,
            behaviours: self.config.peer_behaviours.clone(),
            client_updates: vec![vec![pid]],
            net: SimConfig {
                seed: self.commit_seed,
                ..self.config.net.clone()
            },
            ..Default::default()
        };
        let report = run_harness(&harness);
        if !report.all_committed {
            return Err(StoreError::CommitFailed(guid));
        }
        let f = (self.config.replication_factor - 1) / 3;
        let history = report
            .read_consistent(f)
            .ok_or(StoreError::InconsistentHistory(guid))?;
        if !history.contains(&pid) {
            return Err(StoreError::CommitFailed(guid));
        }
        self.histories.entry(guid).or_default().push(pid);
        Ok(pid)
    }

    /// Number of versions recorded for `guid`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchVersion`] with `available = 0` when the GUID
    /// was never created.
    pub fn version_count(&self, guid: Guid) -> Result<usize, StoreError> {
        self.histories
            .get(&guid)
            .map(Vec::len)
            .ok_or(StoreError::NoSuchVersion {
                guid,
                index: 0,
                available: 0,
            })
    }

    /// The recorded history of `guid`.
    pub fn history(&self, guid: Guid) -> Option<&[Pid]> {
        self.histories.get(&guid).map(Vec::as_slice)
    }

    /// Retrieves version `index` (0-based) of `guid`, hash-verified.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchVersion`] for unknown GUIDs or indexes;
    /// [`StoreError::Data`] if no replica verifies.
    pub fn read_version(&mut self, guid: Guid, index: usize) -> Result<DataBlock, StoreError> {
        let history = self.histories.get(&guid).ok_or(StoreError::NoSuchVersion {
            guid,
            index,
            available: 0,
        })?;
        let pid = *history.get(index).ok_or(StoreError::NoSuchVersion {
            guid,
            index,
            available: history.len(),
        })?;
        Ok(self.data.retrieve(pid)?)
    }

    /// Retrieves the latest version of `guid`.
    ///
    /// # Errors
    ///
    /// As for [`AsaStore::read_version`].
    pub fn read_latest(&mut self, guid: Guid) -> Result<DataBlock, StoreError> {
        let count = self.version_count(guid)?;
        if count == 0 {
            return Err(StoreError::NoSuchVersion {
                guid,
                index: 0,
                available: 0,
            });
        }
        self.read_version(guid, count - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_chord::Key;

    fn overlay() -> Overlay {
        Overlay::with_nodes((0..64u64).map(|i| Key::hash(&i.to_be_bytes())), 4)
    }

    fn store() -> AsaStore {
        AsaStore::new(overlay(), StoreConfig::default(), 5)
    }

    #[test]
    fn versioned_roundtrip() {
        let mut s = store();
        let guid = s.create("a/file");
        let p1 = s.append_version(guid, b"v1".to_vec()).unwrap();
        let p2 = s.append_version(guid, b"v2".to_vec()).unwrap();
        assert_ne!(p1, p2);
        assert_eq!(s.version_count(guid).unwrap(), 2);
        assert_eq!(s.read_version(guid, 0).unwrap().data(), b"v1");
        assert_eq!(s.read_latest(guid).unwrap().data(), b"v2");
        assert_eq!(s.history(guid).unwrap(), &[p1, p2]);
    }

    #[test]
    fn append_only_history_grows() {
        let mut s = store();
        let guid = s.create("log");
        for i in 0..5 {
            s.append_version(guid, format!("entry {i}").into_bytes())
                .unwrap();
        }
        assert_eq!(s.version_count(guid).unwrap(), 5);
        // Old versions remain readable: nothing is destroyed.
        for i in 0..5 {
            assert_eq!(
                s.read_version(guid, i).unwrap().data(),
                format!("entry {i}").as_bytes()
            );
        }
    }

    #[test]
    fn survives_byzantine_peer() {
        let config = StoreConfig {
            peer_behaviours: vec![PeerBehaviour::Equivocator],
            ..Default::default()
        };
        let mut s = AsaStore::new(overlay(), config, 11);
        let guid = s.create("contested");
        s.append_version(guid, b"payload".to_vec()).unwrap();
        assert_eq!(s.read_latest(guid).unwrap().data(), b"payload");
    }

    #[test]
    fn commit_failure_with_too_many_silent_peers() {
        let config = StoreConfig {
            // 2 silent peers out of r = 4 leave only 2 active: below the
            // 2f+1 = 3 vote threshold, so the protocol cannot complete.
            peer_behaviours: vec![PeerBehaviour::Silent, PeerBehaviour::Silent],
            ..Default::default()
        };
        let mut s = AsaStore::new(overlay(), config, 13);
        let guid = s.create("doomed");
        assert_eq!(
            s.append_version(guid, b"never lands".to_vec()),
            Err(StoreError::CommitFailed(guid))
        );
        assert_eq!(s.version_count(guid).unwrap(), 0);
    }

    #[test]
    fn unknown_guid_and_index_errors() {
        let mut s = store();
        let ghost = Guid::from_name("never created");
        assert!(matches!(
            s.read_latest(ghost),
            Err(StoreError::NoSuchVersion { available: 0, .. })
        ));
        let guid = s.create("thin");
        s.append_version(guid, b"only one".to_vec()).unwrap();
        assert!(matches!(
            s.read_version(guid, 3),
            Err(StoreError::NoSuchVersion {
                index: 3,
                available: 1,
                ..
            })
        ));
    }

    #[test]
    fn distinct_guids_isolated() {
        let mut s = store();
        let a = s.create("a");
        let b = s.create("b");
        s.append_version(a, b"for a".to_vec()).unwrap();
        assert_eq!(s.version_count(a).unwrap(), 1);
        assert_eq!(s.version_count(b).unwrap(), 0);
    }

    #[test]
    fn error_display() {
        let guid = Guid::from_name("x");
        assert!(StoreError::CommitFailed(guid)
            .to_string()
            .contains("commit protocol failed"));
        let e = StoreError::NoSuchVersion {
            guid,
            index: 7,
            available: 2,
        };
        assert!(e.to_string().contains("index 7"));
    }
}
