//! Runtime interpreter for generated machines.
//!
//! The paper deploys FSMs by rendering them to source code (§3.5) — covered
//! by the `stategen-render` and `stategen-generated` crates — but also
//! discusses generating implementations *on the fly* (§4.2). [`FsmInstance`]
//! covers that policy without a runtime compiler: it walks a generated
//! [`StateMachine`] directly, one instance per ongoing protocol execution.

use std::borrow::Cow;

use crate::error::InterpError;
use crate::machine::{Action, MessageId, State, StateId, StateMachine, StateRole};

/// A common interface over the different ways of executing a protocol
/// (interpreted FSM, generated source code, hand-written algorithm, EFSM),
/// used by the equivalence test-suites and the network simulator.
pub trait ProtocolEngine {
    /// Delivers `message`; returns the actions (outgoing messages)
    /// triggered by it as a borrowed slice.
    ///
    /// This is the zero-copy fast path shared by the interpreted,
    /// compiled and generated engines: implementations return a slice
    /// borrowed from the machine representation (or from an internal
    /// scratch buffer reused across deliveries), so callers that only
    /// inspect the actions pay no per-message allocation.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::UnknownMessage`] if the message is not part
    /// of the protocol alphabet. Messages that are valid but not applicable
    /// in the current state are ignored (empty action list), matching the
    /// generated code's behaviour of having no `case` arm for them.
    fn deliver_ref(&mut self, message: &str) -> Result<&[Action], InterpError>;

    /// Delivers `message`; returns the triggered actions as an owned
    /// vector (allocating convenience form of
    /// [`ProtocolEngine::deliver_ref`]).
    ///
    /// # Errors
    ///
    /// As for [`ProtocolEngine::deliver_ref`].
    fn deliver(&mut self, message: &str) -> Result<Vec<Action>, InterpError> {
        self.deliver_ref(message).map(<[Action]>::to_vec)
    }

    /// `true` once the protocol instance has completed.
    fn is_finished(&self) -> bool;

    /// Display name of the current state.
    ///
    /// Borrowed from the machine representation wherever possible, so
    /// introspection on hot paths is allocation-free; engines whose
    /// state names are synthesized on the fly (e.g. hierarchical
    /// configurations) return an owned [`Cow::Owned`] instead.
    fn state_name(&self) -> Cow<'_, str>;

    /// Resets the engine to its start state.
    fn reset(&mut self);
}

/// One executing instance of a generated [`StateMachine`].
///
/// # Examples
///
/// ```
/// use stategen_core::{Action, FsmInstance, ProtocolEngine, StateMachineBuilder};
///
/// let mut b = StateMachineBuilder::new("ping", ["ping"]);
/// let idle = b.add_state("idle");
/// let done = b.add_state("done");
/// b.add_transition(idle, "ping", done, vec![Action::send("pong")]);
/// let machine = b.build(idle);
///
/// let mut fsm = FsmInstance::new(&machine);
/// let actions = fsm.deliver("ping")?;
/// assert_eq!(actions, vec![Action::send("pong")]);
/// assert_eq!(fsm.state_name(), "done");
/// # Ok::<(), stategen_core::InterpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FsmInstance<'m> {
    machine: &'m StateMachine,
    current: StateId,
    steps: u64,
}

impl<'m> FsmInstance<'m> {
    /// Creates an instance positioned at the machine's start state.
    pub fn new(machine: &'m StateMachine) -> Self {
        FsmInstance {
            machine,
            current: machine.start(),
            steps: 0,
        }
    }

    /// The machine this instance executes.
    pub fn machine(&self) -> &'m StateMachine {
        self.machine
    }

    /// The current state.
    pub fn current(&self) -> &'m State {
        self.machine.state(self.current)
    }

    /// The current state's id.
    pub fn current_id(&self) -> StateId {
        self.current
    }

    /// Number of transitions taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Display name of the current state, borrowed from the machine
    /// (non-allocating form of [`ProtocolEngine::state_name`]).
    pub fn state_name_str(&self) -> &'m str {
        self.current().name()
    }

    /// Delivers a message by id (avoids the name lookup of
    /// [`ProtocolEngine::deliver`]); returns the triggered actions.
    ///
    /// The returned slice borrows from the machine, not from the
    /// instance, so it stays valid across further deliveries.
    pub fn deliver_id(&mut self, message: MessageId) -> &'m [Action] {
        if self.is_finished() {
            return &[];
        }
        match self.machine.state(self.current).transition(message) {
            Some(t) => {
                self.current = t.target();
                self.steps += 1;
                t.actions()
            }
            None => &[],
        }
    }
}

impl ProtocolEngine for FsmInstance<'_> {
    fn deliver_ref(&mut self, message: &str) -> Result<&[Action], InterpError> {
        let id = self
            .machine
            .message_id(message)
            .ok_or_else(|| InterpError::UnknownMessage(message.to_string()))?;
        Ok(self.deliver_id(id))
    }

    fn is_finished(&self) -> bool {
        self.machine.state(self.current).role() == StateRole::Finish
    }

    fn state_name(&self) -> Cow<'_, str> {
        Cow::Borrowed(self.current().name())
    }

    fn reset(&mut self) {
        self.current = self.machine.start();
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::StateMachineBuilder;

    fn finishing_machine() -> StateMachine {
        let mut b = StateMachineBuilder::new("m", ["a", "b"]);
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let fin = b.add_state_full("FINISHED", None, StateRole::Finish, vec![]);
        b.add_transition(s0, "a", s1, vec![Action::send("x")]);
        b.add_transition(s1, "a", fin, vec![]);
        b.build(s0)
    }

    #[test]
    fn walk_to_finish() {
        let m = finishing_machine();
        let mut i = FsmInstance::new(&m);
        assert!(!i.is_finished());
        assert_eq!(i.deliver("a").unwrap(), vec![Action::send("x")]);
        assert_eq!(i.state_name(), "s1");
        assert!(i.deliver("a").unwrap().is_empty());
        assert!(i.is_finished());
        assert_eq!(i.steps(), 2);
    }

    #[test]
    fn inapplicable_message_ignored() {
        let m = finishing_machine();
        let mut i = FsmInstance::new(&m);
        assert!(i.deliver("b").unwrap().is_empty());
        assert_eq!(i.state_name(), "s0");
        assert_eq!(i.steps(), 0);
    }

    #[test]
    fn unknown_message_is_error() {
        let m = finishing_machine();
        let mut i = FsmInstance::new(&m);
        assert_eq!(
            i.deliver("zap"),
            Err(InterpError::UnknownMessage("zap".to_string()))
        );
    }

    #[test]
    fn messages_after_finish_ignored() {
        let m = finishing_machine();
        let mut i = FsmInstance::new(&m);
        i.deliver("a").unwrap();
        i.deliver("a").unwrap();
        assert!(i.is_finished());
        assert!(i.deliver("a").unwrap().is_empty());
        assert_eq!(i.state_name(), "FINISHED");
        assert_eq!(i.steps(), 2);
    }

    #[test]
    fn reset_returns_to_start() {
        let m = finishing_machine();
        let mut i = FsmInstance::new(&m);
        i.deliver("a").unwrap();
        i.reset();
        assert_eq!(i.state_name(), "s0");
        assert_eq!(i.steps(), 0);
    }
}
