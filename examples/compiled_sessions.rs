//! The compiled execution tier: flatten a generated machine into dense
//! tables, then serve thousands of concurrent protocol sessions with
//! zero per-message allocation.
//!
//! ```text
//! cargo run --release --example compiled_sessions
//! ```

use stategen::commit::{CommitConfig, CommitModel, MESSAGE_NAMES};
use stategen::fsm::{generate, CompiledMachine, ProtocolEngine, SessionPool};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate the r=4 commit machine and compile it once.
    let model = CommitModel::new(CommitConfig::new(4)?);
    let machine = generate(&model)?.machine;
    let compiled = CompiledMachine::compile(&machine);
    println!(
        "compiled {}: {} states x {} messages",
        compiled.name(),
        compiled.state_count(),
        compiled.messages().len()
    );

    // Single instance: same engine interface as the interpreter. The
    // id-based path returns action slices borrowed from the machine, so
    // they stay usable while the instance moves on.
    let mut instance = compiled.instance();
    for message in ["update", "vote", "vote", "commit", "commit"] {
        let id = compiled.message_id(message).expect("commit alphabet");
        let actions = instance.deliver_id(id);
        println!("  {message:>8} -> {:<16} {actions:?}", instance.state_name_str());
    }
    assert!(instance.is_finished());

    // Batched tier: 10k concurrent sessions, stepped struct-of-arrays.
    let mut pool = SessionPool::new(&compiled, 10_000);
    let ids: Vec<_> = MESSAGE_NAMES
        .iter()
        .map(|m| compiled.message_id(m).expect("commit alphabet"))
        .collect();
    // Drive every session through the canonical happy path.
    for &mid in [0usize, 1, 1, 2, 2].iter().map(|i| &ids[*i]) {
        pool.deliver_all(mid);
    }
    println!(
        "pool: {} sessions, {} finished, {} transitions total",
        pool.len(),
        pool.finished_count(),
        pool.steps()
    );
    assert!(pool.all_finished());
    Ok(())
}
