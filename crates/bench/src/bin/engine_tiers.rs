//! Engine-tier comparison: ns/delivery and allocation counts for the
//! interpreted, compiled, batched and build-time-generated execution
//! tiers, all running the same canonical commit trace at r = 4.
//!
//! Emits a machine-readable `BENCH_engine_tiers.json` at the workspace
//! root (ns/delivery per tier, speedup ratios vs the interpreted
//! baseline, allocations per delivery) so future PRs can track the
//! performance trajectory, plus a human-readable table on stdout.
//!
//! A counting global allocator verifies the headline claim directly: the
//! compiled and batched hot paths perform **zero** heap allocations per
//! delivered message.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use stategen_commit::{CommitConfig, CommitModel};
use stategen_core::{generate, CompiledMachine, FsmInstance, ProtocolEngine, SessionPool};
use stategen_generated::GeneratedCommitR4;

/// System allocator wrapped with an allocation counter, so the harness
/// can assert which tiers allocate on the delivery path.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed
// atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The canonical commit trace driven by every tier (same as the
/// `runtime_comparison` bench).
const TRACE: [&str; 9] =
    ["update", "vote", "vote", "commit", "not_free", "vote", "free", "commit", "vote"];

/// Deliveries per measurement run for the single-instance tiers.
const SINGLE_DELIVERIES: u64 = 1_800_000;

/// Sessions in the batched tier (deliveries = sessions × trace rounds).
const POOL_SESSIONS: usize = 4096;

struct TierResult {
    name: &'static str,
    ns_per_delivery: f64,
    allocs_per_delivery: f64,
}

/// Runs `work` (which performs `deliveries` message deliveries) twice —
/// a warm-up pass and a measured pass — returning ns and allocations per
/// delivery.
fn measure(name: &'static str, deliveries: u64, mut work: impl FnMut() -> u64) -> TierResult {
    let mut checksum = work(); // warm-up: page in tables, size scratch buffers
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    checksum ^= work();
    let elapsed = start.elapsed();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    std::hint::black_box(checksum);
    TierResult {
        name,
        ns_per_delivery: elapsed.as_nanos() as f64 / deliveries as f64,
        allocs_per_delivery: allocs as f64 / deliveries as f64,
    }
}

fn main() {
    let config = CommitConfig::new(4).expect("valid replication factor");
    let machine = generate(&CommitModel::new(config)).expect("generates").machine;
    let compiled = CompiledMachine::compile(&machine);
    let ids: Vec<_> =
        TRACE.iter().map(|m| machine.message_id(m).expect("valid message")).collect();

    let rounds = SINGLE_DELIVERIES / TRACE.len() as u64;
    let mut results = Vec::new();

    // Tier 1: interpreted, name-based trait path (the pre-optimisation
    // baseline shape: string lookup + BTreeMap walk + Vec per call).
    results.push(measure("interpreted_name", rounds * TRACE.len() as u64, || {
        let mut engine = FsmInstance::new(&machine);
        let mut actions = 0;
        for _ in 0..rounds {
            for m in TRACE {
                actions += engine.deliver(m).expect("valid message").len() as u64;
            }
            engine.reset();
        }
        actions
    }));

    // Tier 2: interpreted, id-based borrowing path (BTreeMap walk, no
    // allocation).
    results.push(measure("interpreted_id", rounds * TRACE.len() as u64, || {
        let mut engine = FsmInstance::new(&machine);
        let mut actions = 0;
        for _ in 0..rounds {
            for &id in &ids {
                actions += engine.deliver_id(id).len() as u64;
            }
            engine.reset();
        }
        actions
    }));

    // Tier 3: compiled dense-table dispatch.
    results.push(measure("compiled", rounds * TRACE.len() as u64, || {
        let mut engine = compiled.instance();
        let mut actions = 0;
        for _ in 0..rounds {
            for &id in &ids {
                actions += engine.deliver_id(id).len() as u64;
            }
            engine.reset();
        }
        actions
    }));

    // Tier 4: batched sessions (struct-of-arrays pool; per-delivery cost
    // amortised over POOL_SESSIONS concurrent instances).
    let pool_rounds = (SINGLE_DELIVERIES / (POOL_SESSIONS as u64 * TRACE.len() as u64)).max(1);
    let pool_deliveries = pool_rounds * POOL_SESSIONS as u64 * TRACE.len() as u64;
    let mut pool = SessionPool::new(&compiled, POOL_SESSIONS);
    results.push(measure("batched_pool", pool_deliveries, || {
        let mut transitions = 0;
        for _ in 0..pool_rounds {
            for &id in &ids {
                transitions += pool.deliver_all(id);
            }
            pool.reset_all();
        }
        transitions
    }));

    // Tier 5: build-time generated source (match over enum states,
    // static send lists).
    results.push(measure("generated", rounds * TRACE.len() as u64, || {
        let mut engine = GeneratedCommitR4::new();
        let mut actions = 0;
        for _ in 0..rounds {
            for m in TRACE {
                if let Some(sends) = engine.deliver_raw(m) {
                    actions += sends.len() as u64;
                }
            }
            engine.reset();
        }
        actions
    }));

    let baseline = results[0].ns_per_delivery;
    println!("engine tiers — {} ({} states), canonical trace", machine.name(), machine.state_count());
    println!("{:<18} {:>14} {:>10} {:>18}", "tier", "ns/delivery", "speedup", "allocs/delivery");
    for r in &results {
        println!(
            "{:<18} {:>14.2} {:>9.1}x {:>18.4}",
            r.name,
            r.ns_per_delivery,
            baseline / r.ns_per_delivery,
            r.allocs_per_delivery
        );
    }

    for r in &results {
        if matches!(r.name, "interpreted_id" | "compiled" | "batched_pool") {
            assert_eq!(
                r.allocs_per_delivery, 0.0,
                "{} tier must not allocate per delivery",
                r.name
            );
        }
    }
    let compiled_result = results.iter().find(|r| r.name == "compiled").expect("measured");
    println!(
        "\ncompiled vs interpreted (name path): {:.1}x",
        baseline / compiled_result.ns_per_delivery
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"machine\": \"{}\",", machine.name());
    let _ = writeln!(json, "  \"states\": {},", machine.state_count());
    let _ = writeln!(json, "  \"trace_len\": {},", TRACE.len());
    let _ = writeln!(json, "  \"pool_sessions\": {POOL_SESSIONS},");
    json.push_str("  \"tiers\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_delivery\": {:.3}, \"speedup_vs_interpreted_name\": {:.3}, \"allocs_per_delivery\": {:.6}}}{}",
            r.name,
            r.ns_per_delivery,
            baseline / r.ns_per_delivery,
            r.allocs_per_delivery,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine_tiers.json");
    std::fs::write(&path, &json).expect("write BENCH_engine_tiers.json");
    println!("wrote {}", path.display());
}
